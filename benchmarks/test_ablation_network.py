"""Ablation -- network characteristics vs the monitor's guarantees.

The model promises that *datagram* semantics degrade with the network
(loss, reordering) while *stream* semantics -- including every meter
connection -- do not (Section 3.1).  Sweep loss and jitter and verify
the trace stays complete while the computation's datagrams suffer.
"""

import pytest

from repro.analysis import Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.net.network import NetworkParams
from repro.programs import install_all

N_DATAGRAMS = 40


def _run(loss, jitter, seed=11):
    params = NetworkParams(datagram_loss=loss, jitter_ms=jitter)
    cluster = Cluster(seed=seed, net_params=params)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command(
        "addprocess j red dgramconsumer 6000 {0} 200".format(N_DATAGRAMS)
    )
    session.command(
        "addprocess j green dgramproducer red 6000 {0} 64 1".format(N_DATAGRAMS)
    )
    session.command("setflags j send receive")
    session.command("startjob j")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    data_sends = [
        e for e in trace.by_type("send")
        if (e.name("destName") or "").endswith(":6000")
    ]
    return len(data_sends), len(trace.by_type("receive"))


@pytest.mark.parametrize("loss", [0.0, 0.1, 0.3, 0.5])
def test_ablation_datagram_loss(benchmark, loss):
    sends, recvs = benchmark.pedantic(_run, args=(loss, 0.5), rounds=1, iterations=1)
    assert sends == N_DATAGRAMS  # the *monitor* never loses events
    if loss == 0.0:
        assert recvs == N_DATAGRAMS
    else:
        assert recvs < N_DATAGRAMS  # the computation does
    print(
        "\n[ablation/net] loss={0:.0%}: {1} sends metered, {2} datagrams "
        "delivered".format(loss, sends, recvs)
    )


@pytest.mark.parametrize("jitter", [0.0, 2.0, 8.0])
def test_ablation_jitter_never_corrupts_meter_stream(benchmark, jitter):
    sends, recvs = benchmark.pedantic(
        _run, args=(0.0, jitter), rounds=1, iterations=1
    )
    assert sends == N_DATAGRAMS
    assert recvs == N_DATAGRAMS
    print(
        "\n[ablation/net] jitter={0} ms: trace complete ({1} sends, {2} "
        "receives)".format(jitter, sends, recvs)
    )
