"""Master/worker: a work queue fanned out over machines.

Its communication graph should classify as a "star" centred on the
master; its parallelism profile should approach the worker count.
"""

from repro import guestlib
from repro.kernel import defs


def mw_master(sys, argv):
    """argv: [port, nworkers, ntasks, task_ms].

    Accepts ``nworkers`` connections, deals tasks out eagerly (one
    outstanding per worker), collects results, reports the total.
    """
    port = int(argv[0])
    nworkers = int(argv[1])
    ntasks = int(argv[2]) if len(argv) > 2 else 20
    task_ms = float(argv[3]) if len(argv) > 3 else 20.0

    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", port))
    yield sys.listen(listen_fd, defs.SOMAXCONN)
    workers = []
    for __ in range(nworkers):
        conn, __peer = yield sys.accept(listen_fd)
        workers.append(conn)

    next_task = 0
    results = []
    outstanding = {}
    for conn in workers:
        if next_task < ntasks:
            yield from guestlib.send_json(sys, conn, {"task": next_task, "ms": task_ms})
            outstanding[conn] = next_task
            next_task += 1
    while len(results) < ntasks:
        ready, __ = yield sys.select(list(outstanding))
        for conn in ready:
            reply = yield from guestlib.recv_json(sys, conn)
            results.append(reply["result"])
            del outstanding[conn]
            if next_task < ntasks:
                yield from guestlib.send_json(sys, conn, {"task": next_task, "ms": task_ms})
                outstanding[conn] = next_task
                next_task += 1
    for conn in workers:
        yield from guestlib.send_json(sys, conn, {"done": True})
        yield sys.close(conn)
    total = sum(results)
    yield sys.write(1, b"all tasks done, checksum %d\n" % total)
    yield sys.exit(0)


def mw_worker(sys, argv):
    """argv: [master_host, port]."""
    host = argv[0]
    port = int(argv[1])
    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (host, port)
    )
    while True:
        message = yield from guestlib.recv_json(sys, fd)
        if message is None or message.get("done"):
            break
        yield sys.compute(message["ms"])
        yield from guestlib.send_json(
            sys, fd, {"result": message["task"] * message["task"]}
        )
    yield sys.close(fd)
    yield sys.exit(0)
