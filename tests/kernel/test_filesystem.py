"""Unit tests for the per-machine filesystem."""

import pytest

from repro.kernel.errno import SyscallError
from repro.kernel.filesystem import FileNode, FileSystem, OpenFile


@pytest.fixture
def fs():
    filesystem = FileSystem()
    filesystem.install("/etc/motd", b"hello", owner=0, mode=0o644)
    filesystem.install("/home/user/secret", b"s3cret", owner=100, mode=0o600)
    filesystem.install("/bin/prog", b"prog", owner=0, mode=0o755, program="prog")
    return filesystem


def test_install_and_exists(fs):
    assert fs.exists("/etc/motd")
    assert not fs.exists("/etc/nothing")


def test_lookup_missing_raises_enoent(fs):
    with pytest.raises(SyscallError) as err:
        fs.lookup("/etc/nothing", uid=0)
    assert err.value.errno == 2  # ENOENT


def test_world_readable_file_readable_by_anyone(fs):
    assert fs.lookup("/etc/motd", uid=999, want="read")


def test_owner_only_file_denied_to_others(fs):
    with pytest.raises(SyscallError) as err:
        fs.lookup("/home/user/secret", uid=200, want="read")
    assert err.value.errno == 13  # EACCES


def test_owner_can_read_own_file(fs):
    node = fs.lookup("/home/user/secret", uid=100, want="read")
    assert bytes(node.data) == b"s3cret"


def test_root_bypasses_permissions(fs):
    assert fs.lookup("/home/user/secret", uid=0, want="read")
    assert fs.lookup("/home/user/secret", uid=0, want="write")


def test_exec_requires_execute_bit(fs):
    assert fs.lookup("/bin/prog", uid=100, want="exec")
    with pytest.raises(SyscallError):
        fs.lookup("/etc/motd", uid=100, want="exec")


def test_root_cannot_exec_nonexecutable(fs):
    with pytest.raises(SyscallError):
        fs.lookup("/etc/motd", uid=0, want="exec")


def test_create_truncates_existing_writable_file(fs):
    fs.install("/tmp/log", b"old", owner=100, mode=0o644)
    node = fs.create("/tmp/log", uid=100)
    assert bytes(node.data) == b""


def test_create_denied_on_unwritable_existing_file(fs):
    with pytest.raises(SyscallError):
        fs.create("/home/user/secret", uid=200)


def test_unlink(fs):
    fs.install("/tmp/x", b"x", owner=100, mode=0o644)
    fs.unlink("/tmp/x", uid=100)
    assert not fs.exists("/tmp/x")


def test_unlink_permission_denied(fs):
    with pytest.raises(SyscallError):
        fs.unlink("/home/user/secret", uid=200)


def test_install_replaces_content_and_program(fs):
    fs.install("/bin/prog", b"other", program="other")
    assert fs.node("/bin/prog").program == "other"


def test_paths_sorted(fs):
    assert fs.paths() == sorted(fs.paths())


def test_openfile_read_write_offsets():
    node = FileNode(b"abcdef", owner=0, mode=0o644)
    reader = OpenFile(node, "r")
    assert reader.read(3) == b"abc"
    assert reader.read(10) == b"def"
    assert reader.read(10) == b""


def test_openfile_append_mode_starts_at_end():
    node = FileNode(b"log:", owner=0, mode=0o644)
    writer = OpenFile(node, "w", append=True)
    writer.write(b"entry")
    assert bytes(node.data) == b"log:entry"


def test_openfile_overwrite_in_middle():
    node = FileNode(b"xxxxxx", owner=0, mode=0o644)
    writer = OpenFile(node, "w")
    writer.write(b"ab")
    assert bytes(node.data) == b"abxxxx"


def test_mode_bits_owner_vs_world():
    node = FileNode(b"", owner=100, mode=0o604)
    assert node.readable_by(100)
    assert node.readable_by(200)  # world read
    assert not node.writable_by(200)
    assert node.writable_by(100)
