"""Replay the committed corpus of bug-finding schedules.

Every artifact under ``tests/chaos/corpus/`` is a fault schedule that
once exposed a real bug (severed meter channels across partitions,
daemons killed mid-episode, duplicate DONE reports after a controller
resume, restarts between heartbeats, orphan batches stranded on a
retired port).  They are committed with their post-fix verdicts, so a
regression flips ``reproduced`` to False and names the oracle that
started failing.
"""

import pathlib

import pytest

from repro.chaos.artifact import load_artifact, replay_artifact

CORPUS = pathlib.Path(__file__).parent / "corpus"
ARTIFACTS = sorted(CORPUS.glob("*.json"))


def test_corpus_is_populated():
    assert len(ARTIFACTS) >= 5


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[path.stem for path in ARTIFACTS]
)
def test_corpus_artifact_replays_to_its_recorded_verdict(path):
    artifact = load_artifact(path)
    verdict, reproduced = replay_artifact(artifact)
    assert reproduced, (
        "corpus schedule {0} no longer reproduces its recorded verdict; "
        "violated now: {1}".format(path.name, verdict.get("violated"))
    )
