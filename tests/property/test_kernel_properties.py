"""Property tests on kernel-level invariants: CPU conservation, FIFO
streams under random scheduling, deterministic replay."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster
from repro.kernel import defs


@st.composite
def _compute_workloads(draw):
    n_procs = draw(st.integers(min_value=1, max_value=5))
    work = [
        draw(st.floats(min_value=0.5, max_value=80.0)) for __ in range(n_procs)
    ]
    seed = draw(st.integers(min_value=0, max_value=500))
    return work, seed


@given(_compute_workloads())
@settings(max_examples=30, deadline=None)
def test_single_cpu_conserves_time(workload):
    """On one machine, elapsed >= sum of CPU charged (one CPU), and
    every process is charged what it asked for (plus trap costs)."""
    work, seed = workload
    cluster = Cluster(seed=seed)

    def make_guest(ms):
        def guest(sys, argv):
            yield sys.compute(ms)
            yield sys.exit(0)

        return guest

    procs = [cluster.spawn("red", make_guest(ms), uid=100) for ms in work]
    cluster.run_until_exit(procs)
    total_cpu = sum(p.cpu_ms for p in procs)
    assert cluster.sim.now >= total_cpu - 1e-6
    for proc, ms in zip(procs, work):
        assert proc.cpu_ms >= ms - 1e-6
        assert proc.cpu_ms <= ms + 1.0  # trap overhead only


@given(_compute_workloads())
@settings(max_examples=20, deadline=None)
def test_runs_are_deterministic(workload):
    """Identical seeds and workloads give identical final clocks and
    CPU charges."""
    work, seed = workload

    def run_once():
        cluster = Cluster(seed=seed)

        def make_guest(ms):
            def guest(sys, argv):
                yield sys.compute(ms)
                yield sys.exit(0)

            return guest

        procs = [
            cluster.spawn("red", make_guest(ms), uid=100) for ms in work
        ]
        cluster.run_until_exit(procs)
        return cluster.sim.now, [p.cpu_ms for p in procs]

    assert run_once() == run_once()


@given(
    st.integers(min_value=0, max_value=300),
    st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_datagram_pair_gateway_is_fifo(seed, sizes):
    """Local datagram socketpairs (the daemon gateway) deliver whole
    messages in order, whatever the payload pattern."""
    cluster = Cluster(seed=seed)
    got = []

    def guest(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_DGRAM)
        for i, size in enumerate(sizes):
            yield sys.write(a, bytes([i % 256]) * size)
        for __ in sizes:
            got.append((yield sys.read(b, 2048)))
        yield sys.exit(0)

    proc = cluster.spawn("red", guest, uid=100)
    cluster.run_until_exit([proc])
    assert [len(d) for d in got] == sizes
    for i, data in enumerate(got):
        assert data == bytes([i % 256]) * sizes[i]
