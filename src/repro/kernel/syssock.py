"""Syscall handlers: the 4.2BSD IPC layer (paper Section 3.1).

Mixin for :class:`repro.kernel.machine.Machine`.  Every handler that
corresponds to a meter event calls into ``self.meter`` after the
operation succeeds (or, for the *receivecall* event, when the receive
call is first made), exactly where the paper's kernel hooks sit:

    "On every call to a routine that might initiate a meter event, the
    kernel checks whether the call is currently metered for the process
    that is making the call." (Section 3.2)
"""

from repro.kernel import defs, errno, packets
from repro.kernel.errno import SyscallError
from repro.kernel.socket import (
    ST_CONNECTED,
    ST_CONNECTING,
    ST_LISTENING,
    ST_REFUSED,
    ST_UNCONNECTED,
    Socket,
)
from repro.net.addresses import InternetName, PairName, SocketName, UnixName


class SocketCalls:
    """socket/bind/listen/connect/accept/send*/recv*/socketpair/..."""

    # ------------------------------------------------------------------
    # Creation and naming
    # ------------------------------------------------------------------

    def sys_socket(self, proc, request):
        domain, type_, protocol = request.args
        sock = self._make_socket(proc, domain, type_, protocol)
        entry = self.file_table.allocate(sock)
        fd = proc.alloc_fd(entry)
        self.meter.on_socket(proc, entry, sock)
        return fd

    def _make_socket(self, proc, domain, type_, protocol):
        if domain not in (defs.AF_INET, defs.AF_UNIX):
            raise SyscallError(errno.EPROTONOSUPPORT, "domain %r" % domain)
        if type_ not in (defs.SOCK_STREAM, defs.SOCK_DGRAM):
            raise SyscallError(errno.ESOCKTNOSUPPORT, "type %r" % type_)
        return Socket(self, domain, type_, protocol)

    def sys_bind(self, proc, request):
        fd, name_arg = request.args
        entry = proc.lookup_socket(fd)
        sock = entry.obj
        if sock.name is not None:
            raise SyscallError(errno.EINVAL, "already bound")
        name = self._name_for_bind(sock, name_arg)
        self._register_binding(sock, name)
        return 0

    def _name_for_bind(self, sock, name_arg):
        """Turn a guest-supplied name into a SocketName for this host."""
        if isinstance(name_arg, SocketName):
            name_arg = (
                (name_arg.host, name_arg.port)
                if isinstance(name_arg, InternetName)
                else name_arg.path
            )
        if sock.domain == defs.AF_INET:
            if not (isinstance(name_arg, tuple) and len(name_arg) == 2):
                raise SyscallError(errno.EINVAL, "inet name must be (host, port)")
            host, port = name_arg
            if host not in ("", self.host.name):
                raise SyscallError(errno.EADDRNOTAVAIL, str(host))
            if port == 0:
                port = self._alloc_ephemeral_port(sock.type)
            return InternetName(self.host.name, int(port), self.host.host_id)
        if not isinstance(name_arg, str):
            raise SyscallError(errno.EINVAL, "unix name must be a path")
        return UnixName(name_arg)

    def _register_binding(self, sock, name):
        if isinstance(name, InternetName):
            key = (sock.type, name.port)
            if key in self.inet_ports:
                raise SyscallError(errno.EADDRINUSE, "port %d" % name.port)
            self.inet_ports[key] = sock
        elif isinstance(name, UnixName):
            if name.path in self.unix_names:
                raise SyscallError(errno.EADDRINUSE, name.path)
            self.unix_names[name.path] = sock
        sock.name = name

    def _alloc_ephemeral_port(self, sock_type):
        for __ in range(defs.EPHEMERAL_PORT_LAST - defs.EPHEMERAL_PORT_FIRST):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > defs.EPHEMERAL_PORT_LAST:
                self._next_ephemeral = defs.EPHEMERAL_PORT_FIRST
            if (sock_type, port) not in self.inet_ports:
                return port
        raise SyscallError(errno.EADDRNOTAVAIL, "no free ports")

    def _autobind(self, sock):
        """Assign an ephemeral name to an unbound socket on first use."""
        if sock.name is not None:
            return
        if sock.domain == defs.AF_INET:
            port = self._alloc_ephemeral_port(sock.type)
            self._register_binding(
                sock, InternetName(self.host.name, port, self.host.host_id)
            )
        else:
            self._register_binding(
                sock, UnixName("/autobind/{0}".format(self.network.next_pair_id()))
            )

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------

    def sys_listen(self, proc, request):
        fd, backlog = request.args
        sock = proc.lookup_socket(fd).obj
        if not sock.is_stream:
            raise SyscallError(errno.EOPNOTSUPP, "listen on datagram socket")
        if sock.name is None:
            raise SyscallError(errno.EINVAL, "listen before bind")
        sock.state = ST_LISTENING
        sock.backlog = max(1, min(int(backlog), defs.SOMAXCONN))
        return 0

    def sys_connect(self, proc, request):
        fd, name_arg, timeout_ms = request.args
        entry = proc.lookup_socket(fd)
        sock = entry.obj
        if sock.is_dgram:
            # Predefine the recipient (Section 3.1).
            dest = self._resolve_dest_name(sock, name_arg)
            sock.default_dest = dest
            self.meter.on_connect(proc, entry, sock, dest)
            return 0
        return self._stream_connect(proc, request, entry, name_arg, timeout_ms)

    def _stream_connect(self, proc, request, entry, name_arg, timeout_ms):
        sock = entry.obj
        state = proc.syscall_state
        if sock.state == ST_CONNECTED:
            if state.get("initiated"):
                self.meter.on_connect(proc, entry, sock, sock.peer_name)
                return 0
            raise SyscallError(errno.EISCONN)
        if sock.state == ST_REFUSED:
            sock.consume_error()
            sock.state = ST_UNCONNECTED
            raise SyscallError(errno.ECONNREFUSED)
        if sock.state == ST_LISTENING:
            raise SyscallError(errno.EINVAL, "connect on listening socket")
        if sock.error is not None:
            err = sock.consume_error()
            sock.state = ST_UNCONNECTED
            raise SyscallError(err, "connection reset during connect")
        if not state.get("initiated"):
            dest = self._resolve_dest_name(sock, name_arg)
            dst_host = self._host_for_name(dest)
            self._autobind(sock)
            sock.endpoint_id = self.network.next_endpoint_id()
            self.endpoints[sock.endpoint_id] = sock
            sock.state = ST_CONNECTING
            state["initiated"] = True
            if timeout_ms is not None:
                state["deadline"] = self.sim.now + float(timeout_ms)
                self._schedule_timeout_wake(proc, float(timeout_ms))
            self.send_packet(
                dst_host,
                packets.Packet(
                    packets.CONN_REQ,
                    self.host,
                    dst_name=dest,
                    client_eid=sock.endpoint_id,
                    client_name=sock.name,
                ),
                reliable_channel=("hs", sock.endpoint_id),
                size=64,
            )
        elif "deadline" in state and self.sim.now + 1e-9 >= state["deadline"]:
            # Handshake timed out (the SYN or its reply is marooned on a
            # severed path, or the peer machine is down): abandon the
            # embryo endpoint so a late reply cannot resurrect it.
            self.endpoints.pop(sock.endpoint_id, None)
            self.network.break_channel(("hs", sock.endpoint_id))
            sock.endpoint_id = None
            sock.state = ST_UNCONNECTED
            raise SyscallError(errno.ETIMEDOUT, "connect timed out")
        return self.block(proc, request, [sock.conn_wait])

    def sys_accept(self, proc, request):
        (fd,) = request.args
        entry = proc.lookup_socket(fd)
        sock = entry.obj
        if sock.state != ST_LISTENING:
            raise SyscallError(errno.EINVAL, "accept before listen")
        if not sock.pending:
            return self.block(proc, request, [sock.conn_wait, sock.rd_wait])
        conn = sock.pending.popleft()
        conn_entry = self.file_table.allocate(conn)
        newfd = proc.alloc_fd(conn_entry)
        self.meter.on_accept(proc, entry, conn_entry, sock, conn)
        return (newfd, conn.peer_name)

    def sys_socketpair(self, proc, request):
        domain, type_, protocol = request.args
        if domain == defs.AF_INET:
            raise SyscallError(errno.EOPNOTSUPP, "socketpair is UNIX-domain")
        sock_a = self._make_socket(proc, domain, type_, protocol)
        sock_b = self._make_socket(proc, domain, type_, protocol)
        sock_a.name = PairName(self.network.next_pair_id())
        sock_b.name = PairName(self.network.next_pair_id())
        sock_a.peer_name, sock_b.peer_name = sock_b.name, sock_a.name
        if type_ == defs.SOCK_STREAM:
            for sock in (sock_a, sock_b):
                sock.endpoint_id = self.network.next_endpoint_id()
                self.endpoints[sock.endpoint_id] = sock
                sock.state = ST_CONNECTED
            sock_a.peer = (self.host, sock_b.endpoint_id)
            sock_b.peer = (self.host, sock_a.endpoint_id)
        else:
            sock_a.pair_peer = sock_b
            sock_b.pair_peer = sock_a
            sock_a.state = sock_b.state = ST_CONNECTED
        entry_a = self.file_table.allocate(sock_a)
        entry_b = self.file_table.allocate(sock_b)
        fd_a = proc.alloc_fd(entry_a)
        fd_b = proc.alloc_fd(entry_b)
        # "socketpair() is not treated differently from a pair of socket
        # creates followed by separate connects and accepts; all four
        # messages are produced." (Section 3.2)
        self.meter.on_socket(proc, entry_a, sock_a)
        self.meter.on_socket(proc, entry_b, sock_b)
        self.meter.on_connect(proc, entry_a, sock_a, sock_b.name)
        self.meter.on_accept(proc, entry_b, entry_b, sock_b, sock_b)
        return (fd_a, fd_b)

    def sys_shutdown(self, proc, request):
        """shutdown(fd, "w"): half-close the sending side so the peer
        reads EOF while this socket can still receive."""
        fd, how = request.args
        sock = proc.lookup_socket(fd).obj
        if how != "w":
            raise SyscallError(errno.EINVAL, "only write shutdown supported")
        if sock.state != ST_CONNECTED:
            raise SyscallError(errno.ENOTCONN)
        if not sock.write_closed:
            sock.write_closed = True
            if sock.pair_peer is not None:
                sock.pair_peer.set_peer_closed(full=False)
            elif sock.peer is not None:
                peer_host, peer_eid = sock.peer
                packet = packets.Packet(
                    packets.STREAM_CLOSE, self.host, dst_eid=peer_eid, how="wr"
                )
                self.send_packet(
                    peer_host,
                    packet,
                    reliable_channel=("conn", sock.endpoint_id, peer_eid),
                    size=32,
                )
        return 0

    def sys_getsockname(self, proc, request):
        (fd,) = request.args
        return proc.lookup_socket(fd).obj.name

    def sys_getpeername(self, proc, request):
        (fd,) = request.args
        sock = proc.lookup_socket(fd).obj
        if sock.peer_name is None:
            raise SyscallError(errno.ENOTCONN)
        return sock.peer_name

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def _resolve_dest_name(self, sock, name_arg):
        """Resolve a guest-supplied destination into a SocketName.

        Following Section 3.5.4, Internet destinations are given as
        (literal host name, port); the kernel constructs the address
        using its own view of that host.
        """
        if isinstance(name_arg, SocketName):
            if isinstance(name_arg, InternetName):
                name_arg = (name_arg.host, name_arg.port)
            elif isinstance(name_arg, UnixName):
                name_arg = name_arg.path
            else:
                raise SyscallError(errno.EINVAL, "cannot address a pair name")
        if sock.domain == defs.AF_INET:
            if not (isinstance(name_arg, tuple) and len(name_arg) == 2):
                raise SyscallError(errno.EINVAL, "inet name must be (host, port)")
            host, port = name_arg
            if host == "":
                host = self.host.name
            if host not in self.host_table:
                raise SyscallError(errno.ENETUNREACH, str(host))
            target = self.host_table.lookup(host)
            return InternetName(target.name, int(port), target.host_id)
        if not isinstance(name_arg, str):
            raise SyscallError(errno.EINVAL, "unix name must be a path")
        return UnixName(name_arg)

    def _host_for_name(self, name):
        if isinstance(name, InternetName):
            return self.host_table.lookup(name.host)
        # UNIX-domain communication never crosses machines.
        return self.host

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------

    def sys_send(self, proc, request):
        fd, data = request.args
        entry = proc.lookup_socket(fd)
        return self._socket_write(proc, request, entry, dest_name=None)

    def sys_sendto(self, proc, request):
        fd, data, name_arg = request.args
        entry = proc.lookup_socket(fd)
        return self._socket_write(proc, request, entry, dest_name=name_arg)

    def _socket_write(self, proc, request, entry, dest_name):
        sock = entry.obj
        if sock.is_dgram:
            return self._dgram_send(proc, request, entry, dest_name)
        return self._stream_send(proc, request, entry)

    def _dgram_send(self, proc, request, entry, dest_name):
        sock = entry.obj
        data = request.args[1]
        if len(data) > defs.MAX_DGRAM_BYTES:
            raise SyscallError(errno.EMSGSIZE, "%d bytes" % len(data))
        if dest_name is not None:
            dest = self._resolve_dest_name(sock, dest_name)
        elif sock.pair_peer is not None:
            dest = sock.pair_peer.name
        elif sock.default_dest is not None:
            dest = sock.default_dest
        else:
            raise SyscallError(errno.EINVAL, "datagram send with no recipient")
        self._autobind(sock)
        sock.messages_sent += 1
        sock.bytes_sent += len(data)
        if sock.pair_peer is not None:
            # Local socketpair: reliable delivery within one machine.
            peer = sock.pair_peer
            self.sim.schedule(
                self.network.params.local_latency_ms,
                lambda: peer.enqueue_datagram(data, sock.name),
            )
        else:
            dst_host = self._host_for_name(dest)
            packet = packets.Packet(
                packets.DGRAM,
                self.host,
                dst_name=dest,
                data=data,
                src_name=sock.name,
            )
            self.network.send_datagram(
                self.host,
                dst_host,
                packets.packet_size(len(data)),
                lambda: dst_host.machine.deliver_packet(packet),
            )
        self.meter.on_send(proc, entry, sock, len(data), dest)
        return len(data)

    def _stream_send(self, proc, request, entry):
        sock = entry.obj
        data = request.args[1]
        state = proc.syscall_state
        if sock.state != ST_CONNECTED:
            raise SyscallError(errno.ENOTCONN)
        if sock.write_closed:
            raise SyscallError(errno.EPIPE, "shutdown")
        if "remaining" not in state:
            state["remaining"] = data
        while state["remaining"]:
            if sock.peer_gone:
                raise SyscallError(errno.EPIPE)
            if sock.send_credit <= 0:
                return self.block(proc, request, [sock.wr_wait])
            chunk = state["remaining"][: sock.send_credit]
            state["remaining"] = state["remaining"][len(chunk) :]
            sock.send_credit -= len(chunk)
            self._ship_stream_data(sock, chunk)
        sock.messages_sent += 1
        sock.bytes_sent += len(data)
        # "when one writes across a connection, the name of the recipient
        # is not available to the metering software ... the length of the
        # name is specified as zero" (Section 4.1).
        self.meter.on_send(proc, entry, sock, len(data), None)
        return len(data)

    def _ship_stream_data(self, sock, chunk):
        peer_host, peer_eid = sock.peer
        packet = packets.Packet(
            packets.STREAM_DATA, self.host, dst_eid=peer_eid, data=chunk
        )
        self.network.send_reliable(
            ("conn", sock.endpoint_id, peer_eid),
            self.host,
            peer_host,
            packets.packet_size(len(chunk)),
            lambda: peer_host.machine.deliver_packet(packet),
        )

    def kernel_stream_send(self, sock, data):
        """Kernel-originated stream write (meter messages): reliable and
        FIFO like any stream data, but exempt from flow control -- the
        paper buffers meter messages in the kernel until delivery."""
        if sock.state != ST_CONNECTED or sock.peer is None:
            return False
        if sock.peer_gone or sock.error is not None:
            return False  # connection reset: the path to the filter died
        self._ship_stream_data(sock, data)
        sock.messages_sent += 1
        sock.bytes_sent += len(data)
        return True

    def _socket_read(self, proc, request, entry, with_name):
        sock = entry.obj
        nbytes = request.args[1]
        state = proc.syscall_state
        if not state.get("recvcall_metered"):
            state["recvcall_metered"] = True
            self.meter.on_recvcall(proc, entry, sock)
        err = sock.error
        if err is not None:
            sock.consume_error()
            raise SyscallError(err)
        if sock.is_stream:
            if sock.state == ST_LISTENING:
                raise SyscallError(errno.EINVAL, "read on listening socket")
            if sock.state != ST_CONNECTED:
                raise SyscallError(errno.ENOTCONN)
            if sock.recv_bytes > 0:
                data = sock.take_stream_bytes(nbytes)
                self._return_window(sock, len(data))
                self.meter.on_recv(proc, entry, sock, len(data), sock.peer_name)
                return (data, sock.peer_name) if with_name else data
            if sock.peer_closed:
                return (b"", sock.peer_name) if with_name else b""
            return self.block(proc, request, [sock.rd_wait])
        # Datagram socket.
        if sock.recv_queue:
            data, src_name = sock.take_datagram(nbytes)
            self.meter.on_recv(proc, entry, sock, len(data), src_name)
            return (data, src_name) if with_name else data
        return self.block(proc, request, [sock.rd_wait])

    def _return_window(self, sock, nbytes):
        """Return flow-control credit to the stream peer."""
        if sock.peer is None or nbytes <= 0:
            return
        peer_host, peer_eid = sock.peer
        packet = packets.Packet(
            packets.STREAM_WINDOW, self.host, dst_eid=peer_eid, n=nbytes
        )
        self.network.send_reliable(
            ("win", sock.endpoint_id, peer_eid),
            self.host,
            peer_host,
            packets.packet_size(8),
            lambda: peer_host.machine.deliver_packet(packet),
        )
