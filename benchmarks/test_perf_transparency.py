"""P2 -- Transparency / perturbation (Section 2.2).

"The measurements will cause some degradation of the computation's
performance, but this degradation should be kept as small as
possible."  The bench runs the same computation unmetered, metered
with a few flags, and metered with all flags + immediate, and reports
completion time and CPU charged.
"""

import pytest

from repro.core.cluster import Cluster
from repro.kernel import defs
from repro.metering import flags as mf
from tests.metering.harness import metered_spawn, start_collector

ROUNDS = 60


def _worker(sys, argv):
    """A mixed compute/communicate loop."""
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", 6100))
    for i in range(ROUNDS):
        yield sys.compute(2.0)
        yield sys.sendto(fd, b"tick %d" % i, ("green", 6000))
    yield sys.exit(0)


def _run(flags):
    cluster = Cluster(seed=8)
    start_collector(cluster)
    start = cluster.sim.now
    if flags is None:
        proc = cluster.spawn("red", _worker, uid=100)
    else:
        proc = metered_spawn(cluster, "red", _worker, flags=flags)
    cluster.run_until_exit([proc])
    return cluster.sim.now - start, proc.cpu_ms


@pytest.mark.parametrize(
    "label,flags",
    [
        ("unmetered", None),
        ("send-only", mf.METERSEND),
        ("all-buffered", mf.M_ALL),
        ("all-immediate", mf.M_ALL | mf.M_IMMEDIATE),
    ],
)
def test_perf_transparency_settings(benchmark, label, flags):
    elapsed, cpu = benchmark.pedantic(_run, args=(flags,), rounds=1, iterations=1)
    print(
        "\n[P2] {0:<14} elapsed {1:8.2f} ms   cpu {2:7.2f} ms".format(
            label, elapsed, cpu
        )
    )
    assert elapsed > 0


def test_perf_perturbation_is_small(benchmark):
    """Full metering perturbs the run by well under 10%."""
    def compare():
        return _run(None), _run(mf.M_ALL | mf.M_IMMEDIATE)

    (base_elapsed, base_cpu), (full_elapsed, full_cpu) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert full_elapsed <= base_elapsed * 1.10
    assert full_cpu <= base_cpu * 1.10
    assert full_cpu > base_cpu  # but it is not free either


def test_perf_no_program_changes_needed(benchmark):
    """Transparency in the structural sense: the *same guest function*
    runs metered and unmetered -- no trace calls, no recompilation
    (the contrast the paper draws with METRIC)."""
    def run_both():
        cluster = Cluster(seed=8)
        start_collector(cluster)
        unmetered = cluster.spawn("red", _worker, uid=100)
        metered = metered_spawn(cluster, "green", _worker, flags=mf.M_ALL)
        assert unmetered.main is metered.main
        cluster.run_until_exit([unmetered, metered])
        return unmetered, metered

    unmetered, metered = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert unmetered.exit_reason == metered.exit_reason == defs.EXIT_NORMAL
