"""P7 -- Message delay measurement validation.

The monitor's delay statistics (skew-corrected receive minus send
times) should track the configured network latency, even when the
machines' clocks are wildly skewed.  This is the quantitative face of
Section 4.1's "the times of sending and receiving a message can always
be ordered relative to one another".
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.analysis import MessageDelays, Trace
from repro.net.network import NetworkParams


def _run(base_latency_ms, skewed, seed=13):
    skews = {"red": (3000.0, 0.0), "green": (-3000.0, 0.0)} if skewed else None
    session = fresh_session(
        seed=seed,
        clock_skew=skews,
        net_params=NetworkParams(base_latency_ms=base_latency_ms, jitter_ms=0.0),
    )
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 15")
    session.command("addprocess pp green pingpongclient red 5100 15")
    session.command("setflags pp send receive accept connect")
    session.command("startjob pp")
    session.settle()
    return MessageDelays(Trace(session.read_trace("f1")))


@pytest.mark.parametrize("latency", [1.0, 5.0, 20.0])
def test_perf_delay_tracks_network_latency(benchmark, latency):
    delays = benchmark.pedantic(_run, args=(latency, False), rounds=1, iterations=1)
    print(
        "\n[P7] configured one-way latency {0:5.1f} ms -> measured mean "
        "{1:5.2f} ms over {2} messages".format(
            latency, delays.mean(), delays.count()
        )
    )
    assert delays.count() >= 30
    assert latency - 0.5 <= delays.mean() <= latency + 4.0


def test_perf_delay_measurement_survives_clock_skew(benchmark):
    def compare():
        return _run(5.0, False), _run(5.0, True)

    calm, skewed = benchmark.pedantic(compare, rounds=1, iterations=1)
    # ±3 s of clock skew barely moves the measured delay.
    assert skewed.mean() == pytest.approx(calm.mean(), abs=1.5)
    assert skewed.negative_fraction() == 0.0
    print(
        "\n[P7] mean delay {0:.2f} ms with true clocks vs {1:.2f} ms "
        "under +/-3 s skew".format(calm.mean(), skewed.mean())
    )
