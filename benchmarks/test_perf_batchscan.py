"""Batch fast-lane guard -- decode/select throughput at 200k events.

Blocking CI gate (the ``decode`` job) for PR 9's vectorized scan
pipeline:

1. build a 200k-event store of bursty per-process runs (8-32 events a
   run, 4 machines, all ten Appendix-A formats) and time the
   dense-rule :func:`~repro.tracestore.select` fast lane, best of 3.
   The dense rule file accepts roughly 30% of the store -- every
   record is screened, a minority is materialized -- which is the
   workload the column pre-screen was built for.  Floor: 1M events/s
   with ``REPRO_BENCH_STRICT=1`` (how the committed BENCH_PR9.json is
   produced); a generous 250k fallback otherwise so slow shared CI
   runners gate real regressions without flaking;
2. prove the fast lane record-identical to the interpreted oracle scan
   on every store flavour: v1, v2, v2-compressed, and a damaged copy
   read in salvage mode;
3. prove the *merged* multi-store output byte-stable: the sha256 of
   the formatted record stream from :func:`merge_scan_fast` equals the
   oracle :func:`merge_scan`'s.

Results land in BENCH_PR9.json at the repo root (uploaded as a CI
artifact) so the perf trajectory has a baseline.
"""

import hashlib
import json
import os
import random
import time
from pathlib import Path

import pytest

from benchmarks.conftest import HOSTS
from repro.filtering.records import format_record
from repro.filtering.rules import parse_rules
from repro.metering.messages import MessageCodec, record_fields
from repro.net.addresses import InternetName
from repro.tracestore import (
    FORMAT_VERSION_V1,
    StoreReader,
    StoreWriter,
    merge_scan,
    merge_scan_fast,
    scan_fast,
    select,
)
from repro.tracestore.writer import flush_to_files

N_EVENTS = 200_000

#: The committed BENCH_PR9.json is produced with REPRO_BENCH_STRICT=1,
#: which enforces the PR's headline floor; plain CI uses the fallback
#: so a slow shared runner cannot flake the gate while a real
#: regression (the fast lane degrading to interpreted speed, ~205k
#: ev/s on a stock runner) still fails it.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
MIN_SELECT_EPS = 1_000_000.0 if STRICT else 250_000.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR9.json"

#: Dense, type-pinned selections with reductions and cross-field
#: comparisons (the Figure 3.4 shapes); tuned to accept ~30% of the
#: synthetic store so the bench pays both screen and materialize cost.
DENSE_RULES = """
type=send, msgLength>512, pc=#*
type=receive, msgLength<128
type=accept, sockName=peerName
type=connect, peerName=inet:green:7777
type=socket, domain=2
type=dup, newSock>48
type=fork, newPid>0, pc=#*
type=termproc, status>0
type=receivecall, sock>96
machine=9
cpuTime>999999999
"""


def _record_bench(key, value):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = value
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _bursty_wire(n=N_EVENTS, seed=9):
    """n encoded meter messages in bursty per-process runs of 8-32,
    cycling machines and all ten Appendix-A formats.

    Each run keeps one (machine, pid, event type) -- the locality a
    real metered computation produces (a send loop meters a run of
    sends, a fork storm a run of forks) and exactly what the batch
    walker's layout/type speculation exploits.  Runs themselves are
    randomly ordered, so every segment still mixes all ten formats."""
    rng = random.Random(seed)
    codec = MessageCodec(HOSTS)
    names = [
        InternetName(HOSTS[(i % 4) + 1], 5000 + i, (i % 4) + 1)
        for i in range(8)
    ]
    wire = []
    i = 0
    while len(wire) < n:
        machine = rng.randrange(1, 5)
        pid = 2000 + rng.randrange(16)
        kind = rng.randrange(10)
        for __ in range(rng.randrange(8, 33)):
            if len(wire) >= n:
                break
            common = dict(
                machine=machine, cpu_time=i, proc_time=(i // 50) * 10
            )
            name = names[i % 8]
            peer = names[(i + 3) % 8]
            if kind == 0:
                msg = codec.encode(
                    "send", pid=pid, pc=i, sock=3,
                    msgLength=16 * (1 + i % 64), destName=name,
                    **codec.name_lengths(destName=name), **common
                )
            elif kind == 1:
                msg = codec.encode(
                    "receive", pid=pid, pc=i, sock=3,
                    msgLength=16 * (1 + i % 64), sourceName=name,
                    **codec.name_lengths(sourceName=name), **common
                )
            elif kind == 2:
                msg = codec.encode(
                    "receivecall", pid=pid, pc=i, sock=i % 128, **common
                )
            elif kind == 3:
                msg = codec.encode(
                    "socket", pid=pid, pc=i, sock=3, domain=2 - i % 2,
                    type=1, protocol=0, **common
                )
            elif kind == 4:
                msg = codec.encode(
                    "dup", pid=pid, pc=i, sock=3, newSock=16 + i % 48,
                    **common
                )
            elif kind == 5:
                msg = codec.encode(
                    "destsocket", pid=pid, pc=i, sock=3, **common
                )
            elif kind == 6:
                msg = codec.encode(
                    "fork", pid=pid, pc=i, newPid=pid + 1 + i % 3, **common
                )
            elif kind == 7:
                msg = codec.encode(
                    "accept", pid=pid, pc=i, sock=3, newSock=4,
                    sockName=name, peerName=name if i % 5 == 0 else peer,
                    **codec.name_lengths(sockName=name, peerName=peer),
                    **common
                )
            elif kind == 8:
                msg = codec.encode(
                    "connect", pid=pid, pc=i, sock=3, sockName=name,
                    peerName=peer,
                    **codec.name_lengths(sockName=name, peerName=peer),
                    **common
                )
            else:
                msg = codec.encode(
                    "termproc", pid=pid, pc=i, status=i % 7 - 3, **common
                )
            wire.append(msg)
            i += 1
    return wire


def _write_store(wire, base, **writer_kwargs):
    writer = StoreWriter(str(base), host_names=HOSTS, **writer_kwargs)
    for payload in wire:
        writer.append(payload)
    writer.close()
    flush_to_files(writer)
    return str(base)


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """One 200k wire, written as every store flavour the gate covers."""
    root = tmp_path_factory.mktemp("batchscan")
    wire = _bursty_wire()
    bases = {
        "v2": _write_store(wire, root / "v2"),
        "v1": _write_store(wire, root / "v1", version=FORMAT_VERSION_V1),
        "zlib": _write_store(wire, root / "zlib", compress=True),
    }
    # A damaged copy for the salvage lane: flip bytes inside a frame of
    # a middle segment (payload corruption the CRC catches), leaving
    # the rest of the store verifiable.
    damaged = root / "damaged"
    _write_store(wire, damaged)
    segments = sorted(damaged.parent.glob("damaged.seg*"))
    victim = segments[len(segments) // 2]
    blob = bytearray(victim.read_bytes())
    blob[100:104] = bytes(b ^ 0xFF for b in blob[100:104])
    victim.write_bytes(bytes(blob))
    bases["damaged"] = str(damaged)
    return bases


def test_batchscan_dense_select_throughput(stores, benchmark):
    reader = StoreReader.from_files(stores["v2"])
    rules = parse_rules(DENSE_RULES)

    # Oracle pass: interpreted scan + interpreted rule application.
    t0 = time.perf_counter()
    oracle = [r for r in reader.scan() if rules.apply(r) is not None]
    oracle_s = time.perf_counter() - t0
    oracle_out = [rules.apply(r) for r in reader.scan()]
    oracle_out = [r for r in oracle_out if r is not None]

    fast = benchmark.pedantic(
        select, args=(reader, rules), rounds=3, iterations=1
    )
    fast_s = benchmark.stats.stats.min

    assert fast == oracle_out
    accepted = len(fast) / N_EVENTS
    # The dense rule file must keep the bench honest: a minority -- but
    # a substantial one -- of records survives selection.
    assert 0.20 <= accepted <= 0.40, accepted

    eps = N_EVENTS / fast_s
    oracle_eps = N_EVENTS / oracle_s
    print(
        "\n[batchscan] dense select: {0:.0f} -> {1:.0f} ev/s "
        "({2:.2f}x), {3}/{4} accepted".format(
            oracle_eps, eps, eps / oracle_eps, len(fast), N_EVENTS
        )
    )
    _record_bench(
        "dense_select",
        {
            "n_events": N_EVENTS,
            "accepted": len(fast),
            "interpreted_eps": round(oracle_eps),
            "fast_eps": round(eps),
            "speedup": round(eps / oracle_eps, 2),
            "strict_floor": STRICT,
            "min_eps_enforced": MIN_SELECT_EPS,
        },
    )
    assert eps >= MIN_SELECT_EPS


def test_batchscan_full_scan_throughput(stores):
    reader = StoreReader.from_files(stores["v2"])
    times = []
    count = 0
    for __ in range(3):
        t0 = time.perf_counter()
        count = sum(1 for __r in scan_fast(reader))
        times.append(time.perf_counter() - t0)
    assert count == N_EVENTS
    eps = N_EVENTS / min(times)
    print("\n[batchscan] full fast scan: {0:.0f} ev/s".format(eps))
    _record_bench("full_scan", {"n_events": N_EVENTS, "fast_eps": round(eps)})


@pytest.mark.parametrize("flavour", ["v2", "v1", "zlib"])
def test_fast_lane_record_identical(stores, flavour):
    reader = StoreReader.from_files(stores[flavour])
    fast = list(scan_fast(reader))
    fast_stats = repr(reader.last_stats)
    slow = list(reader.scan())
    assert fast == slow
    assert len(fast) == N_EVENTS
    assert fast_stats == repr(reader.last_stats)


def test_fast_lane_salvage_identical(stores):
    reader = StoreReader.from_files(stores["damaged"])
    fast = list(scan_fast(reader, salvage=True))
    fast_stats = repr(reader.last_stats)
    slow = list(reader.scan(salvage=True))
    assert fast == slow
    assert reader.last_stats.frames_corrupt > 0  # the damage is real
    assert fast_stats == repr(reader.last_stats)


def test_merged_output_byte_stable(stores):
    readers = [
        StoreReader.from_files(stores["v2"]),
        StoreReader.from_files(stores["zlib"]),
    ]

    def digest(records):
        h = hashlib.sha256()
        for record in records:
            order = ["event"] + record_fields(record["event"])
            h.update(format_record(record, order).encode("ascii"))
            h.update(b"\n")
        return h.hexdigest()

    fast = digest(merge_scan_fast(readers))
    oracle = digest(merge_scan(readers))
    assert fast == oracle
    _record_bench(
        "merged_digest", {"sha256": fast, "stores": 2, "identical": True}
    )
