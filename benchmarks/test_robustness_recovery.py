"""Chaos soak: self-healing across every monitor component.

One metered computation; every component class is hit while it runs --
the filter (killed; supervised relaunch), a meterdaemon (killed, later
restarted as init would), the network (the control machine partitioned
away, then healed), and the control process itself (killed and
restarted; the operator types ``resume`` and nothing else).  The
resulting trace must be record-for-record identical to a fault-free
run of the same seed: the kernel's resend window, the filter's batch
dedup, the orphan drain and the journal replay together guarantee that
a crash costs retransmission, never records.

Runs across several seeds and writes recovery metrics to
BENCH_PR5.json at the repo root (uploaded by the CI ``chaos`` job).
"""

import json
import time
from collections import Counter
from pathlib import Path

from benchmarks.conftest import fresh_session
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR5.json"

SEEDS = [61, 62, 63]
N_SENDS = 80


def _record_bench(key, value):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = value
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _start_job(session):
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command(
        "addprocess j red dgramproducer green 6000 {0} 64 5".format(N_SENDS)
    )
    session.command(
        "addprocess j green dgramproducer red 6001 {0} 64 5".format(N_SENDS)
    )
    session.command("setflags j send termproc immediate")
    session.command("startjob j")


def _trace_multiset(session):
    """The trace as a multiset of (machine, pid, event, pc) keys --
    the identity that must survive the chaos."""
    return Counter(
        (r["machine"], r["pid"], r["event"], r["pc"])
        for r in session.read_trace("f1")
    )


def _run_baseline(seed):
    session = fresh_session(seed=seed)
    _start_job(session)
    session.settle()
    session.command("stopjob j")
    session.settle()
    return _trace_multiset(session)


def _run_chaos(seed):
    session = fresh_session(seed=seed)
    cluster = session.cluster
    _start_job(session)
    now = cluster.sim.now
    plan = (
        FaultPlan()
        .kill_filter(now + 30.0, "blue")          # supervised relaunch
        .kill_daemon(now + 100.0, "green")        # control plane loss
        .partition(now + 120.0, [["yellow"],      # controller cut off from
                                 ["red", "green", "blue"]])  # the world
        .heal(now + 200.0)
        .kill_controller(now + 250.0)             # the tool itself dies
        .restart_controller(now + 350.0)          # operator restarts it
        .restart_daemon(now + 600.0, "green")     # init restarts the daemon
    )
    FaultInjector(cluster, plan, session=session).arm()
    session.settle()
    # The single operator action the design allows: resume.
    before_resume = cluster.sim.now
    resume_out = session.command("resume")
    resume_sim_ms = cluster.sim.now - before_resume
    session.settle()
    session.command("stopjob j")
    session.settle()
    transcript = session.transcript()
    return {
        "multiset": _trace_multiset(session),
        "resume_out": resume_out,
        "resume_sim_ms": resume_sim_ms,
        "transcript": transcript,
        "cluster": cluster,
        "session": session,
    }


def test_chaos_soak_traces_identical_to_fault_free_run():
    per_seed = {}
    zero_loss = True
    t0 = time.perf_counter()
    for seed in SEEDS:
        baseline = _run_baseline(seed)
        chaos = _run_chaos(seed)
        # Self-healing visibly happened.
        assert "WARNING: filter 'f1' on blue was relaunched" in chaos["transcript"]
        assert "resumed 1 filter(s) and 1 job(s)" in chaos["resume_out"]
        # Both producers computed to completion, faults notwithstanding.
        for name in ("red", "green"):
            producers = [
                p
                for p in chaos["cluster"].machine(name).procs.values()
                if p.program_name == "dgramproducer"
            ]
            assert producers[0].exit_reason == defs.EXIT_NORMAL
        missing = baseline - chaos["multiset"]
        extra = chaos["multiset"] - baseline
        per_seed[str(seed)] = {
            "baseline_records": sum(baseline.values()),
            "chaos_records": sum(chaos["multiset"].values()),
            "missing_records": sum(missing.values()),
            "duplicate_or_extra_records": sum(extra.values()),
            "resume_sim_ms": round(chaos["resume_sim_ms"], 3),
        }
        if missing or extra:
            zero_loss = False
        # The acceptance criterion: record-for-record identical.
        assert not missing, "seed {0}: records lost: {1!r}".format(
            seed, list(missing)[:5]
        )
        assert not extra, "seed {0}: records duplicated: {1!r}".format(
            seed, list(extra)[:5]
        )
    _record_bench(
        "chaos_soak",
        {
            "seeds": SEEDS,
            "faults_per_run": 7,
            "sends_per_producer": N_SENDS,
            "zero_record_loss": zero_loss,
            "per_seed": per_seed,
            "wall_seconds_total": round(time.perf_counter() - t0, 3),
        },
    )
