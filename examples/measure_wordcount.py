#!/usr/bin/env python
"""Measuring a data-processing job: the full report in one shot.

Runs a distributed word count (coordinator on yellow, mappers on green
and blue, reducer on red) under full metering and prints the combined
measurement report -- statistics, parallelism, structure, ordering,
audit and timeline -- from the trace alone.

Run:  python examples/measure_wordcount.py
"""

from repro.analysis import Trace
from repro.analysis.report import measurement_report
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all

CORPUS = """\
measurement of distributed programs is the art of seeing
what no single machine can see
the monitor observes and never participates
the trace is the truth the clocks cannot tell
"""


def main():
    cluster = Cluster(seed=77)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    cluster.machine("yellow").fs.install(
        "corpus", CORPUS, owner=session.uid, mode=0o644
    )

    session.command("filter f1 blue")
    session.command("newjob wc")
    session.command("addprocess wc yellow wccoordinator 5700 2 corpus red 5800")
    session.command("addprocess wc red wcreducer 5800 2")
    session.command("addprocess wc green wcmapper yellow 5700")
    session.command("addprocess wc blue wcmapper yellow 5700")
    session.command("setflags wc all")
    session.command("startjob wc")
    session.settle()

    answer = [
        line for line in session.drain_output().splitlines()
        if "top words" in line
    ]
    print("job output:", answer[0] if answer else "(none)")
    print()

    trace = Trace(session.read_trace("f1"))
    print(measurement_report(trace, timeline_rows=20,
                             title="Word count under the monitor"))


if __name__ == "__main__":
    main()
