"""One machine: CPU, memory (the process table), and its kernel.

Composes the syscall handler mixins with:

- a round-robin scheduler (10 ms quantum, one CPU per machine) that
  drives guest generators and charges CPU time at the granularity the
  paper reports (``procTime``, 10 ms ticks);
- signal delivery (stop/continue/kill) -- the mechanism the daemons use
  for process control (Section 3.5.1);
- the packet layer connecting the socket code to the internetwork.
"""

import traceback
from collections import deque

from repro.kernel import defs, packets
from repro.kernel.errno import SyscallError
from repro.kernel.file_table import FileTable
from repro.kernel.filesystem import FileSystem
from repro.kernel.process import Proc
from repro.kernel.socket import ST_CONNECTED, ST_LISTENING
from repro.kernel.syscalls import SYS
from repro.kernel.sysfile import FileCalls
from repro.kernel.sysproc import ProcessCalls
from repro.kernel.syssock import SocketCalls
from repro.net.addresses import InternetName, UnixName


class _Marker:
    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return "<%s>" % self.label


class Machine(SocketCalls, FileCalls, ProcessCalls):
    """A simulated 4.2BSD host."""

    BLOCKED = _Marker("blocked")
    EXITED = _Marker("exited")
    EXECED = _Marker("execed")

    def __init__(self, sim, network, host, host_table, clock, registry):
        self.sim = sim
        self.network = network
        self.host = host
        self.host_table = host_table
        self.clock = clock
        self.registry = registry
        host.machine = self

        self.fs = FileSystem()
        self.file_table = FileTable()

        #: True while this machine is down (fault injection).  A
        #: crashed machine delivers no packets and runs no processes.
        self.crashed = False
        self.crash_count = 0

        # Process table.  Pids only have meaning locally (Section 3.5.1);
        # each machine seeds differently so example transcripts read
        # like the paper's (distinct 21xx identifiers).
        self.procs = {}
        self._next_pid = 2100 + 17 * host.host_id
        self.exit_log = []

        # Scheduler state.
        self.run_queue = deque()
        self.cpu_busy = False
        self._dispatch_scheduled = False

        # Socket namespaces.
        self.inet_ports = {}  # (sock type, port) -> Socket
        self.unix_names = {}  # path -> Socket
        self.endpoints = {}  # endpoint id -> Socket
        self._next_ephemeral = defs.EPHEMERAL_PORT_FIRST

        # Console (sys.log output, crash reports).
        self.console = []

        # User accounts on this machine (Section 3.5.5: "To create a
        # process on a machine, a user must have an account on that
        # machine").  Root always has one.
        self.accounts = set()

        # Syscall dispatch table.
        self._handlers = {
            name[len("sys_") :]: getattr(self, name)
            for name in dir(self)
            if name.startswith("sys_")
        }

        # The metering subsystem (the paper's kernel additions).
        from repro.metering.subsystem import MeterSubsystem

        self.meter = MeterSubsystem(self)

    # ------------------------------------------------------------------
    # Process creation and lifecycle
    # ------------------------------------------------------------------

    def create_process(
        self,
        main=None,
        argv=(),
        uid=0,
        ppid=0,
        program_name=None,
        start=True,
    ):
        """Create a process.

        ``start=False`` leaves it "suspended prior to the start of its
        execution" (Section 3.5.1) -- the daemon's addprocess behaviour.
        """
        pid = self._next_pid
        self._next_pid += 1
        name = program_name or getattr(main, "__name__", "a.out")
        proc = Proc(self, pid, uid, name, ppid=ppid)
        proc.main = main
        proc.argv = list(argv)
        proc.run_token = 0
        proc.compute_remaining = 0.0
        self.procs[pid] = proc
        if ppid in self.procs:
            self.procs[ppid].children.add(pid)
        if start:
            self.continue_proc(proc)
        return proc

    def attach_terminal(self, proc, tty):
        """Wire a terminal to descriptors 0, 1 and 2."""
        entry = self.file_table.allocate(tty)
        for fd in (0, 1, 2):
            proc.install_fd(fd, entry)
        return entry

    def attach_console_stdio(self, proc):
        """Give a directly-spawned process a console as stdio: writes
        land on the machine console, reads return EOF immediately."""
        from repro.kernel.tty import Terminal

        if getattr(self, "_console_tty", None) is None:
            tty = Terminal("console:%s" % self.host.name)
            tty.eof = True

            def on_output(data):
                text = data.decode("ascii", "replace").rstrip("\n")
                for line in text.splitlines():
                    self.console.append(
                        "[{0:10.3f}] stdout: {1}".format(self.sim.now, line)
                    )

            tty.on_output = on_output
            self._console_tty = tty
        return self.attach_terminal(proc, self._console_tty)

    def proc_exit(self, proc, status, reason):
        """Terminate a process: flush metering, release resources,
        notify the parent (the daemon's SIGCHLD path, Section 3.5.1)."""
        if proc.state == defs.PROC_ZOMBIE:
            return
        proc.run_token += 1
        proc.clear_wait_state()
        proc.state = defs.PROC_ZOMBIE
        proc.stopped = False
        proc.exit_status = status
        proc.exit_reason = reason
        # "As part of process termination, any unsent messages are
        # forwarded to the filter." (Section 3.2)
        self.meter.on_termproc(proc)
        if proc.gen is not None:
            try:
                proc.gen.close()
            except Exception:
                pass
            proc.gen = None
        proc.close_all_fds()
        parent = self.procs.get(proc.ppid)
        if parent is not None and parent.state != defs.PROC_ZOMBIE:
            parent.child_events.append(
                {"pid": proc.pid, "status": status, "reason": reason}
            )
            parent.children.discard(proc.pid)
            parent.child_wait.wake_all()
        self.exit_log.append((proc.pid, proc.program_name, status, reason))

    # ------------------------------------------------------------------
    # Machine failure (fault injection)
    # ------------------------------------------------------------------

    def crash(self):
        """Power off instantly: every process dies with no flush, open
        sockets vanish, remote peers are woken with a connection reset,
        and in-flight traffic to or from this host is destroyed.

        The disk (``self.fs``) survives, as a real disk would.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.network.set_host_down(self.host.name)
        # Remote ends of our stream connections learn the hard way:
        # reads fail ECONNRESET, writes fail EPIPE (no graceful close).
        for sock in list(self.endpoints.values()):
            if sock.peer is None:
                continue
            peer_host, peer_eid = sock.peer
            if peer_host is self.host:
                continue
            peer_machine = peer_host.machine
            if peer_machine is None or peer_machine.crashed:
                continue
            peer_sock = peer_machine.endpoints.get(peer_eid)
            if peer_sock is not None:
                peer_sock.reset()
        self.network.break_channels_involving(self.host)
        for proc in list(self.procs.values()):
            self._crash_proc(proc)
        self.procs.clear()
        self.run_queue.clear()
        self.cpu_busy = False
        self.inet_ports.clear()
        self.unix_names.clear()
        self.endpoints.clear()
        # Pending meter-loss notifications die with the daemon that
        # would have read them.
        self.meter.lost_meters.clear()
        self.console.append("[{0:10.3f}] panic: machine crashed".format(self.sim.now))

    def _crash_proc(self, proc):
        """Terminate a process as the hardware dying would: no metering
        flush, no SIGCHLD, no graceful descriptor teardown."""
        if proc.state == defs.PROC_ZOMBIE:
            return
        proc.run_token += 1
        proc.clear_wait_state()
        proc.state = defs.PROC_ZOMBIE
        proc.stopped = False
        proc.exit_status = None
        proc.exit_reason = defs.EXIT_CRASHED
        if proc.gen is not None:
            try:
                proc.gen.close()
            except Exception:
                pass
            proc.gen = None
        proc.fds.clear()
        proc.meter_entry = None
        proc.meter_buffer = []
        proc.meter_window.clear()
        proc.meter_pending_dest = None

    def reboot(self):
        """Bring a crashed machine back with a cold kernel: empty
        process table, fresh file table, no sockets.  The file system
        and user accounts survive; daemons must be restarted."""
        if not self.crashed:
            return
        self.crashed = False
        self.network.set_host_up(self.host.name)
        self.file_table = FileTable()
        self._next_ephemeral = defs.EPHEMERAL_PORT_FIRST
        self._dispatch_scheduled = False
        self.console.append("[{0:10.3f}] reboot".format(self.sim.now))

    def reap_zombies(self):
        """Remove zombie entries from the process table."""
        for pid in [p for p, proc in self.procs.items() if proc.state == defs.PROC_ZOMBIE]:
            del self.procs[pid]

    def active_procs(self):
        return [p for p in self.procs.values() if p.state != defs.PROC_ZOMBIE]

    # ------------------------------------------------------------------
    # Signals (process control)
    # ------------------------------------------------------------------

    def post_signal(self, proc, sig):
        if proc.state == defs.PROC_ZOMBIE:
            return
        if sig in (defs.SIGKILL, defs.SIGTERM, defs.SIGINT, defs.SIGHUP):
            self.proc_exit(proc, status=sig, reason=defs.EXIT_SIGNALED)
        elif sig == defs.SIGSTOP:
            self.stop_proc(proc)
        elif sig == defs.SIGCONT:
            self.continue_proc(proc)
        # SIGCHLD / SIGPIPE: state-change notification handled elsewhere.

    def stop_proc(self, proc):
        if proc.state == defs.PROC_ZOMBIE:
            return
        proc.stopped = True
        if proc.state == defs.PROC_RUNNABLE:
            proc.state = defs.PROC_STOPPED
        # RUNNING finishes its step then parks; SLEEPING parks on wake.

    def continue_proc(self, proc):
        if proc.state == defs.PROC_ZOMBIE:
            return
        proc.stopped = False
        if proc.state in (defs.PROC_STOPPED, defs.PROC_EMBRYO):
            proc.state = defs.PROC_RUNNABLE
            self._enqueue(proc)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def wake(self, proc):
        """Retry a blocked syscall (BSD wakeup())."""
        if proc.state != defs.PROC_SLEEPING:
            return
        if proc.stopped:
            proc.state = defs.PROC_STOPPED
            return
        proc.state = defs.PROC_RUNNABLE
        self._enqueue(proc)

    def _enqueue(self, proc):
        if not getattr(proc, "in_runq", False):
            proc.in_runq = True
            self.run_queue.append(proc)
        self._kick()

    def _kick(self):
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.sim.call_soon(self._dispatch_event)

    def _dispatch_event(self):
        self._dispatch_scheduled = False
        self._maybe_dispatch()

    def _maybe_dispatch(self):
        if self.cpu_busy:
            return
        while self.run_queue:
            proc = self.run_queue.popleft()
            proc.in_runq = False
            if proc.state != defs.PROC_RUNNABLE:
                continue
            self._run(proc)
            return

    def _run(self, proc):
        proc.state = defs.PROC_RUNNING
        self.cpu_busy = True
        token = proc.run_token
        if proc.compute_remaining > 1e-9:
            self._compute_slice(proc, token)
            return
        if proc.retry is not None:
            # Retrying a blocked syscall costs no fresh trap.
            self._execute_syscall(proc, proc.retry)
            return
        self._resume_guest(proc, token)

    def _resume_guest(self, proc, token):
        try:
            if proc.gen is None:
                proc.gen = proc.main(SYS, list(proc.argv))
                request = proc.gen.send(None)
            elif proc.pending_exc is not None:
                exc = proc.pending_exc
                proc.pending_exc = None
                proc.has_pending = False
                request = proc.gen.throw(exc)
            else:
                value = proc.pending_value
                proc.pending_value = None
                proc.has_pending = False
                request = proc.gen.send(value)
        except StopIteration as stop:
            status = stop.value if stop.value is not None else 0
            self.proc_exit(proc, status=status, reason=defs.EXIT_NORMAL)
            self._release_cpu()
            return
        except SyscallError as err:
            self.console_log(proc, "uncaught %s" % err)
            self.proc_exit(proc, status=err.errno, reason=defs.EXIT_ERROR)
            self._release_cpu()
            return
        except Exception:
            self.console_log(proc, "crash:\n" + traceback.format_exc())
            self.proc_exit(proc, status=1, reason=defs.EXIT_ERROR)
            self._release_cpu()
            return

        proc.step_count += 1
        if request.name == "compute":
            proc.compute_remaining = float(request.args[0])
            if proc.compute_remaining <= 1e-9:
                self._complete(proc, value=None)
                self._release_cpu()
                return
            self._compute_slice(proc, token)
            return
        # A syscall trap: charge the trap cost, then execute.
        proc.syscall_count += 1
        proc.charge_cpu(defs.SYSCALL_COST_MS)
        self.sim.schedule(
            defs.SYSCALL_COST_MS, lambda: self._finish_trap(proc, token, request)
        )

    def _finish_trap(self, proc, token, request):
        if proc.run_token != token or proc.state != defs.PROC_RUNNING:
            self._release_cpu()
            return
        self._execute_syscall(proc, request)

    def _execute_syscall(self, proc, request):
        handler = self._handlers.get(request.name)
        try:
            if handler is None:
                raise SyscallError(22, "unknown syscall %r" % request.name)
            result = handler(proc, request)
        except SyscallError as err:
            self._complete(proc, exc=err)
        else:
            if result is self.BLOCKED or result is self.EXITED:
                pass
            elif result is self.EXECED:
                proc.clear_wait_state()
                proc.has_pending = False
                proc.pending_value = proc.pending_exc = None
                if not proc.stopped:
                    proc.state = defs.PROC_RUNNABLE
                    self._enqueue(proc)
                else:
                    proc.state = defs.PROC_STOPPED
            else:
                self._complete(proc, value=result)
        self._release_cpu()

    def block(self, proc, request, queues):
        """Park ``proc`` until one of ``queues`` wakes it (handlers call
        this and return the result)."""
        proc.retry = request
        for queue in queues:
            queue.add(proc)
            if queue not in proc.waiting_on:
                proc.waiting_on.append(queue)
        proc.state = defs.PROC_SLEEPING
        return self.BLOCKED

    def _complete(self, proc, value=None, exc=None):
        proc.clear_wait_state()
        if proc.state == defs.PROC_ZOMBIE:
            return
        proc.pending_value = value
        proc.pending_exc = exc
        proc.has_pending = True
        if proc.stopped:
            proc.state = defs.PROC_STOPPED
        else:
            proc.state = defs.PROC_RUNNABLE
            self._enqueue(proc)

    def _compute_slice(self, proc, token):
        slice_ms = min(proc.compute_remaining, defs.QUANTUM_MS)
        self.sim.schedule(
            slice_ms, lambda: self._finish_slice(proc, token, slice_ms)
        )

    def _finish_slice(self, proc, token, slice_ms):
        if proc.run_token != token or proc.state != defs.PROC_RUNNING:
            self._release_cpu()
            return
        proc.charge_cpu(slice_ms)
        proc.compute_remaining -= slice_ms
        if proc.compute_remaining > 1e-9:
            if proc.stopped:
                proc.state = defs.PROC_STOPPED
            else:
                proc.state = defs.PROC_RUNNABLE
                self._enqueue(proc)
        else:
            proc.compute_remaining = 0.0
            self._complete(proc, value=None)
        self._release_cpu()

    def _release_cpu(self):
        self.cpu_busy = False
        self._kick()

    # ------------------------------------------------------------------
    # Packet layer
    # ------------------------------------------------------------------

    def send_packet(self, dst_host, packet, reliable_channel=None, size=64):
        deliver = lambda: dst_host.machine.deliver_packet(packet)
        if reliable_channel is not None:
            self.network.send_reliable(
                reliable_channel, self.host, dst_host, size, deliver
            )
        else:
            self.network.send_datagram(self.host, dst_host, size, deliver)

    def deliver_packet(self, packet):
        if self.crashed:
            return  # a dead machine receives nothing
        handler = {
            packets.CONN_REQ: self._on_conn_req,
            packets.CONN_ACK: self._on_conn_ack,
            packets.CONN_REFUSED: self._on_conn_refused,
            packets.STREAM_DATA: self._on_stream_data,
            packets.STREAM_WINDOW: self._on_stream_window,
            packets.STREAM_CLOSE: self._on_stream_close,
            packets.DGRAM: self._on_dgram,
        }[packet.kind]
        handler(packet)

    def _listener_for(self, name):
        if isinstance(name, InternetName):
            sock = self.inet_ports.get((defs.SOCK_STREAM, name.port))
        elif isinstance(name, UnixName):
            sock = self.unix_names.get(name.path)
        else:
            sock = None
        if sock is not None and sock.state == ST_LISTENING:
            return sock
        return None

    def _on_conn_req(self, packet):
        from repro.kernel.socket import Socket

        listener = self._listener_for(packet.dst_name)
        refused = listener is None or len(listener.pending) >= listener.backlog
        if refused:
            reply = packets.Packet(
                packets.CONN_REFUSED, self.host, client_eid=packet.client_eid
            )
            self.send_packet(
                packet.src_host,
                reply,
                reliable_channel=("hs", packet.client_eid),
                size=32,
            )
            return
        conn = Socket(self, listener.domain, defs.SOCK_STREAM)
        conn.name = listener.name
        conn.peer_name = packet.client_name
        conn.peer = (packet.src_host, packet.client_eid)
        conn.endpoint_id = self.network.next_endpoint_id()
        conn.state = ST_CONNECTED
        self.endpoints[conn.endpoint_id] = conn
        listener.pending.append(conn)
        listener.conn_wait.wake_all()
        listener.rd_wait.wake_all()
        reply = packets.Packet(
            packets.CONN_ACK,
            self.host,
            client_eid=packet.client_eid,
            server_eid=conn.endpoint_id,
            server_name=listener.name,
        )
        self.send_packet(
            packet.src_host, reply, reliable_channel=("hs", packet.client_eid), size=64
        )

    def _on_conn_ack(self, packet):
        sock = self.endpoints.get(packet.client_eid)
        if sock is None or sock.state == ST_CONNECTED:
            return
        sock.state = ST_CONNECTED
        sock.peer = (packet.src_host, packet.server_eid)
        sock.peer_name = packet.server_name
        sock.conn_wait.wake_all()

    def _on_conn_refused(self, packet):
        from repro.kernel.socket import ST_REFUSED

        sock = self.endpoints.get(packet.client_eid)
        if sock is None:
            return
        sock.state = ST_REFUSED
        sock.conn_wait.wake_all()

    def _on_stream_data(self, packet):
        sock = self.endpoints.get(packet.dst_eid)
        if sock is None:
            return  # connection already closed; data lost to the void
        sock.enqueue_stream_data(packet.data)

    def _on_stream_window(self, packet):
        sock = self.endpoints.get(packet.dst_eid)
        if sock is not None:
            sock.add_send_credit(packet.n)

    def _on_stream_close(self, packet):
        sock = self.endpoints.get(packet.dst_eid)
        if sock is not None:
            full = packet.fields.get("how", "full") == "full"
            sock.set_peer_closed(full=full)

    def _on_dgram(self, packet):
        name = packet.dst_name
        if isinstance(name, InternetName):
            sock = self.inet_ports.get((defs.SOCK_DGRAM, name.port))
        elif isinstance(name, UnixName):
            sock = self.unix_names.get(name.path)
        else:
            sock = None
        if sock is not None and sock.is_dgram:
            sock.enqueue_datagram(packet.data, packet.src_name)
        # else: dropped, exactly like a UDP packet to a dead port.

    # ------------------------------------------------------------------
    # Socket teardown (called by Socket.close via refcount zero)
    # ------------------------------------------------------------------

    def socket_closed(self, sock):
        if sock.name is not None:
            if isinstance(sock.name, InternetName):
                key = (sock.type, sock.name.port)
                if self.inet_ports.get(key) is sock:
                    del self.inet_ports[key]
            elif isinstance(sock.name, UnixName):
                if self.unix_names.get(sock.name.path) is sock:
                    del self.unix_names[sock.name.path]
        if sock.endpoint_id is not None:
            self.endpoints.pop(sock.endpoint_id, None)
        if sock.is_stream and sock.peer is not None and not sock.peer_closed:
            peer_host, peer_eid = sock.peer
            packet = packets.Packet(packets.STREAM_CLOSE, self.host, dst_eid=peer_eid)
            self.send_packet(
                peer_host,
                packet,
                reliable_channel=("conn", sock.endpoint_id, peer_eid),
                size=32,
            )
        # The connection is over: release its FIFO clearance state so a
        # long run does not accumulate an entry per dead connection.
        # (Graceful: the STREAM_CLOSE just sent still arrives.)
        if sock.endpoint_id is not None:
            self.network.close_channel(("hs", sock.endpoint_id))
            if sock.peer is not None:
                __, peer_eid = sock.peer
                self.network.close_channel(("conn", sock.endpoint_id, peer_eid))
                self.network.close_channel(("win", sock.endpoint_id, peer_eid))
        if sock.pair_peer is not None:
            sock.pair_peer.set_peer_closed()
            sock.pair_peer.pair_peer = None
            sock.pair_peer = None
        for conn in list(sock.pending):
            conn.close()
        sock.pending.clear()
        sock.rd_wait.wake_all()
        sock.wr_wait.wake_all()
        sock.conn_wait.wake_all()

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------

    def machine_for(self, host_name):
        return self.host_table.lookup(host_name).machine

    def console_log(self, proc, message):
        self.console.append(
            "[{0:10.3f}] {1}({2}): {3}".format(
                self.sim.now, proc.program_name, proc.pid, message
            )
        )

    def __repr__(self):
        return "Machine({0!r}, {1} procs)".format(self.host.name, len(self.procs))
