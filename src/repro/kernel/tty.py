"""A terminal device.

The control process reads user commands from its terminal and writes
prompts and replies back (Section 4.4: "the user is working from a
terminal connected to machine A and is running the control process").
The host-side test/session API pushes input lines and collects output.
"""

from collections import deque

from repro.kernel.waitq import WaitQueue


class Terminal:
    """A tty usable as descriptors 0/1/2 of a guest process."""

    kind = "tty"

    def __init__(self, name="console"):
        self.name = name
        self._input = deque()
        self._input_bytes = 0
        self.eof = False
        self.output = bytearray()
        self.rd_wait = WaitQueue("tty-read")
        #: Optional hook called with each written bytes chunk.
        self.on_output = None

    # -- host side -------------------------------------------------------

    def push_input(self, text):
        """Type ``text`` at the terminal (host-side API)."""
        data = text.encode("ascii") if isinstance(text, str) else bytes(text)
        if data:
            self._input.append(data)
            self._input_bytes += len(data)
        self.rd_wait.wake_all()

    def push_line(self, line):
        self.push_input(line.rstrip("\n") + "\n")

    def send_eof(self):
        """Control-D at the start of a line."""
        self.eof = True
        self.rd_wait.wake_all()

    def take_output(self):
        """Drain and return everything written so far, as text."""
        data = bytes(self.output)
        del self.output[:]
        return data.decode("ascii", "replace")

    def peek_output(self):
        return bytes(self.output).decode("ascii", "replace")

    # -- kernel side -------------------------------------------------------

    def readable(self):
        return self._input_bytes > 0 or self.eof

    def read(self, nbytes):
        """Return up to ``nbytes`` of typed input (b"" only at EOF)."""
        parts = []
        remaining = nbytes
        while remaining > 0 and self._input:
            chunk = self._input[0]
            if len(chunk) <= remaining:
                parts.append(chunk)
                remaining -= len(chunk)
                self._input.popleft()
            else:
                parts.append(chunk[:remaining])
                self._input[0] = chunk[remaining:]
                remaining = 0
        data = b"".join(parts)
        self._input_bytes -= len(data)
        return data

    def write(self, data):
        self.output.extend(data)
        if self.on_output is not None:
            self.on_output(bytes(data))
        return len(data)

    def close(self):
        pass
