"""Appendix B -- Script of the example session.

Replays the measurement session of Section 4.4 command for command and
checks the transcript against the shapes of the appendix (created/
started/DONE/removed lines, controller prompt).  The bench measures a
complete user session end to end.
"""

import re

from benchmarks.conftest import fresh_session
from repro.kernel import defs


def _prog_a(sys, argv):
    from repro import guestlib

    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, ("green", 7777)
    )
    for i in range(3):
        yield sys.write(fd, b"msg-%d" % i)
        yield sys.read(fd, 100)
    yield sys.close(fd)
    yield sys.exit(0)


def _prog_b(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", 7777))
    yield sys.listen(fd, 5)
    conn, __peer = yield sys.accept(fd)
    while True:
        data = yield sys.read(conn, 100)
        if not data:
            break
        yield sys.write(conn, b"r:" + data)
    yield sys.close(conn)
    yield sys.exit(0)


APPENDIX_B_EXPECTED = [
    r"filter 'f1' \.\.\. created: identifier = \d+",
    r"process 'A' \.\.\. created: identifier = \d+",
    r"process 'B' \.\.\. created: identifier = \d+",
    r"new job flags = send receive fork accept connect",
    r"Process 'A' : Flags set",
    r"Process 'B' : Flags set",
    r"'A' started\.",
    r"'B' started\.",
    r"DONE: process A in job 'foo' terminated: reason: normal",
    r"DONE: process B in job 'foo' terminated: reason: normal",
    r"'A' removed",
    r"'B' removed",
]


def _replay():
    session = fresh_session(seed=7)
    session.install_program("A", _prog_a)
    session.install_program("B", _prog_b)
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red A")
    session.command("addprocess foo green B")
    session.command("setflags foo send receive fork accept connect")
    session.command("startjob foo")
    session.settle()
    session.command("rmjob foo")
    session.command("getlog f1 trace")
    session.command("bye")
    return session


def test_appendix_b_session_replay(benchmark):
    session = benchmark.pedantic(_replay, rounds=3, iterations=1)
    transcript = session.transcript()
    position = 0
    for pattern in APPENDIX_B_EXPECTED:
        match = re.search(pattern, transcript[position:])
        assert match, "missing line matching %r" % pattern
        position += match.start()
    trace_text = session.read_controller_file("trace")
    assert "event=accept" in trace_text
    assert "event=send" in trace_text
    print("\n[appendix B] transcript reproduced, {0} trace records "
          "retrieved by getlog".format(len(trace_text.splitlines())))
