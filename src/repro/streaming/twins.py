"""Post-mortem twins: the oracle for every online analysis.

The streaming engine consumes exactly the record stream the filter
commits, in commit order; the finished log *is* that stream.  So every
online analysis has two independent checks:

- **Replay twin** -- fold the finished log through a fresh
  :class:`~repro.streaming.engine.StreamEngine`.  Bit-for-bit equality
  with the live engine proves the tap fed the fold exactly the
  committed records (no drops, no double-counted replays).
- **Batch twin** -- run the original :mod:`repro.analysis` passes over
  the same records and digest their results the same way.  Equality
  proves the *incremental* algorithms compute the same answers as the
  reference batch algorithms.

The batch analysis imports are kept inside functions: the streaming
package itself must stay importable inside a filter guest without the
analysis stack's heavy dependencies.
"""

import json

from repro.streaming.engine import StreamEngine, digest_add


def replay_engine(records, window_ms=None, specs=None):
    """Fold ``records`` through a fresh engine (the replay twin).

    ``specs`` optionally registers continuous queries as ``(qid, spec)``
    pairs before the replay, so query state replays too."""
    kwargs = {} if window_ms is None else {"window_ms": window_ms}
    engine = StreamEngine(**kwargs)
    for qid, spec in specs or ():
        engine.add_query(spec, qid=qid)
    for record in records:
        engine.update(record)
    return engine


def replay_store(reader, window_ms=None, specs=None, salvage=False):
    """Replay twin fed straight from a binary store.

    Store-mode filters commit records in frame order, so folding a
    :func:`~repro.tracestore.scan_fast` of the finished store through a
    fresh engine is the same oracle :func:`replay_engine` computes from
    a text log -- but decoded on the batch fast lane, which matters
    when the twin check runs over a multi-million-record store."""
    from repro.tracestore import scan_fast

    return replay_engine(
        scan_fast(reader, salvage=salvage), window_ms=window_ms, specs=specs
    )


def batch_clock_digest(trace):
    """Digest the batch HappensBefore clocks exactly as the online fold
    digests its own: sparse (nonzero-component) clocks, commutative."""
    from repro.analysis.ordering import HappensBefore

    ordering = HappensBefore(trace)
    digest = 0
    for event in trace:
        clock = ordering.vector_clock(event)
        sparse = tuple(
            (component, value)
            for component, value in enumerate(clock)
            if value
        )
        digest = digest_add(
            digest,
            ("clk", event.machine, event.pid, event.proc_seq, sparse),
        )
    return digest


def batch_pairs_digest(trace):
    """Digest the batch matcher's pair set the online way."""
    digest = 0
    for pair in trace.matcher().pairs:
        digest = digest_add(
            digest,
            (
                "pair",
                pair.send.machine,
                pair.send.pid,
                pair.send.proc_seq,
                pair.recv.machine,
                pair.recv.pid,
                pair.recv.proc_seq,
                pair.nbytes,
            ),
        )
    return digest


def batch_per_process(trace):
    """CommunicationStatistics per-process counters, keyed and shaped
    like the engine's (JSON-native)."""
    from repro.analysis.stats import CommunicationStatistics

    stats = CommunicationStatistics(trace)
    shaped = {}
    for (machine, pid), pstats in stats.per_process.items():
        as_dict = pstats.as_dict()
        as_dict.pop("process")
        shaped["{0}:{1}".format(machine, pid)] = dict(
            as_dict, events=dict(as_dict["events"])
        )
    return shaped


def batch_digest(trace):
    """Every batch-twin answer in the engine's ``digest()`` shape."""
    from repro.analysis.stats import CommunicationStatistics

    return {
        "records": len(trace),
        "clock_digest": batch_clock_digest(trace),
        "pairs_digest": batch_pairs_digest(trace),
        "totals": CommunicationStatistics(trace).totals(),
        "per_process": batch_per_process(trace),
    }


def batch_unmatched_dgram_sends(trace):
    """Ground truth for the ``undelivered`` query: datagram sends (they
    carry a destName) the batch matcher could not pair.  Returned as
    (machine, pid, proc_seq) identities, the same key firings report."""
    return {
        (event.machine, event.pid, event.proc_seq)
        for event in trace.matcher().unmatched_sends
        if event.name("destName")
    }


def canonical(value):
    """JSON round-trip: what a snapshot looks like after the query RPC
    (tuples to lists, int keys to strings), so live-vs-twin comparisons
    compare like with like."""
    return json.loads(json.dumps(value, sort_keys=True))


def diff_digests(online, batch):
    """Human-readable mismatches between an online ``digest()`` and a
    batch twin digest; empty means the oracle holds."""
    online = canonical(online)
    batch = canonical(batch)
    problems = []
    for key in ("records", "clock_digest", "pairs_digest", "totals"):
        if online.get(key) != batch.get(key):
            problems.append(
                "{0}: online {1!r} != batch {2!r}".format(
                    key, online.get(key), batch.get(key)
                )
            )
    online_procs = online.get("per_process", {})
    batch_procs = batch.get("per_process", {})
    for key in sorted(set(online_procs) | set(batch_procs)):
        if online_procs.get(key) != batch_procs.get(key):
            problems.append(
                "per_process[{0}]: online {1!r} != batch {2!r}".format(
                    key, online_procs.get(key), batch_procs.get(key)
                )
            )
    return problems
