"""Appendix A -- Meter message formats.

Round-trips every struct of <metermsgs.h> and checks each wire size
against the C layout (4-byte longs, 16-byte NAMEs, 24-byte header).
"""

from benchmarks.conftest import HOSTS
from repro.metering import messages
from repro.metering.messages import EVENT_TYPES, MessageCodec, message_length
from repro.net.addresses import InternetName

#: Expected sizes from the C declarations.
C_LAYOUT_SIZES = {
    "accept": 80,  # header + 6 longs + 2 NAMEs
    "connect": 76,  # header + 5 longs + 2 NAMEs
    "dup": 40,  # header + 4 longs
    "fork": 36,  # header + 3 longs
    "receivecall": 36,  # header + 3 longs
    "receive": 60,  # header + 5 longs + 1 NAME
    "send": 60,  # header + 5 longs + 1 NAME
    "socket": 48,  # header + 6 longs
    "destsocket": 36,  # (documented extension)
    "termproc": 36,  # (documented extension)
}


def _round_trip_all(codec):
    name = InternetName("red", 5000, 1)
    results = {}
    for event in EVENT_TYPES:
        body = {}
        for field, kind in messages.BODY_FIELDS[event]:
            if kind == "long" and not field.endswith("NameLen"):
                body[field] = 7
            elif kind == "name":
                body[field] = name
        body.update(
            codec.name_lengths(
                **{
                    f: body[f]
                    for f, k in messages.BODY_FIELDS[event]
                    if k == "name"
                }
            )
        )
        raw = codec.encode(event, machine=1, cpu_time=1, proc_time=0, **body)
        results[event] = (len(raw), codec.decode(raw))
    return results


def test_appendix_a_all_formats(benchmark):
    codec = MessageCodec(HOSTS)
    results = benchmark(_round_trip_all, codec)
    assert set(results) == set(C_LAYOUT_SIZES)
    print("\n[appendix A] wire sizes (bytes):")
    for event, (size, record) in sorted(results.items()):
        assert size == C_LAYOUT_SIZES[event] == message_length(event), event
        assert record["event"] == event
        print("    {0:<12} {1}".format(event, size))
