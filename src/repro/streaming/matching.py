"""Online send/receive matching: :class:`~repro.analysis.matching.
MessageMatcher` as a fold.

The batch matcher sees the whole trace at once; this one must commit
to the same pairing from a single forward pass.  That works because
every batch mechanism is FIFO over arrival order, which is exactly the
order records reach the fold:

- **Connections**: the batch hash join pairs the k-th accept with the
  k-th connect of the same ``(sockName, peerName)`` key, regardless of
  which side appears first -- so two FIFO queues, pairing at the later
  arrival, reproduce it.
- **Streams**: cumulative byte offsets per direction depend only on
  each endpoint's event order, so spans are matched incrementally.  A
  send span is released once receives consume past it; a receive is
  "complete" (all of its matched sends known) once cumulative sent
  bytes cover its range -- later sends start past it.
- **Datagrams**: the batch claim is "earliest compatible unconsumed
  receive, sends in trace order".  Online, a send claims among the
  receives that have arrived; if none fit it goes pending and retries
  (in send-arrival order) as receives arrive.  Because FIFO position
  equals arrival order, the first compatible receive in the full queue
  is claimed exactly when both sides exist.

Known divergence corners, documented rather than papered over (the
equivalence tests and benchmark avoid them; DESIGN 13 discusses them):
the literal-host -> machine-id map (``host_ids``) is built from
connect/accept events *as they arrive* instead of up front, so a
datagram send can be routed through the bare-length index online where
the batch pass would have known the destination id; and events on a
``(machine, sock)`` endpoint *before* the connect/accept that
registers it are treated as outside stream matching (program order
makes this impossible for the endpoint's own process).
"""

from collections import defaultdict, deque


def _host_of(display_name):
    """Literal host of an "inet:host:port" display name, else None.
    (Same rule as repro.analysis.matching, which streaming must not
    import: that package pulls in the heavy analysis dependencies.)"""
    if display_name and display_name.startswith("inet:"):
        return display_name.split(":")[1]
    return None


class _Direction:
    """One direction of a paired connection: cumulative byte spans."""

    __slots__ = ("send_off", "recv_off", "spans", "waiting")

    def __init__(self):
        self.send_off = 0
        self.recv_off = 0
        self.spans = deque()  # (s0, s1, send event), s1 > recv_off
        self.waiting = deque()  # (r0, r1, recv event), r1 > send_off

    def add_send(self, event, matcher):
        s0 = self.send_off
        s1 = s0 + event.length
        self.send_off = s1
        if s1 > s0:
            for r0, r1, recv in self.waiting:
                if r0 >= s1:
                    break
                overlap = min(s1, r1) - max(s0, r0)
                if overlap > 0:
                    matcher.on_pair(event, recv, overlap)
            if s1 > self.recv_off:
                self.spans.append((s0, s1, event))
        waiting = self.waiting
        while waiting and waiting[0][1] <= s1:
            matcher.on_recv_done(waiting.popleft()[2])

    def add_recv(self, event, matcher):
        r0 = self.recv_off
        r1 = r0 + event.length
        self.recv_off = r1
        spans = self.spans
        while spans and spans[0][1] <= r0:
            spans.popleft()
        for s0, s1, send in spans:
            if s0 >= r1:
                break
            overlap = min(s1, r1) - max(s0, r0)
            if overlap > 0:
                matcher.on_pair(send, event, overlap)
        while spans and spans[0][1] <= r1:
            spans.popleft()
        if r1 <= self.send_off:
            matcher.on_recv_done(event)
        else:
            self.waiting.append((r0, r1, event))

    def state_size(self):
        return len(self.spans) + len(self.waiting)


class _Endpoint:
    """A (machine, sock) registered by a connect or accept."""

    __slots__ = ("origin", "pre", "dir_out", "dir_in")

    def __init__(self, origin):
        self.origin = origin  # "connect" | "accept"
        self.pre = []  # buffered ("send"|"recv", event) until paired
        self.dir_out = None
        self.dir_in = None

    @property
    def paired(self):
        return self.dir_out is not None


class _DgramQueue:
    """Datagram receives for one index key, claimed FIFO.

    Entries are shared cells ``[event, consumed]`` (each receive sits
    in the by-(machine, length) *and* the bare-length queue), so a
    claim through one index is seen by the other.  The consumed prefix
    is compacted away, keeping memory bounded by *unconsumed* receives
    rather than all receives ever seen."""

    __slots__ = ("items", "head")

    def __init__(self):
        self.items = []
        self.head = 0

    def append(self, cell):
        self.items.append(cell)

    def claim(self, send_machine, host_ids):
        items = self.items
        head = self.head
        while head < len(items) and items[head][1]:
            head += 1
        if head > 64:
            del items[:head]
            head = 0
        self.head = head
        for i in range(head, len(items)):
            cell = items[i]
            if cell[1]:
                continue
            recv = cell[0]
            src_host = _host_of(recv.source)
            src_id = host_ids.get(src_host) if src_host else None
            if src_id is None or src_id == send_machine:
                return cell
        return None

    def unconsumed(self):
        return [cell[0] for cell in self.items[self.head:] if not cell[1]]


class OnlineMatcher:
    """Pairs sends with receives as they arrive.

    ``on_pair(send, recv, nbytes)`` fires for every matched pair (the
    batch ``matcher.pairs`` set); ``on_recv_done(recv)`` fires exactly
    once per receive routed into matching, when no further send can
    pair with it -- the signal the clock fold needs to seal a receive's
    dependency list.
    """

    def __init__(self, on_pair, on_recv_done):
        self.on_pair = on_pair
        self.on_recv_done = on_recv_done
        self.host_ids = {}  # literal host name -> machine id
        self._endpoints = {}  # (machine, sock) -> _Endpoint
        self._connects = defaultdict(deque)  # names key -> _Endpoint queue
        self._accepts = defaultdict(deque)
        self._connections = []  # (dir_i2a, dir_a2i)
        self._by_mlen = defaultdict(_DgramQueue)  # (machine, length)
        self._by_len = defaultdict(_DgramQueue)
        self._pending_sends = deque()  # cells [send event, matched]
        self.pairs = 0
        self.unmatched_recvs = 0  # known only after finalize
        self.finalized = False

    # -- per-record fold -----------------------------------------------

    def update(self, event):
        kind = event.event
        if kind == "send":
            if event.dest:
                event.in_matching = True
                cell = [event, False]
                if not self._try_claim(cell):
                    self._pending_sends.append(cell)
                return
            state = self._endpoints.get((event.machine, event.sock))
            if state is None:
                return  # no connection evidence: outside matching
            event.in_matching = True
            if state.paired:
                state.dir_out.add_send(event, self)
            else:
                state.pre.append(("send", event))
        elif kind == "receive":
            event.in_matching = True
            state = self._endpoints.get((event.machine, event.sock))
            if state is None:
                self._dgram_recv(event)
            elif state.paired:
                state.dir_in.add_recv(event, self)
            else:
                state.pre.append(("recv", event))
        elif kind == "connect":
            self._register_host(event.sock_name, event.machine)
            self._open_endpoint(
                event,
                (event.machine, event.sock),
                "connect",
                (event.sock_name, event.peer_name),
            )
        elif kind == "accept":
            self._register_host(event.sock_name, event.machine)
            self._open_endpoint(
                event,
                (event.machine, event.new_sock),
                "accept",
                (event.peer_name, event.sock_name),
            )

    # -- connections ---------------------------------------------------

    def _register_host(self, sock_name, machine):
        host = _host_of(sock_name)
        if host is not None and host not in self.host_ids:
            self.host_ids[host] = machine

    def _open_endpoint(self, event, endpoint, origin, key):
        state = _Endpoint(origin)
        self._endpoints[endpoint] = state
        other_side = self._accepts if origin == "connect" else self._connects
        queue = other_side.get(key)
        if queue:
            peer = queue.popleft()
            if origin == "connect":
                self._pair_connection(state, peer)
            else:
                self._pair_connection(peer, state)
        else:
            own_side = self._connects if origin == "connect" else self._accepts
            own_side[key].append(state)

    def _pair_connection(self, initiator, acceptor):
        dir_i2a = _Direction()
        dir_a2i = _Direction()
        initiator.dir_out, initiator.dir_in = dir_i2a, dir_a2i
        acceptor.dir_out, acceptor.dir_in = dir_a2i, dir_i2a
        self._connections.append((dir_i2a, dir_a2i))
        # Flush traffic buffered before pairing.  Only the per-endpoint
        # order matters: each direction's sends come from one endpoint
        # and its receives from the other.
        for state in (initiator, acceptor):
            buffered, state.pre = state.pre, []
            for which, event in buffered:
                if which == "send":
                    state.dir_out.add_send(event, self)
                else:
                    state.dir_in.add_recv(event, self)

    # -- datagrams -----------------------------------------------------

    def _dgram_recv(self, event):
        cell = [event, False]
        self._by_mlen[(event.machine, event.length)].append(cell)
        self._by_len[event.length].append(cell)
        if self._pending_sends:
            self._drain_pending()

    def _try_claim(self, cell):
        send = cell[0]
        dest_id = self.host_ids.get(_host_of(send.dest))
        if dest_id is not None:
            queue = self._by_mlen.get((dest_id, send.length))
        else:
            queue = self._by_len.get(send.length)
        found = (
            queue.claim(send.machine, self.host_ids)
            if queue is not None
            else None
        )
        if found is None:
            return False
        found[1] = True
        cell[1] = True
        recv = found[0]
        src_host = _host_of(recv.source)
        if src_host is not None:
            self.host_ids.setdefault(src_host, send.machine)
        self.on_pair(send, recv, min(send.length, recv.length))
        self.on_recv_done(recv)
        return True

    def _drain_pending(self):
        """Retry pending sends in arrival order (a stable rotation)."""
        pending = self._pending_sends
        for __ in range(len(pending)):
            cell = pending.popleft()
            if cell[1]:
                continue
            if not self._try_claim(cell):
                pending.append(cell)

    # -- end of stream -------------------------------------------------

    def finalize(self):
        """No more records: settle everything still open.

        Mirrors the batch pass over a finished trace: receives on a
        connect endpoint that never paired fall back to the datagram
        pool; a one-sided accept keeps its endpoint (its traffic is
        stream, never matched); stream receives past the sent bytes and
        unclaimed datagram receives are sealed with the dependencies
        they have."""
        if self.finalized:
            return
        self.finalized = True
        for state in self._endpoints.values():
            if state.paired:
                continue
            buffered, state.pre = state.pre, []
            for which, event in buffered:
                if which != "recv":
                    continue
                if state.origin == "connect":
                    cell = [event, False]
                    self._by_mlen[(event.machine, event.length)].append(cell)
                    self._by_len[event.length].append(cell)
                else:
                    self.on_recv_done(event)
        self._drain_pending()
        for dir_i2a, dir_a2i in self._connections:
            for direction in (dir_i2a, dir_a2i):
                while direction.waiting:
                    self.on_recv_done(direction.waiting.popleft()[2])
        for queue in self._by_mlen.values():
            for recv in queue.unconsumed():
                self.unmatched_recvs += 1
                self.on_recv_done(recv)

    # -- inspection ----------------------------------------------------

    def pending_send_events(self):
        """Sends routed into matching but not (yet) matched."""
        return [cell[0] for cell in self._pending_sends if not cell[1]]

    def state_size(self):
        size = sum(1 for cell in self._pending_sends if not cell[1])
        for state in self._endpoints.values():
            size += len(state.pre)
        for dir_i2a, dir_a2i in self._connections:
            size += dir_i2a.state_size() + dir_a2i.state_size()
        for queue in self._by_mlen.values():
            size += sum(
                1 for cell in queue.items[queue.head:] if not cell[1]
            )
        return size
