"""Cluster construction: simulator + network + machines.

The default machine names follow the paper's example session (Section
4.4): the computation runs on *red* and *green*, the filter on *blue*,
and the controller on *yellow*.
"""

from repro.kernel.machine import Machine
from repro.kernel.registry import ProgramRegistry
from repro.net.hosts import HostTable
from repro.net.network import Network, NetworkParams
from repro.sim.clock import MachineClock
from repro.sim.simulator import Simulator

DEFAULT_MACHINES = ("red", "green", "blue", "yellow")


class Cluster:
    """A set of simulated 4.2BSD machines on one internetwork."""

    def __init__(
        self,
        machines=DEFAULT_MACHINES,
        seed=0,
        net_params=None,
        clock_skew=None,
    ):
        """``clock_skew``: None (ideal clocks), "random" (offsets up to
        ±2 s and drifts up to ±100 ppm, seeded), or a dict mapping
        machine name -> (offset_ms, drift_ppm)."""
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, net_params or NetworkParams())
        self.host_table = HostTable()
        self.registry = ProgramRegistry()
        self.machines = {}
        for name in machines:
            host = self.host_table.add(name)
            clock = MachineClock(*self._skew_for(name, clock_skew))
            self.machines[name] = Machine(
                self.sim, self.network, host, self.host_table, clock, self.registry
            )

    def _skew_for(self, name, clock_skew):
        if clock_skew is None:
            return (0.0, 0.0)
        if clock_skew == "random":
            return (
                self.sim.rng.uniform(-2000.0, 2000.0),
                self.sim.rng.uniform(-100.0, 100.0),
            )
        return clock_skew.get(name, (0.0, 0.0))

    # ------------------------------------------------------------------

    def machine(self, name):
        return self.machines[name]

    def machine_names(self):
        return list(self.machines)

    def install_program(self, name, main, machines=None, path=None, mode=0o755):
        """Register a guest program and install its executable file.

        The executable's bytes are the program name, so the simulated
        rcp moves real content (Section 3.5.3).  Installs on all
        machines by default; restrict with ``machines=[...]``.
        """
        self.registry.register(name, main)
        file_path = path or "/bin/{0}".format(name)
        targets = machines if machines is not None else list(self.machines)
        for machine_name in targets:
            self.machines[machine_name].fs.install(
                file_path, data=name, mode=mode, program=name
            )
        return file_path

    def spawn(self, machine_name, main, argv=(), uid=100, program_name=None, start=True):
        """Directly create a process (tests and benches; the measurement
        system itself creates processes via the meterdaemons).  Its
        stdio goes to the machine console."""
        machine = self.machines[machine_name]
        proc = machine.create_process(
            main=main,
            argv=argv,
            uid=uid,
            program_name=program_name,
            start=False,
        )
        machine.attach_console_stdio(proc)
        if start:
            machine.continue_proc(proc)
        return proc

    # ------------------------------------------------------------------

    def run(self, until_ms=None, max_events=None):
        self.sim.run(until_ms=until_ms, max_events=max_events)

    def run_until(self, predicate, max_events=1_000_000):
        self.sim.run_until(predicate, max_events=max_events)

    def run_until_exit(self, procs, max_events=1_000_000):
        """Run until every proc in ``procs`` has terminated."""
        from repro.kernel import defs

        proc_list = list(procs)
        self.sim.run_until(
            lambda: all(p.state == defs.PROC_ZOMBIE for p in proc_list),
            max_events=max_events,
        )
