"""Scheduler and process-lifecycle tests: time slicing, CPU accounting,
crash handling, exits."""

import pytest

from repro.kernel import defs
from repro.kernel.errno import SyscallError
from tests.conftest import run_guests


def test_compute_advances_time_and_charges_cpu(cluster):
    def guest(sys, argv):
        yield sys.compute(35)
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    # 35ms of compute plus a small per-syscall trap cost.
    assert proc.cpu_ms == pytest.approx(35.0, abs=0.5)
    assert cluster.sim.now >= 35.0


def test_proc_time_reports_ten_ms_granularity(cluster):
    def guest(sys, argv):
        yield sys.compute(37)
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.proc_time() == 30.0  # 37ms exact -> 30ms reported


def test_two_computing_processes_share_one_cpu(cluster):
    def guest(sys, argv):
        yield sys.compute(50)
        yield sys.exit(0)

    a, b = run_guests(cluster, ("red", guest, ()), ("red", guest, ()))
    # Serialized on one CPU: elapsed ~100ms, not ~50ms.
    assert cluster.sim.now >= 100.0
    assert a.cpu_ms == pytest.approx(50.0, abs=0.5)
    assert b.cpu_ms == pytest.approx(50.0, abs=0.5)


def test_processes_on_different_machines_run_in_parallel(cluster):
    def guest(sys, argv):
        yield sys.compute(50)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()), ("green", guest, ()))
    assert cluster.sim.now < 100.0


def test_round_robin_interleaves_long_computes(cluster):
    finish_times = {}

    def guest(sys, argv):
        yield sys.compute(30)
        finish_times[argv[0]] = (yield sys.gettimeofday())
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ("a",)), ("red", guest, ("b",)))
    # With a 10ms quantum both finish near the end (interleaved), so
    # the first finisher ends well after its own 30ms of work.
    assert min(finish_times.values()) >= 50.0


def test_stopiteration_return_is_normal_exit(cluster):
    def guest(sys, argv):
        yield sys.compute(1)
        return 7  # plain return: exits with that status

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_reason == defs.EXIT_NORMAL
    assert proc.exit_status == 7


def test_uncaught_python_exception_is_error_exit(cluster):
    def guest(sys, argv):
        yield sys.compute(1)
        raise RuntimeError("boom")

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_reason == defs.EXIT_ERROR
    assert any("boom" in line for line in cluster.machine("red").console)


def test_uncaught_syscall_error_is_error_exit(cluster):
    def guest(sys, argv):
        yield sys.open("/does/not/exist", "r")

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_reason == defs.EXIT_ERROR


def test_guest_can_catch_syscall_errors(cluster):
    def guest(sys, argv):
        try:
            yield sys.open("/does/not/exist", "r")
        except SyscallError as err:
            yield sys.log("caught %d" % err.errno)
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_reason == defs.EXIT_NORMAL
    assert any("caught 2" in line for line in cluster.machine("red").console)


def test_sleep_blocks_without_cpu(cluster):
    def guest(sys, argv):
        yield sys.sleep(100)
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert cluster.sim.now >= 100.0
    assert proc.cpu_ms < 1.0


def test_sleeping_process_does_not_block_the_cpu(cluster):
    order = []

    def sleeper(sys, argv):
        yield sys.sleep(50)
        order.append("sleeper")
        yield sys.exit(0)

    def worker(sys, argv):
        yield sys.compute(10)
        order.append("worker")
        yield sys.exit(0)

    run_guests(cluster, ("red", sleeper, ()), ("red", worker, ()))
    assert order == ["worker", "sleeper"]


def test_exit_status_propagates(cluster):
    def guest(sys, argv):
        yield sys.exit(42)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_status == 42
    assert proc.state == defs.PROC_ZOMBIE


def test_exit_log_records_terminations(cluster):
    def guest(sys, argv):
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    machine = cluster.machine("red")
    assert (proc.pid, proc.program_name, 0, defs.EXIT_NORMAL) in machine.exit_log


def test_getpid_getuid(cluster):
    seen = {}

    def guest(sys, argv):
        seen["pid"] = yield sys.getpid()
        seen["uid"] = yield sys.getuid()
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert seen == {"pid": proc.pid, "uid": 100}


def test_gettimeofday_reads_local_clock():
    from repro.core.cluster import Cluster

    cluster = Cluster(seed=1, clock_skew={"red": (1000.0, 0.0)})
    seen = []

    def guest(sys, argv):
        seen.append((yield sys.gettimeofday()))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert seen[0] >= 1000.0


def test_zombies_can_be_reaped(cluster):
    def guest(sys, argv):
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    machine = cluster.machine("red")
    assert machine.procs
    machine.reap_zombies()
    assert not machine.procs
