"""Send/receive matching: connection discovery, stream byte-ranges,
datagram FIFO (Section 4.1's recipient recovery)."""

from repro.analysis.matching import MessageMatcher
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_connection_discovered_from_connect_accept_names():
    trace = two_process_stream_trace()
    matcher = MessageMatcher(trace)
    assert len(matcher.connections) == 1
    conn = matcher.connections[0]
    assert conn.initiator == (1, 400)
    assert conn.acceptor == (2, 510)


def test_stream_sends_match_receives_both_directions():
    trace = two_process_stream_trace()
    matcher = MessageMatcher(trace)
    pairs = {(p.send.process, p.recv.process, p.nbytes) for p in matcher.pairs}
    assert ((1, 10), (2, 20), 100) in pairs
    assert ((2, 20), (1, 10), 50) in pairs
    assert matcher.matched_fraction() == 1.0


def test_stream_matching_handles_coalesced_reads():
    """Two 100-byte sends read as one 200-byte receive: both sends
    pair with that receive."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 100, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.send(1, 10, 102, sock=400, nbytes=100)
    b.send(1, 10, 103, sock=400, nbytes=100)
    b.receive(2, 20, 110, sock=510, nbytes=200, source=cn)
    matcher = MessageMatcher(b.build())
    recv_pairs = [p for p in matcher.pairs]
    assert len(recv_pairs) == 2
    assert sum(p.nbytes for p in recv_pairs) == 200


def test_stream_matching_handles_split_reads():
    """One 200-byte send read as two 100-byte receives."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 100, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.send(1, 10, 102, sock=400, nbytes=200)
    b.receive(2, 20, 110, sock=510, nbytes=100, source=cn)
    b.receive(2, 20, 111, sock=510, nbytes=100, source=cn)
    matcher = MessageMatcher(b.build())
    assert len(matcher.pairs) == 2
    sends = {p.send.index for p in matcher.pairs}
    assert len(sends) == 1


def test_unreceived_send_reported_unmatched():
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 100, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.send(1, 10, 102, sock=400, nbytes=100)
    b.receive(2, 20, 105, sock=510, nbytes=100, source=cn)
    b.send(1, 10, 106, sock=400, nbytes=64)  # never read
    matcher = MessageMatcher(b.build())
    assert len(matcher.pairs) == 1
    assert [e.index for e in matcher.unmatched_sends] == [4]
    assert matcher.matched_fraction() == 0.5


def test_datagram_fifo_matching_with_host_mapping():
    b = TraceBuilder()
    # A connect event on machine 1 teaches the matcher that literal
    # host "red" is machine id 1 (sockName is the local bound name).
    b.connect(1, 10, 90, sock=300, sock_name="inet:red:1024", peer_name="inet:green:9")
    b.send(1, 10, 100, sock=301, nbytes=64, dest="inet:green:6000")
    b.send(1, 10, 101, sock=301, nbytes=32, dest="inet:green:6000")
    b.receive(2, 20, 105, sock=600, nbytes=64, source="inet:red:1025")
    b.receive(2, 20, 106, sock=600, nbytes=32, source="inet:red:1025")
    matcher = MessageMatcher(b.build())
    dgram_pairs = [
        p for p in matcher.pairs if p.send.name("destName") is not None
    ]
    assert len(dgram_pairs) == 2
    assert dgram_pairs[0].send.index < dgram_pairs[1].send.index  # FIFO


def test_datagram_length_mismatch_not_matched():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=301, nbytes=64, dest="inet:green:6000")
    b.receive(2, 20, 105, sock=600, nbytes=100, source="inet:red:1025")
    matcher = MessageMatcher(b.build())
    assert matcher.pairs == []
    assert len(matcher.unmatched_sends) == 1
    assert len(matcher.unmatched_recvs) == 1


def test_lost_datagram_stays_unmatched():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=301, nbytes=64, dest="inet:green:6000")
    b.send(1, 10, 101, sock=301, nbytes=64, dest="inet:green:6000")
    b.receive(2, 20, 110, sock=600, nbytes=64, source="inet:red:1025")
    matcher = MessageMatcher(b.build())
    assert len(matcher.pairs) == 1
    assert len(matcher.unmatched_sends) == 1


def test_one_sided_trace_still_groups_server_traffic():
    """Only the server was metered (acquire case): its connection end
    is still recorded."""
    b = TraceBuilder()
    sn, cn = "inet:green:5000", "inet:red:1024"
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.receive(2, 20, 105, sock=510, nbytes=10, source=cn)
    matcher = MessageMatcher(b.build())
    assert len(matcher.connections) == 1
    assert matcher.connections[0].initiator is None


def test_one_sided_stream_traffic_never_pairs_with_itself():
    """Server-only trace: the unmetered client's events were never
    recorded, so the server's stream traffic has no counterpart.  It
    must not pair with itself; half-connection traffic is *unknowable*
    rather than *lost*, so it also stays out of the unmatched lists
    (which report losses within fully-known connections) -- but every
    send still counts against matched_fraction."""
    b = TraceBuilder()
    sn, cn = "inet:green:5000", "inet:red:1024"
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.receive(2, 20, 105, sock=510, nbytes=10, source=cn)
    b.send(2, 20, 106, sock=510, nbytes=6)
    matcher = MessageMatcher(b.build())
    assert matcher.pairs == []
    assert matcher.unmatched_sends == []
    assert matcher.unmatched_recvs == []
    assert matcher.matched_fraction() == 0.0


def test_client_only_trace_has_no_connection_and_unmatched_receives():
    """Client-only trace: a connect with no matching accept discovers
    no connection at all, so the receive falls through to the datagram
    pool and is reported unmatched."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 100, sock=400, sock_name=cn, peer_name=sn)
    b.send(1, 10, 102, sock=400, nbytes=100)
    b.receive(1, 10, 109, sock=400, nbytes=50, source=sn)
    matcher = MessageMatcher(b.build())
    assert matcher.connections == []
    assert matcher.pairs == []
    assert [e.index for e in matcher.unmatched_recvs] == [2]
    assert matcher.matched_fraction() == 0.0


def test_repeated_connections_with_same_names_pair_fifo():
    """Two successive connections reusing the same (name, peer) pair
    (a client reconnect from the same port) pair up first-to-first."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 100, sock=400, sock_name=cn, peer_name=sn)
    b.connect(1, 10, 110, sock=401, sock_name=cn, peer_name=sn)
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.accept(2, 20, 111, sock=500, new_sock=511, sock_name=sn, peer_name=cn)
    matcher = MessageMatcher(b.build())
    assert [c.initiator for c in matcher.connections] == [(1, 400), (1, 401)]
    assert [c.acceptor for c in matcher.connections] == [(2, 510), (2, 511)]


def test_datagram_with_unknown_dest_host_still_matches_fifo():
    """A datagram whose destination host never appears in any socket
    name cannot be narrowed to a machine; it still pairs with the
    earliest same-length receive anywhere."""
    b = TraceBuilder()
    b.send(1, 10, 100, sock=301, nbytes=64, dest="inet:unknown:6000")
    b.receive(2, 20, 105, sock=600, nbytes=64)
    matcher = MessageMatcher(b.build())
    assert len(matcher.pairs) == 1
    assert matcher.pairs[0].recv.index == 1
