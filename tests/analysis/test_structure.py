"""Structural studies: communication graphs and shape classification."""

from repro.analysis.structure import CommunicationGraph
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def _pair_edges(a, b, builder, t):
    """Add one matched datagram exchange a -> b (same machine ids)."""
    builder.send(a[0], a[1], t, sock=1, nbytes=8, dest="inet:m%d:1" % b[0])
    builder.receive(b[0], b[1], t + 1, sock=2, nbytes=8, source="inet:m%d:9" % a[0])


def test_pair_shape():
    graph = CommunicationGraph(two_process_stream_trace())
    assert graph.shape() == "pair"
    assert graph.is_connected()


def test_edge_weights_accumulate():
    graph = CommunicationGraph(two_process_stream_trace())
    edges = {(src, dst): data for src, dst, data in graph.edges()}
    assert edges[((1, 10), (2, 20))]["bytes"] == 100
    assert edges[((2, 20), (1, 10))]["bytes"] == 50


def test_star_shape():
    b = TraceBuilder()
    hub = (1, 10)
    for i, spoke in enumerate([(2, 20), (3, 30), (4, 40)]):
        # Teach host mapping via connect events, then exchange.
        b.connect(spoke[0], spoke[1], i, sock=1,
                  sock_name="inet:m%d:1" % spoke[0],
                  peer_name="inet:m1:5000")
        b.accept(1, 10, i, sock=5, new_sock=50 + i,
                 sock_name="inet:m1:5000",
                 peer_name="inet:m%d:1" % spoke[0])
        b.send(spoke[0], spoke[1], 10 + i, sock=1, nbytes=8)
        b.receive(1, 10, 11 + i, sock=50 + i, nbytes=8,
                  source="inet:m%d:1" % spoke[0])
    graph = CommunicationGraph(b.build())
    assert graph.shape() == "star"
    assert graph.hubs(1) == [hub]


def test_ring_shape():
    b = TraceBuilder()
    nodes = [(1, 10), (2, 20), (3, 30), (4, 40)]
    for i, node in enumerate(nodes):
        nxt = nodes[(i + 1) % len(nodes)]
        b.connect(node[0], node[1], i, sock=1,
                  sock_name="inet:m%d:out" % node[0],
                  peer_name="inet:m%d:in" % nxt[0])
        b.accept(nxt[0], nxt[1], i, sock=2, new_sock=20 + i,
                 sock_name="inet:m%d:in" % nxt[0],
                 peer_name="inet:m%d:out" % node[0])
        b.send(node[0], node[1], 10 + i, sock=1, nbytes=4)
        b.receive(nxt[0], nxt[1], 11 + i, sock=20 + i, nbytes=4,
                  source="inet:m%d:out" % node[0])
    graph = CommunicationGraph(b.build())
    assert graph.shape() == "ring"


def test_fork_edges_included():
    b = TraceBuilder()
    b.fork(1, 10, 0, new_pid=11)
    b.fork(1, 10, 1, new_pid=12)
    graph = CommunicationGraph(b.build())
    assert ((1, 11)) in graph.processes()
    edges = {(src, dst): data for src, dst, data in graph.edges()}
    assert edges[((1, 10), (1, 11))]["kind"] == "fork"


def test_disconnected_components_reported():
    b = TraceBuilder()
    b.send(1, 10, 0, sock=1, nbytes=5, dest="inet:x:1")
    b.send(2, 20, 0, sock=1, nbytes=5, dest="inet:y:1")
    graph = CommunicationGraph(b.build())
    assert not graph.is_connected()
    assert len(graph.components()) == 2


def test_report_readable():
    report = CommunicationGraph(two_process_stream_trace()).report()
    assert "shape: pair" in report
