"""The generator's determinism and validity contract: same
``(seed, profile)`` is byte-identical, every schedule is well-formed,
and every outage move carries its recovery inside the horizon."""

import pytest

from repro.chaos.generator import FaultSurface, generate_plan
from repro.chaos.profiles import ALL_MOVES, PROFILES, get_profile
from repro.chaos.scenario import DgramPairScenario
from repro.faults import plan as plan_mod
from repro.faults.plan import FaultPlan


def _surface():
    return DgramPairScenario().surface(log_directory=None)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_same_seed_same_profile_is_byte_identical(profile):
    surface = _surface()
    first = generate_plan(3, profile, surface)
    second = generate_plan(3, profile, surface)
    assert first.to_json() == second.to_json()


def test_byte_identical_across_fresh_surface_objects():
    first = generate_plan(11, "mixed", _surface())
    second = generate_plan(11, "mixed", _surface())
    assert first.to_json() == second.to_json()


def test_different_seeds_differ():
    surface = _surface()
    schedules = {generate_plan(seed, "mixed", surface).to_json() for seed in range(8)}
    assert len(schedules) > 1


def test_different_profiles_differ():
    surface = _surface()
    assert (
        generate_plan(0, "network", surface).to_json()
        != generate_plan(0, "storage", surface).to_json()
    )


def test_round_trips_through_json():
    surface = _surface()
    plan = generate_plan(5, "mixed", surface)
    rebuilt = FaultPlan.from_jsonable(
        plan.to_jsonable(), machines=surface.machines
    )
    assert rebuilt.to_json() == plan.to_json()


def test_string_and_object_profile_agree():
    surface = _surface()
    assert (
        generate_plan(2, "network", surface).to_json()
        == generate_plan(2, get_profile("network"), surface).to_json()
    )


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        generate_plan(0, "nonsense", _surface())


# ----------------------------------------------------------------------
# Validity invariants
# ----------------------------------------------------------------------

_PAIRED = (
    (plan_mod.PARTITION, plan_mod.HEAL),
    (plan_mod.KILL_CONTROLLER, plan_mod.RESTART_CONTROLLER),
    (plan_mod.CRASH, plan_mod.REBOOT),
)


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", range(5))
def test_every_outage_carries_its_recovery(profile, seed):
    plan = generate_plan(seed, profile, _surface())
    kinds = [event.kind for event in plan.events]
    for outage, recovery in _PAIRED:
        assert kinds.count(outage) == kinds.count(recovery)
    # Daemon kills pair with restarts per machine.
    kills = [
        event.args["machine"]
        for event in plan.events
        if event.kind == plan_mod.KILL_PROCESS
        and event.args["program"] == "meterdaemon"
    ]
    restarts = [
        event.args["machine"]
        for event in plan.events
        if event.kind == plan_mod.RESTART_DAEMON
    ]
    assert sorted(kills) == sorted(restarts)


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_times_are_inside_the_horizon(profile):
    horizon = get_profile(profile).horizon_ms
    for seed in range(5):
        plan = generate_plan(seed, profile, _surface())
        for event in plan.events:
            assert 0.0 <= event.at_ms <= horizon


def test_controller_outages_respect_the_limit():
    for seed in range(10):
        plan = generate_plan(seed, "controlplane", _surface())
        outages = sum(
            1
            for event in plan.events
            if event.kind == plan_mod.KILL_CONTROLLER
        )
        assert outages <= get_profile("controlplane").controller_outage_limit


def test_surface_requires_a_daemon_kill_target():
    with pytest.raises(ValueError):
        FaultSurface(
            machines=("a", "b"),
            control_machine="a",
            filter_machine="b",
            store_prefix="/usr/tmp/f1.store",
        )


def test_profiles_cover_every_move():
    covered = set()
    for profile in PROFILES.values():
        covered.update(profile.weights)
    assert covered == set(ALL_MOVES)
