"""The in-kernel meter: event generation, buffering, flush policy."""

import pytest

from repro.kernel import defs
from repro.metering import flags as mf
from tests.metering.harness import metered_spawn, start_collector


def _events(records, proc=None):
    if proc is None:
        return [r["event"] for r in records]
    return [r["event"] for r in records if r["pid"] == proc.pid]


def test_every_flagged_syscall_produces_its_event(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        yield sys.sendto(fd, b"x" * 10, ("red", 6000))
        data, __src = yield sys.recvfrom(fd, 100)
        dup_fd = yield sys.dup(fd)
        yield sys.close(dup_fd)
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", guest)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert _events(records) == [
        "socket",
        "send",
        "receivecall",
        "receive",
        "dup",
        "destsocket",
        "termproc",
    ]


def test_only_flagged_events_are_recorded(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = metered_spawn(
        cluster, "red", guest, flags=mf.METERSEND | mf.M_IMMEDIATE
    )
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert _events(records) == ["send"]


def test_receivecall_logged_even_when_receive_blocks(cluster):
    """receivecall fires when the call is made; receive only when a
    message actually arrives."""
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        yield sys.recvfrom(fd, 100)  # blocks until the datagram below
        yield sys.exit(0)

    def sender(sys, argv):
        yield sys.sleep(50)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", guest)
    cluster.run(until_ms=cluster.sim.now + 30)
    # Blocked in recvfrom: receivecall visible, receive not yet.
    assert "receivecall" in _events(records)
    assert "receive" not in _events(records)
    sender_proc = cluster.spawn("green", sender, uid=100)
    cluster.run_until_exit([proc, sender_proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert "receive" in _events(records)


def test_receivecall_not_duplicated_by_blocking_retries(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        yield sys.recvfrom(fd, 100)
        yield sys.exit(0)

    def sender(sys, argv):
        yield sys.sleep(50)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", guest)
    sender_proc = cluster.spawn("green", sender, uid=100)
    cluster.run_until_exit([proc, sender_proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert _events(records).count("receivecall") == 1


def test_stream_send_has_no_destination_name(cluster):
    records, __ = start_collector(cluster)

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __peer = yield sys.accept(fd)
        yield sys.read(conn, 100)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.write(fd, b"hello")
        yield sys.exit(0)

    cluster.spawn("red", server, uid=100)
    proc = metered_spawn(cluster, "green", client)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    sends = [r for r in records if r["event"] == "send"]
    assert sends[0]["destNameLen"] == 0
    assert sends[0]["destName"] == ""


def test_datagram_send_carries_destination_name(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("green", 6001))
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", guest)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    sends = [r for r in records if r["event"] == "send"]
    assert sends[0]["destName"] == "inet:green:6001"


def test_socketpair_produces_all_four_messages(cluster):
    """Section 3.2: "all four messages are produced"."""
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.exit(0)

    proc = metered_spawn(
        cluster,
        "red",
        guest,
        flags=mf.METERSOCKET | mf.METERCONNECT | mf.METERACCEPT | mf.M_IMMEDIATE,
    )
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert _events(records) == ["socket", "socket", "connect", "accept"]


def test_accept_event_records_both_names_and_new_socket(cluster):
    records, __ = start_collector(cluster)

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __peer = yield sys.accept(fd)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", server)
    cluster.spawn("green", client, uid=100)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    accepts = [r for r in records if r["event"] == "accept"]
    assert accepts[0]["sockName"] == "inet:red:5000"
    assert accepts[0]["peerName"].startswith("inet:green:")
    assert accepts[0]["newSock"] != accepts[0]["sock"]


def test_buffering_batches_messages(cluster):
    """Without M_IMMEDIATE, the kernel ships batches of 8 messages:
    "the number of meter messages is considerably smaller than the
    number of messages sent by the metered process"."""
    records, __ = start_collector(cluster)
    machine = cluster.machine("red")

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for __i in range(32):
            yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", guest, flags=mf.METERSEND)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    sends = [r for r in records if r["event"] == "send"]
    assert len(sends) == 32  # nothing lost
    # 32 events + termination flush: exactly 5 wire messages (4x8 + 0).
    assert machine.meter.wire_sends == 4


def test_immediate_mode_sends_each_event_alone(cluster):
    records, __ = start_collector(cluster)
    machine = cluster.machine("red")

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for __i in range(5):
            yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = metered_spawn(
        cluster, "red", guest, flags=mf.METERSEND | mf.M_IMMEDIATE
    )
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert machine.meter.wire_sends == 5


def test_unsent_messages_flushed_at_termination(cluster):
    """Section 3.2: "As part of process termination, any unsent
    messages are forwarded to the filter"."""
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))  # 1 event < buffer of 8
        yield sys.exit(0)

    proc = metered_spawn(cluster, "red", guest, flags=mf.METERSEND)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert _events(records) == ["send"]


def test_termproc_event_is_the_last_and_carries_status(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        yield sys.compute(1)
        yield sys.exit(17)

    proc = metered_spawn(cluster, "red", guest, flags=mf.METERTERMPROC)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert records[-1]["event"] == "termproc"
    assert records[-1]["status"] == 17


def test_header_carries_machine_and_granular_proc_time(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        yield sys.compute(25)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = metered_spawn(cluster, "green", guest, flags=mf.METERSEND | mf.M_IMMEDIATE)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    send = [r for r in records if r["event"] == "send"][0]
    assert send["machine"] == cluster.host_table.lookup("green").host_id
    assert send["procTime"] == 20  # 25ms exact, reported at 10ms ticks


def test_unmetered_process_records_nothing(cluster):
    records, __ = start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = cluster.spawn("red", guest, uid=100)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert records == []
    assert cluster.machine("red").meter.events_recorded == 0


def test_backpressure_requeues_batch_until_meter_socket_connects(cluster):
    """A healthy-but-not-yet-connected meter socket refuses the flush
    transiently; the batch must be kept, not silently discarded, and
    shipped once the socket connects."""
    records, __ = start_collector(cluster)
    machine = cluster.machine("red")

    def guest(sys, argv):
        meter_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        # Appendix C: the meter socket "must be connected to be used,
        # though this is not checked" -- set it before connecting.
        yield sys.setmeter(mf.SELF, mf.METERSEND | mf.M_IMMEDIATE, meter_fd)
        data_fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for __i in range(3):
            yield sys.sendto(data_fd, b"x", ("red", 6000))
        yield sys.connect(meter_fd, ("blue", 4400))
        yield sys.sendto(data_fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = cluster.spawn("red", guest, uid=100)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 20)
    assert _events(records) == ["send", "send", "send", "send"]
    assert machine.meter.events_dropped == 0
    # All four events left in one wire message, after the connect.
    assert machine.meter.wire_sends == 1


def test_backpressure_requeue_is_bounded_and_counted(cluster):
    """A meter socket that never becomes ready cannot grow the kernel
    buffer forever: past the re-queue limit the oldest messages are
    dropped, and every loss shows up in events_dropped."""
    machine = cluster.machine("red")

    def guest(sys, argv):
        meter_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.setmeter(mf.SELF, mf.METERSEND | mf.M_IMMEDIATE, meter_fd)
        data_fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for __i in range(100):
            yield sys.sendto(data_fd, b"x", ("red", 6000))
        yield sys.exit(0)

    proc = cluster.spawn("red", guest, uid=100)
    cluster.run_until_exit([proc])
    assert machine.meter.events_recorded == 100
    assert machine.meter.wire_sends == 0
    # 36 overflowed the 64-message re-queue bound; the surviving 64
    # were unshippable at termination.  Nothing lost silently.
    assert machine.meter.events_dropped == 100
    assert proc.meter_buffer == []


def test_metering_cost_is_charged_to_the_process(cluster):
    """Metering perturbs the metered process a little (Section 2.2
    accepts small degradation); the charge is visible in cpu_ms."""
    start_collector(cluster)

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for __i in range(100):
            yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    bare = cluster.spawn("green", guest, uid=100)
    cluster.run_until_exit([bare])
    metered = metered_spawn(cluster, "red", guest, flags=mf.METERSEND)
    cluster.run_until_exit([metered])
    assert metered.cpu_ms > bare.cpu_ms
    # ... but only slightly (transparency).
    assert metered.cpu_ms < bare.cpu_ms * 1.5
