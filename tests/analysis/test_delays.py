"""Message delay statistics."""

import pytest

from repro.analysis.delays import MessageDelays
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_delays_on_true_clocks():
    delays = MessageDelays(two_process_stream_trace())
    assert delays.count() == 2
    assert delays.mean() == pytest.approx(3.0)  # 102->105 and 106->109
    assert delays.minimum() == pytest.approx(3.0)
    assert delays.negative_fraction() == 0.0


def test_per_pair_means():
    delays = MessageDelays(two_process_stream_trace())
    means = delays.pair_means()
    assert means[((1, 10), (2, 20))] == pytest.approx(3.0)
    assert means[((2, 20), (1, 10))] == pytest.approx(3.0)


def test_skew_correction_fixes_negative_delays():
    """With machine 2's clock far behind, raw delays are negative; the
    corrected delays are sane."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    offset = -5000
    b.connect(1, 10, 0, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, offset, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    t = 10
    for __ in range(5):
        b.send(1, 10, t, sock=400, nbytes=8)
        b.receive(2, 20, t + 2 + offset, sock=510, nbytes=8, source=cn)
        b.send(2, 20, t + 2 + offset, sock=510, nbytes=8)
        b.receive(1, 10, t + 4, sock=400, nbytes=8, source=sn)
        t += 10
    delays = MessageDelays(b.build())
    assert delays.negative_fraction() == 0.0
    assert delays.mean() == pytest.approx(2.0, abs=0.5)


def test_raw_delays_without_correction_are_wrong():
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 0, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, -5000, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.send(1, 10, 10, sock=400, nbytes=8)
    b.receive(2, 20, -4988, sock=510, nbytes=8, source=cn)
    b.send(2, 20, -4988, sock=510, nbytes=8)
    b.receive(1, 10, 14, sock=400, nbytes=8, source=sn)
    # Forcing zero skews shows the raw damage.
    delays = MessageDelays(b.build(), skews={1: 0.0, 2: 0.0})
    assert delays.negative_fraction() > 0.0


def test_empty_trace():
    from repro.analysis.trace import Trace

    delays = MessageDelays(Trace([]))
    assert delays.count() == 0
    assert delays.mean() == 0.0
    assert "no matched messages" in delays.report()


def test_report_format():
    report = MessageDelays(two_process_stream_trace()).report()
    assert "2 matched messages" in report
    assert "->" in report


def test_live_delays_match_network_latency():
    """End to end: measured message delays sit near the configured
    network base latency."""
    from repro.analysis import Trace
    from repro.core.cluster import Cluster
    from repro.core.session import MeasurementSession
    from repro.net.network import NetworkParams
    from repro.programs import install_all

    cluster = Cluster(
        seed=91, net_params=NetworkParams(base_latency_ms=5.0, jitter_ms=0.0)
    )
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 10")
    session.command("addprocess pp green pingpongclient red 5100 10")
    # accept/connect events are what lets the analysis pair the
    # connection's two ends (Section 4.1) -- meter them too.
    session.command("setflags pp send receive accept connect")
    session.command("startjob pp")
    session.settle()
    delays = MessageDelays(Trace(session.read_trace("f1")))
    assert delays.count() >= 20
    # One-way delay = 5ms base + transfer + syscall scheduling slack.
    assert 4.0 <= delays.mean() <= 9.0
