"""The batch fast lane: column pre-screens, compression, mmap access.

Companion to the throughput gate in benchmarks/test_perf_batchscan.py:
these are the *correctness* units -- the pre-screen's soundness on
every Appendix-A record type, the compressed segment round trip, the
lazy (mmap / referenced-buffer) store constructors, and the trace CLI
surface the fast lane grew (``pack --compress``, ``inspect`` cost
lines, ``bench``).
"""

import mmap

import pytest

from repro.__main__ import main
from repro.filtering.descriptions import (
    default_descriptions_text,
    parse_descriptions,
)
from repro.filtering.filterlib import build_record_screen
from repro.filtering.records import format_record
from repro.filtering.rules import parse_rules
from repro.metering.messages import (
    BODY_FIELDS,
    EVENT_TYPES,
    MessageCodec,
    record_fields,
)
from repro.net.addresses import InternetName
from repro.tracestore import (
    StoreReader,
    StoreWriter,
    collect_ops,
    scan_fast,
    select,
)
from repro.tracestore.batchscan import message_screen
from repro.tracestore.writer import flush_to_files

HOSTS = {1: "red", 2: "green", 3: "blue", 4: "yellow"}


def _wire_for(codec, event, i=0):
    """One well-formed wire message of ``event``, with every long set
    to a distinctive value and every NAME populated."""
    name = InternetName(HOSTS[1 + i % 4], 6000 + i, 1 + i % 4)
    body, names = {}, {}
    for field, kind in BODY_FIELDS[event]:
        if kind == "long":
            if not field.endswith("NameLen"):
                body[field] = 10 + i
        else:
            names[field] = name
    body.update(names)
    body.update(codec.name_lengths(**names))
    return codec.encode(
        event, machine=1 + i % 4, cpu_time=100 + i, proc_time=10, **body
    )


def _all_type_wire(n_per_type=5):
    codec = MessageCodec(HOSTS)
    wire = []
    for event in sorted(EVENT_TYPES):
        for i in range(n_per_type):
            wire.append(_wire_for(codec, event, i))
    return codec, wire


def _store_from(wire, base="/t/b.store", **kwargs):
    writer = StoreWriter(base, host_names=HOSTS, **kwargs)
    for raw in wire:
        writer.append(raw)
    writer.close()
    sink = {}
    collect_ops(sink, writer)
    return {path: bytes(data) for path, data in sink.items()}


# ----------------------------------------------------------------------
# The pre-screen, on every Appendix-A record type
# ----------------------------------------------------------------------


@pytest.mark.parametrize("event", sorted(EVENT_TYPES))
def test_prescreen_every_type_matches_oracle(event):
    """For each Appendix-A type: a type-pinned rule file selects on the
    batch lane exactly what the interpreted RuleSet.apply accepts, and
    records of every *other* type are rejected before materializing."""
    codec, wire = _all_type_wire()
    reader = StoreReader.from_bytes(_store_from(wire))
    # One selecting rule on this type plus one long condition, so the
    # screen has real column work; pid is on every Appendix-A body.
    rules = parse_rules("type={0}, pid>=10\n".format(event))
    oracle = [r for r in reader.scan() if rules.apply(r) is not None]
    fast = select(reader, rules)
    assert fast == oracle
    assert [r["event"] for r in fast] == [event] * 5
    # Every record of the other nine types was rejected on columns
    # alone: no dict, no rules.apply.
    stats = reader.last_stats
    assert stats.records_prescreened == len(wire) - len(fast)


@pytest.mark.parametrize("event", sorted(EVENT_TYPES))
def test_prescreen_soundness_on_wire_messages(event):
    """message_screen may only reject what rules.apply would reject --
    checked per type against rules that accept, rules that reject, and
    a NAME-condition rule (screenable only with the host table)."""
    codec, wire = _all_type_wire(n_per_type=1)
    rule_texts = [
        "type={0}, pid>=10\n".format(event),
        "type={0}, pid<0\n".format(event),
        "machine=1\n",
        "#type={0}\nevent=*\n".format(event),
    ]
    name_fields = [f for f, k in BODY_FIELDS[event] if k == "name"]
    if name_fields:
        rule_texts.append(
            "type={0}, {1}=inet:green:6001\n".format(event, name_fields[0])
        )
    for text in rule_texts:
        rules = parse_rules(text)
        for host_names in (None, HOSTS):
            screen = message_screen(rules, host_names)
            assert screen is not None
            for raw in wire:
                record = codec.decode(raw)
                if not screen(raw):
                    assert rules.apply(record) is None, (text, record)


def test_prescreen_name_rule_needs_host_table():
    """Without a host table a NAME condition cannot be screened (the
    display string is table-dependent), so those messages pass through;
    with the table the screen decides -- and agrees with the oracle."""
    codec, __ = _all_type_wire()
    rules = parse_rules("type=send, destName=inet:green:6001\n")
    hit = _wire_for(codec, "send", 1)     # destName inet:green:6001
    miss = _wire_for(codec, "send", 2)    # destName inet:blue:6002
    blind = message_screen(rules, None)
    sighted = message_screen(rules, HOSTS)
    assert blind(hit) and blind(miss)     # both pass to the full path
    assert sighted(hit) is True
    assert sighted(miss) is False
    assert rules.apply(codec.decode(miss)) is None


def test_build_record_screen_gates_on_descriptions_and_table():
    rules = parse_rules("type=send, destName=inet:green:6001\n")
    shipped = parse_descriptions(default_descriptions_text())
    edited = parse_descriptions("SEND 1, pid,0,4,10 msgLength,12,4,10\n")
    assert build_record_screen(rules, edited) is None
    assert build_record_screen(rules, None) is None
    codec, __ = _all_type_wire()
    miss = _wire_for(codec, "send", 2)
    assert build_record_screen(rules, shipped)(miss) is True
    assert build_record_screen(rules, shipped, HOSTS)(miss) is False


def test_cross_field_name_comparison_matches_oracle():
    """sockName=peerName -- the Figure 3.4 shape that compares two NAME
    columns -- selects identically on both lanes."""
    codec, wire = _all_type_wire()
    reader = StoreReader.from_bytes(_store_from(wire))
    rules = parse_rules("type=accept, sockName=peerName\n")
    oracle = [r for r in reader.scan() if rules.apply(r) is not None]
    assert select(reader, rules) == oracle
    assert oracle  # _wire_for gives accept equal sockName/peerName


# ----------------------------------------------------------------------
# Compressed segments
# ----------------------------------------------------------------------


def test_compressed_store_round_trips_and_shrinks():
    __, wire = _all_type_wire(n_per_type=40)
    plain = StoreReader.from_bytes(_store_from(wire))
    packed = StoreReader.from_bytes(_store_from(wire, compress=True))
    assert packed.records() == plain.records()
    sealed = [s for s in packed.segments if s.sealed]
    assert sealed and all(s.compressed for s in sealed)
    for segment in sealed:
        assert segment.stored_data_bytes() < segment.data_bytes()
        assert segment.verify()["status"] == "sealed-clean"


def test_compressed_store_fast_lane_identical():
    __, wire = _all_type_wire(n_per_type=40)
    reader = StoreReader.from_bytes(_store_from(wire, compress=True))
    assert list(scan_fast(reader)) == list(reader.scan())


def test_flipped_compression_flag_is_harmless():
    """The header flag byte is not CRC-protected; the footer is.  A
    flipped compression bit on a sealed segment must not change the
    record stream (the footer's own fields outrank the flag)."""
    __, wire = _all_type_wire(n_per_type=10)
    for compress in (False, True):
        store = _store_from(wire, compress=compress)
        baseline = StoreReader.from_bytes(store).records()
        flipped = {
            path: bytes(data[:7] + bytes([data[7] ^ 0x1]) + data[8:])
            for path, data in store.items()
        }
        assert StoreReader.from_bytes(flipped).records() == baseline


# ----------------------------------------------------------------------
# Lazy store constructors
# ----------------------------------------------------------------------


def test_from_files_memory_maps_segments(tmp_path):
    __, wire = _all_type_wire()
    base = str(tmp_path / "m.store")
    writer = StoreWriter(base, host_names=HOSTS)
    for raw in wire:
        writer.append(raw)
    writer.close()
    flush_to_files(writer)
    reader = StoreReader.from_files(base)
    assert reader.segments
    assert all(isinstance(s._raw, mmap.mmap) for s in reader.segments)
    assert list(scan_fast(reader)) == list(reader.scan())


def test_from_bytes_defers_bytearray_snapshots():
    """A bytearray-backed segment (live filesystem buffer) is not
    copied at construction -- only when a scan first touches it."""
    __, wire = _all_type_wire()
    store = {
        path: bytearray(data) for path, data in _store_from(wire).items()
    }
    reader = StoreReader.from_bytes(store)
    untouched = [s for s in reader.segments if s.sealed]
    assert untouched and all(s._snapshot is None for s in untouched)
    list(scan_fast(reader))
    assert all(s._snapshot is not None for s in reader.segments)


# ----------------------------------------------------------------------
# The trace CLI surface
# ----------------------------------------------------------------------


@pytest.fixture
def text_log(tmp_path):
    codec, wire = _all_type_wire(n_per_type=20)
    lines = []
    for raw in wire:
        record = codec.decode(raw)
        order = ["event"] + record_fields(record["event"])
        lines.append(format_record(record, order))
    logfile = tmp_path / "t.log"
    logfile.write_text("\n".join(lines) + "\n", encoding="ascii")
    return logfile


def test_cli_pack_compress_inspect_bench(tmp_path, capsys, text_log):
    base = str(tmp_path / "t.store")
    assert main(["trace", "pack", str(text_log), base,
                 "--compress", "yes"]) == 0
    out = capsys.readouterr().out
    assert "compressed segment(s)" in out

    assert main(["trace", "inspect", base]) == 0
    out = capsys.readouterr().out
    assert "zlib" in out          # per-segment compression ratio
    assert "verify cost:" in out
    assert "scan cost:" in out
    assert "batch fast lane" in out

    rules = tmp_path / "r.rules"
    rules.write_text("type=send, pid>=10\n", encoding="ascii")
    assert main(["trace", "bench", base, "--rules", str(rules),
                 "--repeat", "1"]) == 0
    out = capsys.readouterr().out
    assert "interpreted scan" in out
    assert "fast scan" in out
    assert "fast select" in out
    assert "ev/s" in out
