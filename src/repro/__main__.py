"""``python -m repro`` -- demonstrations and trace-store tools.

Without arguments, replays the paper's Appendix B session.  With an
example name, runs that example; the ``trace`` subcommands work on
trace files on the real filesystem:

    python -m repro                 # quickstart (Appendix B)
    python -m repro tsp_study       # the TSP debugging study
    python -m repro --list
    python -m repro trace pack f1.log f1.store    # text log -> store
    python -m repro trace inspect f1.store        # segment footers
    python -m repro trace cat f1.store --event send --machine 2
"""

import importlib.util
import pathlib
import sys

from repro.filtering.records import format_record
from repro.metering.messages import record_fields
from repro.tracestore import StoreReader, pack_text
from repro.tracestore.fsck import format_report, fsck_store, repair_store
from repro.tracestore.format import DEFAULT_SEGMENT_BYTES
from repro.tracestore.writer import flush_to_files

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"

TRACE_USAGE = """\
usage: python -m repro trace <subcommand>
  pack <logfile> <storebase> [--segment-bytes N]
                     convert a text trace log into a segmented store
  inspect <storebase>
                     show per-segment index footers + integrity status
  cat <storebase> [--machine N] [--pid N] [--event NAME]
                  [--since T] [--until T] [--salvage yes]
                     stream selected records as log lines
  fsck <storebase> [--repair yes] [--out BASE]
                     verify every segment (exit 1 if damaged); with
                     --repair, write a clean copy at BASE (default
                     <storebase>.repaired) keeping only verified frames"""


def _available():
    if not EXAMPLES_DIR.is_dir():
        return []
    return sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


# ----------------------------------------------------------------------
# trace subcommands
# ----------------------------------------------------------------------


def _parse_flags(args, spec):
    """Tiny ``--flag value`` parser; spec maps flag -> coercion."""
    positional, flags = [], {}
    i = 0
    while i < len(args):
        token = args[i]
        if token.startswith("--"):
            name = token[2:]
            if name not in spec:
                raise ValueError("unknown option --{0}".format(name))
            if i + 1 >= len(args):
                raise ValueError("option --{0} needs a value".format(name))
            flags[name] = spec[name](args[i + 1])
            i += 2
        else:
            positional.append(token)
            i += 1
    return positional, flags


def _trace_pack(args):
    positional, flags = _parse_flags(args, {"segment-bytes": int})
    if len(positional) != 2:
        print(TRACE_USAGE)
        return 1
    logfile, base = positional
    text = pathlib.Path(logfile).read_text(encoding="ascii")
    __, writer = pack_text(
        text,
        base,
        segment_bytes=flags.get("segment-bytes", DEFAULT_SEGMENT_BYTES),
        writer_driver=flush_to_files,
    )
    print(
        "packed {0} records into {1} segment(s) at {2}.seg*".format(
            writer.records_appended, writer.segments_sealed, base
        )
    )
    return 0


def _integrity_suffix(report):
    """One-line integrity summary for a segment (inspect output)."""
    parts = ["v{0}".format(report["version"] or "?"), report["status"]]
    parts.append("{0}B committed".format(report["committed_bytes"]))
    if report["torn_bytes"]:
        parts.append("{0}B torn".format(report["torn_bytes"]))
    if report["quarantined_bytes"]:
        parts.append("{0}B quarantined".format(report["quarantined_bytes"]))
    return ", ".join(parts)


def _trace_inspect(args):
    if len(args) != 1:
        print(TRACE_USAGE)
        return 1
    reader = StoreReader.from_files(args[0])
    integrity = {report["path"]: report for report in reader.integrity()}
    for segment in reader.segments:
        path, footer = segment.path, segment.footer
        report = integrity[path]
        if not segment.valid:
            print(
                "{0}: UNREADABLE ({1}) [{2}]".format(
                    path, report["error"], report["status"]
                )
            )
            continue
        if footer is None:
            print(
                "{0}: open segment (no footer; recovered by scan) [{1}]".format(
                    path, _integrity_suffix(report)
                )
            )
            continue
        events = " ".join(
            "{0}={1}".format(name, count)
            for name, count in sorted(footer["events"].items())
        )
        machines = " ".join(
            "m{0}={1}".format(m, count)
            for m, count in sorted(footer["machines"].items(), key=lambda kv: int(kv[0]))
        )
        print(
            "{0}: {1} records, t=[{2}, {3}], {4}; {5} [{6}]".format(
                path, footer["records"], footer["t_min"], footer["t_max"],
                machines, events, _integrity_suffix(report),
            )
        )
    print("total records: {0}".format(reader.record_count()))
    return 0


def _trace_fsck(args):
    positional, flags = _parse_flags(args, {"repair": str, "out": str})
    if len(positional) != 1:
        print(TRACE_USAGE)
        return 1
    base = positional[0]
    reader = StoreReader.from_files(base)
    repair = flags.get("repair", "").lower() in ("yes", "true", "1", "on")
    if repair:
        out_base = flags.get("out", base + ".repaired")
        __, writer, report = repair_store(
            reader, out_base, writer_driver=flush_to_files
        )
        for line in format_report(report):
            print(line)
        print(
            "repaired copy: {0} record(s) in {1} sealed segment(s) at "
            "{2}.seg*".format(
                writer.records_appended, writer.segments_sealed, out_base
            )
        )
    else:
        report = fsck_store(reader)
        for line in format_report(report):
            print(line)
    return 0 if report["clean"] else 1


def _trace_cat(args):
    spec = {
        "machine": int,
        "pid": int,
        "event": str,
        "since": int,
        "until": int,
        "salvage": str,
    }
    positional, flags = _parse_flags(args, spec)
    if len(positional) != 1:
        print(TRACE_USAGE)
        return 1
    reader = StoreReader.from_files(positional[0])
    predicates = {
        "machines": [flags["machine"]] if "machine" in flags else None,
        "events": [flags["event"]] if "event" in flags else None,
        "t_min": flags.get("since"),
        "t_max": flags.get("until"),
        "salvage": flags.get("salvage", "").lower() in ("yes", "true", "1", "on"),
    }
    if "pid" in flags:
        if "machine" not in flags:
            print("--pid needs --machine (pids are per-machine)")
            return 1
        predicates["pids"] = [(flags["machine"], flags["pid"])]
    for record in reader.scan(**predicates):
        order = ["event"] + record_fields(record["event"])
        print(format_record(record, order))
    stats = reader.last_stats
    if not stats.loss_free():
        print(
            "# loss: {0} corrupt frame(s), {1} byte(s) quarantined, "
            "{2} bad-header segment(s)".format(
                stats.frames_corrupt,
                stats.bytes_quarantined,
                stats.segments_bad_header,
            ),
            file=sys.stderr,
        )
    return 0


def trace_main(args):
    handlers = {
        "pack": _trace_pack,
        "inspect": _trace_inspect,
        "cat": _trace_cat,
        "fsck": _trace_fsck,
    }
    if not args or args[0] not in handlers:
        print(TRACE_USAGE)
        return 1
    try:
        return handlers[args[0]](args[1:])
    except (FileNotFoundError, ValueError) as err:
        print("trace {0}: {1}".format(args[0], err))
        return 1


# ----------------------------------------------------------------------


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    names = _available()
    if argv and argv[0] in ("--list", "-l"):
        print("available examples:")
        for name in names:
            print("  ", name)
        return 0
    target = argv[0] if argv else "quickstart"
    if target not in names:
        print("unknown example {0!r}; try: {1}".format(target, ", ".join(names)))
        return 1
    path = EXAMPLES_DIR / (target + ".py")
    spec = importlib.util.spec_from_file_location("repro_example_" + target, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
