#!/usr/bin/env python
"""Selection rules and data reduction (Section 3.4, Figures 3.3/3.4).

The user only wants to save send events of at least 512 bytes, with
the bulky name fields discarded -- exactly the kind of template shown
in Figure 3.4 ("machine=#*, type=1, pid=#*, size>=512").  We install a
custom templates file, point a second (unrestricted) filter at the
same computation style for comparison, and diff the log volumes.

Run:  python examples/custom_filter.py
"""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all

#: Figure 3.4 flavoured rules: big sends only, drop pc and name fields.
TEMPLATES = "type=send, pc=#*, destName=#*, msgLength>=512\n"


def run(templates_name):
    cluster = Cluster(seed=5)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    # Install the user's templates file on the filter machine.
    cluster.machine("blue").fs.install("bigsends", TEMPLATES, mode=0o644)

    session.command(
        "filter f1 blue filter descriptions {0}".format(templates_name)
    )
    session.command("newjob chat")
    # A client sending a mix of small and large messages.
    session.command("addprocess chat red echoserver 5000 1")
    session.command("addprocess chat green echoclient red 5000 6 700 2")
    session.command("setflags chat send receive accept connect")
    session.command("startjob chat")
    session.settle()
    session.command("getlog f1 trace")
    return session


def main():
    print("== unrestricted filter (default templates) ==")
    session = run("templates")
    full = session.read_controller_file("trace").splitlines()
    print("saved {0} records; first record:".format(len(full)))
    print(" ", full[0])

    print()
    print("== custom filter: only sends >= 512 bytes, reduced ==")
    session = run("bigsends")
    reduced = session.read_controller_file("trace").splitlines()
    print("saved {0} records:".format(len(reduced)))
    for line in reduced:
        print(" ", line)
    print()
    print(
        "reduction: {0} -> {1} records; note the discarded pc/destName "
        "fields".format(len(full), len(reduced))
    )


if __name__ == "__main__":
    main()
