"""Token ring: N processes passing a token around machines.

A classic topology for the structural analysis (its communication
graph should classify as "ring").
"""

from repro import guestlib
from repro.kernel import defs


def ring_node(sys, argv):
    """argv: [my_port, next_host, next_port, rounds, is_origin].

    Each node listens on ``my_port`` and forwards the token to
    ``next_host:next_port``.  The origin injects the token and counts
    ``rounds`` full circulations; the token payload is the hop count.
    """
    my_port = int(argv[0])
    next_host = argv[1]
    next_port = int(argv[2])
    rounds = int(argv[3]) if len(argv) > 3 else 3
    is_origin = len(argv) > 4 and argv[4] == "origin"

    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", my_port))
    yield sys.listen(listen_fd, 2)

    out_fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (next_host, next_port)
    )
    in_fd, __ = yield sys.accept(listen_fd)

    if is_origin:
        yield sys.write(out_fd, (0).to_bytes(4, "big"))
    done = False
    completed = 0
    while not done:
        raw = yield from guestlib.read_exactly(sys, in_fd, 4)
        if raw is None:
            break
        hops = int.from_bytes(raw, "big")
        yield sys.compute(1.0)  # token-holding work
        if is_origin:
            if hops == 0xFFFFFFFF:
                done = True  # our shutdown token came all the way round
                continue
            completed += 1
            if completed >= rounds:
                yield sys.write(out_fd, (0xFFFFFFFF).to_bytes(4, "big"))
                yield sys.write(
                    1,
                    b"token circulated %d times, %d hops\n" % (completed, hops),
                )
                continue  # keep reading until the shutdown returns
            yield sys.write(out_fd, (hops + 1).to_bytes(4, "big"))
        else:
            if hops == 0xFFFFFFFF:
                yield sys.write(out_fd, raw)  # propagate shutdown
                done = True
            else:
                yield sys.write(out_fd, (hops + 1).to_bytes(4, "big"))
    yield sys.close(in_fd)
    yield sys.close(out_fd)
    yield sys.close(listen_fd)
    yield sys.exit(0)
