"""Daemon liveness bookkeeping: the HealthMonitor's probe clock.

These are pure unit tests over the schedule -- no simulator.  The
property the recovery design leans on: probe traffic toward a dead
machine is *bounded* (exponential backoff up to a cap, a fixed number
of probes per episode, then dormancy), and any of the controller's
normal activity re-arms a dormant episode.  Without the bound, one
dead meterdaemon would keep the controller's event loop busy forever
and ``settle()`` would never terminate.
"""

from repro.controller import health


def _fail_times(monitor, machine, start):
    """Drive an episode with failures only; return the probe times the
    schedule asked for, until the monitor goes dormant."""
    now = start
    times = []
    while True:
        deadline = monitor.next_wakeup([machine])
        if deadline is None:
            return times
        times.append(deadline)
        now = deadline
        assert monitor.due(now, [machine]) == [machine]
        monitor.note_failure(machine, now)


def test_healthy_machine_heartbeats_only_while_active():
    monitor = health.HealthMonitor()
    monitor.note_activity(0.0)
    monitor.watch("red", 0.0)
    assert monitor.next_wakeup(["red"]) == health.HEARTBEAT_MS
    # Past the idle window the heartbeat disarms: an idle controller
    # with healthy machines schedules nothing.
    monitor.entry("red").next_probe_ms = monitor.active_until + 1.0
    assert monitor.next_wakeup(["red"]) is None


def test_probe_traffic_is_bounded_with_exponential_backoff():
    monitor = health.HealthMonitor()
    monitor.note_activity(0.0)
    monitor.watch("red", 0.0)
    # First failure marks the machine degraded...
    assert monitor.note_failure("red", 100.0) is True
    assert monitor.is_degraded("red")
    times = _fail_times(monitor, "red", 100.0)
    # ...then exactly PROBES_PER_EPISODE re-probes happen, no more.
    assert len(times) == health.PROBES_PER_EPISODE
    gaps = [b - a for a, b in zip([100.0] + times, times)]
    # Gaps start at the minimum and double up to the cap, never past it.
    assert gaps[0] == health.PROBE_MIN_MS
    for prev, cur in zip(gaps, gaps[1:]):
        assert cur == min(prev * 2.0, health.PROBE_CAP_MS)
    assert max(gaps) <= health.PROBE_CAP_MS
    # Dormant now: nothing scheduled no matter how far we look.
    assert monitor.next_wakeup(["red"]) is None
    assert monitor.due(1e9, ["red"]) == []


def test_activity_rearms_a_dormant_episode():
    monitor = health.HealthMonitor()
    monitor.note_activity(0.0)
    monitor.watch("red", 0.0)
    monitor.note_failure("red", 100.0)
    _fail_times(monitor, "red", 100.0)
    assert monitor.next_wakeup(["red"]) is None
    # A user command arrives: the episode restarts from the minimum.
    monitor.note_activity(50000.0)
    assert monitor.next_wakeup(["red"]) == 50000.0 + health.PROBE_MIN_MS
    assert monitor.entry("red").probes_left == health.PROBES_PER_EPISODE


def test_success_clears_degradation_exactly_once():
    monitor = health.HealthMonitor()
    monitor.note_activity(0.0)
    monitor.watch("red", 0.0)
    assert monitor.note_success("red", 10.0) is False  # already healthy
    monitor.note_failure("red", 100.0)
    monitor.note_failure("red", 400.0)
    entry = monitor.entry("red")
    assert entry.failures == 2
    # The transition out of degraded reports True exactly once, resets
    # the failure count, and goes back on the heartbeat schedule.
    assert monitor.note_success("red", 500.0) is True
    assert monitor.note_success("red", 600.0) is False
    assert not monitor.is_degraded("red")
    assert entry.failures == 0
    assert entry.next_probe_ms == 600.0 + health.HEARTBEAT_MS


def test_degraded_listing_is_sorted():
    monitor = health.HealthMonitor()
    for name in ("red", "blue", "green"):
        monitor.note_failure(name, 0.0)
    assert monitor.degraded_machines() == ["blue", "green", "red"]
    monitor.note_success("green", 1.0)
    assert monitor.degraded_machines() == ["blue", "red"]


def test_unwatched_machines_never_probe():
    monitor = health.HealthMonitor()
    monitor.note_activity(0.0)
    monitor.watch("red", 0.0)
    # Only machines in the watched set count toward the wakeup, so a
    # job removed from the session stops generating probe traffic.
    assert monitor.next_wakeup([]) is None
    assert monitor.due(1e9, []) == []
