"""Deterministic fault injection for the simulated cluster.

The paper's monitor exists to diagnose distributed programs that
misbehave -- lost datagrams, hung processes, crashed readers (Sections
2, 4.2).  This package makes the world able to misbehave on purpose,
reproducibly: a :class:`FaultPlan` declares *what goes wrong when* in
simulated milliseconds, and a :class:`FaultInjector` arms the plan on a
cluster's event queue.  Same plan + same seed => identical trace.

Supported faults: machine crash and reboot, network partition and heal,
link degradation (datagram loss bursts, latency spikes), targeted
process/daemon kills, and storage faults (torn writes, dropped flushes,
bit rot -- see :mod:`repro.faults.storage`, which also provides
:class:`FaultyWriter` / :class:`StorageFaultPlan` for injecting
deterministic damage at the trace-store writer's driver seam).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.storage import FaultyWriter, StorageFaultPlan

__all__ = ["FaultPlan", "FaultInjector", "FaultyWriter", "StorageFaultPlan"]
