"""``python -m repro`` -- demonstrations, trace tools, and offline
analysis.

Without arguments, replays the paper's Appendix B session.  With an
example name, runs that example; the other subcommands work on trace
files on the real filesystem (see ``python -m repro --help``).
"""

import importlib.util
import json
import pathlib
import sys
import time

from repro.filtering.records import format_record, parse_trace
from repro.filtering.rules import parse_rules
from repro.metering.messages import record_fields
from repro.streaming.engine import format_firing, format_snapshot
from repro.streaming.queries import QUERY_KINDS
from repro.streaming.twins import replay_engine
from repro.tracestore import StoreReader, pack_text, scan_fast, select
from repro.tracestore.errors import StoreError
from repro.tracestore.fsck import format_report, fsck_store, repair_store
from repro.tracestore.format import DEFAULT_SEGMENT_BYTES
from repro.tracestore.writer import flush_to_files

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"

USAGE = """\
usage: python -m repro [<example> | --list | trace ... | stats ... | watch ...
                        | chaos ...]

Examples (simulated monitor sessions; default: quickstart):
  python -m repro                 # quickstart (Appendix B)
  python -m repro tsp_study       # the TSP debugging study
  python -m repro --list          # every available example

Trace-store tools (trace files on the real filesystem):
  python -m repro trace pack <logfile> <storebase> [--compress yes]
  python -m repro trace inspect <storebase>            segment footers
  python -m repro trace cat <storebase> [--event send] [--salvage yes]
  python -m repro trace bench <storebase> [--rules FILE]
  python -m repro trace fsck <storebase> [--repair yes]

Offline analysis (replay a finished trace through the streaming engine):
  python -m repro stats <log-or-storebase> [--window MS] [--digest yes]
  python -m repro watch <log-or-storebase> <kind> [--window MS] [--rule R]
                        [--count N] [--threshold N] [--event NAME]
                        query kinds: undelivered pattern quiet rate

Chaos search (seed-derived fault schedules, oracles, shrinking):
  python -m repro chaos run [--profile mixed] [--seeds 0:25]
  python -m repro chaos soak [--schedules 25]
  python -m repro chaos replay <artifact.json>
  python -m repro chaos shrink <artifact.json>

Inside a live session the controller commands `stats` and `watch` ask
the running filter's engine the same questions (see docs/USERS_MANUAL)."""

TRACE_USAGE = """\
usage: python -m repro trace <subcommand>
  pack <logfile> <storebase> [--segment-bytes N] [--compress yes]
                     convert a text trace log into a segmented store;
                     --compress stores each sealed segment's data
                     region as one zlib blob
  inspect <storebase>
                     show per-segment index footers, integrity status,
                     compression ratios, and verify/scan cost
  cat <storebase> [--machine N] [--pid N] [--event NAME]
                  [--since T] [--until T] [--salvage yes]
                     stream selected records as log lines
  bench <storebase> [--rules FILE] [--repeat N]
                     time the interpreted scan against the batch fast
                     lane (and rule selection, with --rules)
  fsck <storebase> [--repair yes] [--out BASE]
                     verify every segment (exit 1 if damaged); with
                     --repair, write a clean copy at BASE (default
                     <storebase>.repaired) keeping only verified frames"""

_TRUTHY = ("yes", "true", "1", "on")


def _available():
    if not EXAMPLES_DIR.is_dir():
        return []
    return sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


# ----------------------------------------------------------------------
# trace subcommands
# ----------------------------------------------------------------------


def _parse_flags(args, spec):
    """Tiny ``--flag value`` parser; spec maps flag -> coercion."""
    positional, flags = [], {}
    i = 0
    while i < len(args):
        token = args[i]
        if token.startswith("--"):
            name = token[2:]
            if name not in spec:
                raise ValueError("unknown option --{0}".format(name))
            if i + 1 >= len(args):
                raise ValueError("option --{0} needs a value".format(name))
            flags[name] = spec[name](args[i + 1])
            i += 2
        else:
            positional.append(token)
            i += 1
    return positional, flags


def _trace_pack(args):
    positional, flags = _parse_flags(args, {"segment-bytes": int, "compress": str})
    if len(positional) != 2:
        print(TRACE_USAGE)
        return 1
    logfile, base = positional
    text = pathlib.Path(logfile).read_text(encoding="ascii")
    compress = flags.get("compress", "").lower() in _TRUTHY
    __, writer = pack_text(
        text,
        base,
        segment_bytes=flags.get("segment-bytes", DEFAULT_SEGMENT_BYTES),
        writer_driver=flush_to_files,
        compress=compress,
    )
    print(
        "packed {0} records into {1}{2} segment(s) at {3}.seg*".format(
            writer.records_appended,
            writer.segments_sealed,
            " compressed" if compress else "",
            base,
        )
    )
    return 0


def _integrity_suffix(report, segment=None, verify_ms=None):
    """One-line integrity summary for a segment (inspect output)."""
    parts = ["v{0}".format(report["version"] or "?"), report["status"]]
    parts.append("{0}B committed".format(report["committed_bytes"]))
    if report["torn_bytes"]:
        parts.append("{0}B torn".format(report["torn_bytes"]))
    if report["quarantined_bytes"]:
        parts.append("{0}B quarantined".format(report["quarantined_bytes"]))
    if segment is not None and segment.compressed:
        raw = segment.data_bytes()
        stored = segment.stored_data_bytes()
        parts.append(
            "zlib {0}B/{1}B ({2:.0f}%)".format(
                stored, raw, 100.0 * stored / raw if raw else 100.0
            )
        )
    if verify_ms is not None:
        parts.append("verify {0:.1f}ms".format(verify_ms))
    return ", ".join(parts)


def _trace_inspect(args):
    if len(args) != 1:
        print(TRACE_USAGE)
        return 1
    reader = StoreReader.from_files(args[0])
    # Time each segment's integrity pass individually: for compressed
    # segments this is the inflate + frame-walk cost a scan pays.
    integrity, verify_ms = {}, {}
    for segment in reader.segments:
        began = time.perf_counter()
        report = segment.verify()
        verify_ms[segment.path] = (time.perf_counter() - began) * 1000.0
        integrity[report["path"]] = report
    for segment in reader.segments:
        path, footer = segment.path, segment.footer
        report = integrity[path]
        if not segment.valid:
            print(
                "{0}: UNREADABLE ({1}) [{2}]".format(
                    path, report["error"], report["status"]
                )
            )
            continue
        suffix = _integrity_suffix(report, segment, verify_ms[path])
        if footer is None:
            print(
                "{0}: open segment (no footer; recovered by scan) [{1}]".format(
                    path, suffix
                )
            )
            continue
        events = " ".join(
            "{0}={1}".format(name, count)
            for name, count in sorted(footer["events"].items())
        )
        machines = " ".join(
            "m{0}={1}".format(m, count)
            for m, count in sorted(footer["machines"].items(), key=lambda kv: int(kv[0]))
        )
        print(
            "{0}: {1} records, t=[{2}, {3}], {4}; {5} [{6}]".format(
                path, footer["records"], footer["t_min"], footer["t_max"],
                machines, events, suffix,
            )
        )
    print("total records: {0}".format(reader.record_count()))
    print("verify cost: {0:.1f}ms".format(sum(verify_ms.values())))
    began = time.perf_counter()
    try:
        scanned = sum(1 for __ in scan_fast(reader))
    except StoreError as err:
        print("scan cost: n/a (strict scan failed: {0})".format(err))
    else:
        elapsed = time.perf_counter() - began
        print(
            "scan cost: {0:.1f}ms ({1:.0f} records/s, batch fast lane)".format(
                elapsed * 1000.0, scanned / elapsed if elapsed else 0.0
            )
        )
    return 0


def _trace_fsck(args):
    positional, flags = _parse_flags(args, {"repair": str, "out": str})
    if len(positional) != 1:
        print(TRACE_USAGE)
        return 1
    base = positional[0]
    reader = StoreReader.from_files(base)
    repair = flags.get("repair", "").lower() in ("yes", "true", "1", "on")
    if repair:
        out_base = flags.get("out", base + ".repaired")
        __, writer, report = repair_store(
            reader, out_base, writer_driver=flush_to_files
        )
        for line in format_report(report):
            print(line)
        print(
            "repaired copy: {0} record(s) in {1} sealed segment(s) at "
            "{2}.seg*".format(
                writer.records_appended, writer.segments_sealed, out_base
            )
        )
    else:
        report = fsck_store(reader)
        for line in format_report(report):
            print(line)
    return 0 if report["clean"] else 1


def _trace_cat(args):
    spec = {
        "machine": int,
        "pid": int,
        "event": str,
        "since": int,
        "until": int,
        "salvage": str,
    }
    positional, flags = _parse_flags(args, spec)
    if len(positional) != 1:
        print(TRACE_USAGE)
        return 1
    reader = StoreReader.from_files(positional[0])
    predicates = {
        "machines": [flags["machine"]] if "machine" in flags else None,
        "events": [flags["event"]] if "event" in flags else None,
        "t_min": flags.get("since"),
        "t_max": flags.get("until"),
        "salvage": flags.get("salvage", "").lower() in _TRUTHY,
    }
    if "pid" in flags:
        if "machine" not in flags:
            print("--pid needs --machine (pids are per-machine)")
            return 1
        predicates["pids"] = [(flags["machine"], flags["pid"])]
    for record in scan_fast(reader, **predicates):
        order = ["event"] + record_fields(record["event"])
        print(format_record(record, order))
    stats = reader.last_stats
    if predicates["salvage"]:
        # A salvage run always reports its loss ledger, even when it
        # turned out to be zero -- "salvaged everything" and "nothing
        # was damaged" must be distinguishable from silence.
        print(
            "# salvage: {0} corrupt frame(s), {1} byte(s) quarantined, "
            "{2} record(s) salvaged".format(
                stats.frames_corrupt,
                stats.bytes_quarantined,
                stats.records_salvaged,
            ),
            file=sys.stderr,
        )
    elif not stats.loss_free():
        print(
            "# loss: {0} corrupt frame(s), {1} byte(s) quarantined, "
            "{2} bad-header segment(s)".format(
                stats.frames_corrupt,
                stats.bytes_quarantined,
                stats.segments_bad_header,
            ),
            file=sys.stderr,
        )
    return 0


def _bench_lane(run, repeat):
    """Best-of-``repeat`` wall time for one scan lane; ``run`` returns
    the records it produced.  Returns (records, seconds)."""
    best = None
    count = 0
    for __ in range(repeat):
        began = time.perf_counter()
        count = run()
        elapsed = time.perf_counter() - began
        if best is None or elapsed < best:
            best = elapsed
    return count, best


def _trace_bench(args):
    positional, flags = _parse_flags(args, {"rules": str, "repeat": int})
    if len(positional) != 1:
        print(TRACE_USAGE)
        return 1
    reader = StoreReader.from_files(positional[0])
    repeat = max(1, flags.get("repeat", 3))
    lanes = [
        ("interpreted scan", lambda: sum(1 for __ in reader.scan())),
        ("fast scan", lambda: sum(1 for __ in scan_fast(reader))),
    ]
    if "rules" in flags:
        rules = parse_rules(
            pathlib.Path(flags["rules"]).read_text(encoding="ascii")
        )
        lanes.append(
            (
                "interpreted select",
                lambda: sum(
                    1 for r in reader.scan() if rules.apply(r) is not None
                ),
            )
        )
        lanes.append(("fast select", lambda: len(select(reader, rules))))
    total = None
    baseline = None
    for label, run in lanes:
        count, seconds = _bench_lane(run, repeat)
        if total is None:
            total = count  # every lane walks the whole store
        # Rate is records *scanned* per second -- selection lanes
        # process the full store and output a subset.
        eps = total / seconds if seconds else 0.0
        if baseline is None:
            baseline = eps
        print(
            "{0:<18} {1:>9} records out  {2:>8.1f}ms  {3:>9.0f} ev/s  "
            "({4:.2f}x)".format(
                label, count, seconds * 1000.0, eps,
                eps / baseline if baseline else 0.0,
            )
        )
    return 0


def trace_main(args):
    handlers = {
        "pack": _trace_pack,
        "inspect": _trace_inspect,
        "cat": _trace_cat,
        "bench": _trace_bench,
        "fsck": _trace_fsck,
    }
    if not args or args[0] not in handlers:
        print(TRACE_USAGE)
        return 1
    try:
        return handlers[args[0]](args[1:])
    except (FileNotFoundError, ValueError) as err:
        print("trace {0}: {1}".format(args[0], err))
        return 1


# ----------------------------------------------------------------------
# Offline streaming analysis: stats and watch over a finished trace
# ----------------------------------------------------------------------


def _load_records(path, salvage=False):
    """Records from a text log file or a store base, in commit order --
    exactly the stream the live engine folded."""
    p = pathlib.Path(path)
    if p.is_file():
        return list(parse_trace(p.read_text(encoding="ascii")))
    return list(scan_fast(StoreReader.from_files(path), salvage=salvage))


STATS_USAGE = """\
usage: python -m repro stats <log-or-storebase> [--window MS] [--digest yes]
                             [--salvage yes]"""


def stats_main(args):
    spec = {"window": float, "digest": str, "salvage": str}
    positional, flags = _parse_flags(args, spec)
    if len(positional) != 1:
        print(STATS_USAGE)
        return 1
    truthy = ("yes", "true", "1", "on")
    records = _load_records(
        positional[0], salvage=flags.get("salvage", "").lower() in truthy
    )
    engine = replay_engine(records, window_ms=flags.get("window"))
    engine.finalize()
    if flags.get("digest", "").lower() in truthy:
        print(json.dumps(engine.digest(), sort_keys=True))
    else:
        for line in format_snapshot(engine.snapshot()):
            print(line)
    return 0


WATCH_USAGE = """\
usage: python -m repro watch <log-or-storebase> <kind> [--window MS]
                             [--rule R] [--count N] [--threshold N]
                             [--event NAME] [--salvage yes]
  query kinds: {0}""".format(" ".join(QUERY_KINDS))


def watch_main(args):
    spec_flags = {
        "window": float,
        "rule": str,
        "count": int,
        "threshold": int,
        "event": str,
        "salvage": str,
    }
    positional, flags = _parse_flags(args, spec_flags)
    if len(positional) != 2 or positional[1] not in QUERY_KINDS:
        print(WATCH_USAGE)
        return 1
    path, kind = positional
    salvage = flags.pop("salvage", "").lower() in ("yes", "true", "1", "on")
    spec = {"kind": kind}
    spec.update(flags)
    engine = replay_engine(
        _load_records(path, salvage=salvage), specs=[(1, spec)]
    )
    engine.finalize(advance_queries=True)
    firings = engine.poll(0)["firings"]
    for firing in firings:
        print(format_firing(firing))
    print("{0} firing(s)".format(len(firings)))
    return 0


# ----------------------------------------------------------------------


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help", "help"):
        print(USAGE)
        return 0
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.chaos.cli import chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] in ("stats", "watch"):
        handler = stats_main if argv[0] == "stats" else watch_main
        try:
            return handler(argv[1:])
        except (FileNotFoundError, ValueError) as err:
            print("{0}: {1}".format(argv[0], err))
            return 1
    names = _available()
    if argv and argv[0] in ("--list", "-l"):
        print("available examples:")
        for name in names:
            print("  ", name)
        return 0
    target = argv[0] if argv else "quickstart"
    if target not in names:
        print("unknown example {0!r}; try: {1}".format(target, ", ".join(names)))
        return 1
    path = EXAMPLES_DIR / (target + ".py")
    spec = importlib.util.spec_from_file_location("repro_example_" + target, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
