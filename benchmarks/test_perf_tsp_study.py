"""P4 -- The TSP performance-debugging study (Section 5, Lai & Miller).

"A multiprocess computation was developed and debugged using the tool,
which led to substantial modifications of the program resulting in
substantial improvements of its performance."

The bench runs the naive (v1) and fixed (v2) distributed TSP solvers
under full metering and reports, from the *trace alone*: elapsed time,
CPU parallelism, and the speedup -- the series the study reports.
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.analysis import ParallelismProfile, Trace
from repro.programs.tsp import make_cities, solve_exact

WORKER_MACHINES = ("red", "green", "blue")
NCITIES = 7


def _run(version, seed=3):
    session = fresh_session(seed=seed)
    session.command("filter f1 blue")
    session.command("newjob tsp")
    session.command(
        "addprocess tsp yellow tspmaster {0} 5200 {1} {2} 1".format(
            version, len(WORKER_MACHINES), NCITIES
        )
    )
    for machine in WORKER_MACHINES:
        session.command(
            "addprocess tsp {0} tspworker yellow 5200".format(machine)
        )
    session.command("setflags tsp all")
    session.command("startjob tsp")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    profile = ParallelismProfile(trace)
    answer_lines = [
        line for line in session.drain_output().splitlines()
        if "best tour length" in line
    ]
    return profile, answer_lines


@pytest.mark.parametrize("version", ["v1", "v2"])
def test_perf_tsp_versions(benchmark, version):
    profile, answers = benchmark.pedantic(
        _run, args=(version,), rounds=1, iterations=1
    )
    print(
        "\n[P4] tsp {0}: elapsed {1:7.1f} ms  cpu-parallelism {2:4.2f}  "
        "({3} workers)".format(
            version,
            profile.elapsed_ms(),
            profile.cpu_parallelism(),
            len(WORKER_MACHINES),
        )
    )
    assert answers, "master reported a best tour"
    expected, __ = solve_exact(make_cities(NCITIES, 1))
    assert str(int(expected)) in answers[0]


def test_perf_tsp_fix_brings_substantial_improvement(benchmark):
    def compare():
        return _run("v1"), _run("v2")

    (v1_profile, v1_answers), (v2_profile, v2_answers) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    speedup = v1_profile.elapsed_ms() / v2_profile.elapsed_ms()
    # Same answer...
    assert v1_answers[0].split(":")[-2:] == v2_answers[0].split(":")[-2:]
    # ..."substantial improvements of its performance".
    assert speedup > 1.5
    # The diagnosis the monitor enabled: v1 kept the workers
    # serialized; v2 runs them concurrently.
    assert v2_profile.cpu_parallelism() > v1_profile.cpu_parallelism() * 1.5
    print(
        "\n[P4] speedup v1 -> v2: {0:.2f}x  (cpu parallelism "
        "{1:.2f} -> {2:.2f})".format(
            speedup,
            v1_profile.cpu_parallelism(),
            v2_profile.cpu_parallelism(),
        )
    )
