"""Selection rules / templates (Figures 3.3 and 3.4).

A templates file holds one rule per line; a rule is a comma-separated
conjunction of conditions ``field OP value`` with OP one of
``> < = != >= <=``.  A record is accepted if it matches *any* rule.

Value forms:

- an integer literal: ``cpuTime<10000``
- a name/display string: ``destName=inet:blue:4000``
- the wildcard ``*`` ("matches any value")
- another field name: ``sockName=peerName`` (cross-field comparison)
- any of the above prefixed with the discard character ``#``: the
  condition matches as usual, and "if an event record is accepted by
  the filter, any fields with this value prefix will be discarded"
  (reduction).

Field name ``type`` is accepted as an alias for the header's
``traceType``, matching the figures' spelling, and may also be compared
against event names ("type=send").
"""

from repro.metering.messages import EVENT_TYPES

_OPERATORS = ("<=", ">=", "!=", "<", ">", "=")

_ALIASES = {"type": "traceType"}


class Condition:
    """One ``field OP value`` clause."""

    __slots__ = ("field", "op", "value", "discard", "is_wildcard", "is_field_ref")

    def __init__(self, field, op, value):
        self.field = _ALIASES.get(field, field)
        self.op = op
        self.discard = False
        if isinstance(value, str) and value.startswith("#"):
            self.discard = True
            value = value[1:]
        self.is_wildcard = value == "*"
        self.is_field_ref = False
        if not self.is_wildcard:
            value = self._coerce(value)
        self.value = value

    def _coerce(self, value):
        try:
            return int(value)
        except (TypeError, ValueError):
            pass
        if value in EVENT_TYPES and self.field == "traceType":
            return EVENT_TYPES[value]
        # A bare identifier naming another record field is a cross-field
        # reference; anything else is a literal string (e.g. a name).
        if isinstance(value, str) and value.isidentifier():
            self.is_field_ref = True
        return value

    def matches(self, record):
        if self.field not in record:
            return False
        actual = record[self.field]
        if self.is_wildcard:
            return True
        expected = self.value
        if self.is_field_ref:
            ref = _ALIASES.get(expected, expected)
            if ref in record:
                expected = record[ref]
            # else: treat as a literal string and fall through.
        return self._compare(actual, expected)

    def _compare(self, actual, expected):
        # Numbers compare numerically; mixed types compare as strings.
        if not (isinstance(actual, int) and isinstance(expected, int)):
            actual, expected = str(actual), str(expected)
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if self.op == "<":
            return actual < expected
        if self.op == ">":
            return actual > expected
        if self.op == "<=":
            return actual <= expected
        return actual >= expected  # ">="

    def to_text(self):
        value = self.value
        if self.is_wildcard:
            value = "*"
        return "{0}{1}{2}{3}".format(
            self.field, self.op, "#" if self.discard else "", value
        )

    def __repr__(self):
        return "Condition({0})".format(self.to_text())


class Rule:
    """A conjunction of conditions; one line of the templates file."""

    def __init__(self, conditions):
        self.conditions = list(conditions)

    def matches(self, record):
        return all(cond.matches(record) for cond in self.conditions)

    def discard_fields(self):
        return {cond.field for cond in self.conditions if cond.discard}

    def __repr__(self):
        return "Rule({0})".format(
            ", ".join(cond.to_text() for cond in self.conditions)
        )


class RuleSet:
    """All rules of a templates file.

    :meth:`apply` returns the (possibly reduced) record to save, or
    None if no rule accepts it.  An empty rule set accepts everything
    unreduced (a filter with no templates just logs the full trace).
    """

    def __init__(self, rules):
        self.rules = list(rules)

    def apply(self, record):
        if not self.rules:
            return record
        for rule in self.rules:
            if rule.matches(record):
                discards = rule.discard_fields()
                if not discards:
                    return record
                return {
                    key: value
                    for key, value in record.items()
                    if key not in discards
                }
        return None

    def __len__(self):
        return len(self.rules)


def _parse_condition(text):
    text = text.strip()
    for op in _OPERATORS:
        idx = text.find(op)
        if idx > 0:
            field = text[:idx].strip()
            value = text[idx + len(op) :].strip()
            if not value:
                raise ValueError("missing value in condition %r" % text)
            return Condition(field, op, value)
    raise ValueError("no operator in condition %r" % text)


def parse_rules(text):
    """Parse a templates file into a :class:`RuleSet`."""
    rules = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        conditions = [
            _parse_condition(chunk)
            for chunk in line.split(",")
            if chunk.strip()
        ]
        if conditions:
            rules.append(Rule(conditions))
    return RuleSet(rules)


#: The default templates file installed on every machine: one wildcard
#: rule that accepts every record without reduction.
DEFAULT_TEMPLATES_TEXT = "machine=*\n"
