"""Hot path guard -- the live kernel->filter pipeline at 50k events.

Blocking CI gate for PR 4's fast lane:

1. run 50k mixed meter messages through the filter's per-event work
   (description decode -> rule selection -> record formatting) twice:
   once interpreted (the pre-PR path, kept as ``compiled=False``) and
   once compiled (dispatch table + precompiled structs).  Outputs must
   be identical and the compiled path at least 2x faster, above an
   absolute events/sec floor;
2. frame the same 50k-message stream with the old shrinking-``bytes``
   reslicer and the new indexed cursor; identical messages, cursor
   not slower;
3. measure monitored-vs-unmonitored perturbation on a chatty metered
   workload (wall clock and simulated time);
4. run the Appendix B session compiled and interpreted: the filter's
   text log and trace store must be byte-identical.

Results land in BENCH_PR4.json at the repo root (uploaded as a CI
artifact) so the perf trajectory has a baseline.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import HOSTS
from repro.filtering.descriptions import (
    default_descriptions_text,
    parse_descriptions,
)
from repro.filtering.filterlib import MAX_METER_MESSAGE, MeterInbox
from repro.filtering.records import format_record
from repro.filtering.rules import parse_rules
from repro.kernel import defs
from repro.metering import flags as mf
from repro.metering.messages import HEADER_BYTES, MessageCodec, peek_size
from tests.metering.harness import metered_spawn, start_collector

N_EVENTS = 50_000
#: Absolute floor for the dense-rule compiled pipeline.  The path
#: sustains ~205k ev/s on a stock runner (BENCH_PR4.json), so 100k is
#: a real regression gate -- a change that halves the hot path fails
#: CI -- while still leaving 2x headroom for slow shared runners.
MIN_COMPILED_EPS = 100_000.0
MIN_SPEEDUP = 2.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR4.json"

#: Dense rule file: type-pinned selections with reductions plus range
#: conditions, the shape Figure 3.4 shows -- every record walks rules.
DENSE_RULES = """
type=8, sockName=peerName
type=1, msgLength>4096
type=1, msgLength>256, pc=#*
type=2, msgLength<32
type=9, peerName=inet:green:7777
type=4, domain=2
type=5, newSock>32
type=7, newPid>0, pc=#*
type=10, status!=0
machine=9
cpuTime>999999
"""

WILDCARD_RULES = "machine=*\n"


def _best_of(fn, *args, rounds=3):
    """(best wall seconds, result) over ``rounds`` runs -- the min is
    the standard noise-robust statistic for a throughput gate."""
    times = []
    result = None
    for __ in range(rounds):
        t0 = time.perf_counter()
        result = fn(*args)
        times.append(time.perf_counter() - t0)
    return min(times), result


def _record_bench(key, value):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = value
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _mixed_wire(n=N_EVENTS):
    """n encoded meter messages cycling through all ten Appendix-A
    formats with plausible field values."""
    from repro.net.addresses import InternetName

    codec = MessageCodec(HOSTS)
    names = [
        InternetName(HOSTS[(i % 4) + 1], 5000 + i, (i % 4) + 1) for i in range(8)
    ]
    wire = []
    for i in range(n):
        machine = (i % 4) + 1
        common = dict(machine=machine, cpu_time=i, proc_time=(i // 50) * 10)
        pid = 2000 + i % 16
        kind = i % 10
        name = names[i % 8]
        peer = names[(i + 3) % 8]
        if kind == 0:
            msg = codec.encode(
                "send", pid=pid, pc=i, sock=3, msgLength=16 * (1 + i % 64),
                destName=name, **codec.name_lengths(destName=name), **common
            )
        elif kind == 1:
            msg = codec.encode(
                "receive", pid=pid, pc=i, sock=3, msgLength=16 * (1 + i % 64),
                sourceName=name, **codec.name_lengths(sourceName=name), **common
            )
        elif kind == 2:
            msg = codec.encode("receivecall", pid=pid, pc=i, sock=3, **common)
        elif kind == 3:
            msg = codec.encode(
                "socket", pid=pid, pc=i, sock=3, domain=2 - i % 2, type=1,
                protocol=0, **common
            )
        elif kind == 4:
            msg = codec.encode(
                "dup", pid=pid, pc=i, sock=3, newSock=16 + i % 48, **common
            )
        elif kind == 5:
            msg = codec.encode("destsocket", pid=pid, pc=i, sock=3, **common)
        elif kind == 6:
            msg = codec.encode(
                "fork", pid=pid, pc=i, newPid=pid + 1 + i % 3, **common
            )
        elif kind == 7:
            msg = codec.encode(
                "accept", pid=pid, pc=i, sock=3, newSock=4, sockName=name,
                peerName=name if i % 5 == 0 else peer,
                **codec.name_lengths(sockName=name, peerName=peer), **common
            )
        elif kind == 8:
            msg = codec.encode(
                "connect", pid=pid, pc=i, sock=3, sockName=name, peerName=peer,
                **codec.name_lengths(sockName=name, peerName=peer), **common
            )
        else:
            msg = codec.encode(
                "termproc", pid=pid, pc=i, status=i % 7 - 3, **common
            )
        wire.append(msg)
    return wire


def _run_pipeline(descriptions, rules, wire):
    """The filter's per-event work: decode, select/reduce, format."""
    lines = []
    field_order = descriptions.field_order
    decode = descriptions.decode_message
    apply_rules = rules.apply
    for raw in wire:
        record = decode(raw, HOSTS)
        saved = apply_rules(record)
        if saved is None:
            continue
        lines.append(format_record(saved, field_order(record["event"])))
    return lines


def test_hotpath_50k_pipeline_speedup(benchmark):
    wire = _mixed_wire()
    text = default_descriptions_text()
    results = {"n_events": N_EVENTS}
    for label, rules_text in (("dense", DENSE_RULES), ("wildcard", WILDCARD_RULES)):
        ds_fast = parse_descriptions(text)
        ds_slow = parse_descriptions(text, compiled=False)
        rules_fast = parse_rules(rules_text)
        rules_slow = parse_rules(rules_text, compiled=False)

        slow_s, slow_lines = _best_of(_run_pipeline, ds_slow, rules_slow, wire)

        if label == "dense":
            fast_lines = benchmark.pedantic(
                _run_pipeline, args=(ds_fast, rules_fast, wire),
                rounds=3, iterations=1,
            )
            fast_s = benchmark.stats.stats.min
        else:
            fast_s, fast_lines = _best_of(_run_pipeline, ds_fast, rules_fast, wire)

        # Identical selection, reduction, and formatting.
        assert fast_lines == slow_lines
        speedup = slow_s / fast_s
        results[label] = {
            "accepted": len(fast_lines),
            "interpreted_eps": round(N_EVENTS / slow_s),
            "compiled_eps": round(N_EVENTS / fast_s),
            "speedup": round(speedup, 2),
        }
        print(
            "\n[hotpath] {0}: {1} -> {2} ev/s ({3:.2f}x), "
            "{4}/{5} accepted".format(
                label,
                results[label]["interpreted_eps"],
                results[label]["compiled_eps"],
                speedup,
                len(fast_lines),
                N_EVENTS,
            )
        )

    # The acceptance gate: >= 2x on the dense-rules run, above a floor.
    assert results["dense"]["speedup"] >= MIN_SPEEDUP
    assert results["dense"]["compiled_eps"] >= MIN_COMPILED_EPS
    _record_bench("pipeline", results)


def _frame_presliced(stream, chunk_size):
    """The pre-PR framing loop: per-message shrinking-bytes reslice."""
    messages = []
    buf = b""
    for start in range(0, len(stream), chunk_size):
        buf = buf + stream[start : start + chunk_size]
        while True:
            size = peek_size(buf)
            if size is None or (HEADER_BYTES <= size and len(buf) < size):
                break
            if size < HEADER_BYTES or size > MAX_METER_MESSAGE:
                raise AssertionError("corrupt bench stream")
            messages.append(buf[:size])
            buf = buf[size:]
    return messages


def _frame_cursor(stream, chunk_size):
    """The new framing: MeterInbox._feed over large reads."""
    inbox = MeterInbox()
    inbox.buffers[4] = b""
    messages = []
    for start in range(0, len(stream), chunk_size):
        corrupt = inbox._feed(4, stream[start : start + chunk_size], messages)
        assert not corrupt
    return messages


def test_hotpath_framing_cursor(benchmark):
    wire = _mixed_wire()
    stream = b"".join(wire)

    old_s, old = _best_of(_frame_presliced, stream, 4096)

    new = benchmark.pedantic(
        _frame_cursor, args=(stream, 65536), rounds=3, iterations=1
    )
    new_s = benchmark.stats.stats.min

    assert new == old == wire
    _record_bench(
        "framing",
        {
            "stream_bytes": len(stream),
            "presliced_4k_eps": round(N_EVENTS / old_s),
            "cursor_64k_eps": round(N_EVENTS / new_s),
            "speedup": round(old_s / new_s, 2),
        },
    )
    print(
        "\n[hotpath] framing: {0} -> {1} ev/s ({2:.2f}x)".format(
            round(N_EVENTS / old_s), round(N_EVENTS / new_s), old_s / new_s
        )
    )
    assert new_s <= old_s


N_PERTURB_SENDS = 600


def _chatty(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    for __ in range(N_PERTURB_SENDS):
        yield sys.sendto(fd, b"x" * 64, ("green", 6000))
    yield sys.exit(0)


def _run_workload(metered):
    from repro.core.cluster import Cluster

    cluster = Cluster(seed=4)
    records = []
    if metered:
        records, __ = start_collector(cluster)
        proc = metered_spawn(
            cluster, "red", _chatty, flags=mf.METERSEND | mf.M_IMMEDIATE
        )
    else:
        proc = cluster.spawn("red", _chatty)
    t0 = time.perf_counter()
    cluster.run_until_exit([proc])
    wall_s = time.perf_counter() - t0
    cluster.run(until_ms=cluster.sim.now + 50)
    return wall_s, proc.proc_time(), len(records)


def test_hotpath_perturbation(benchmark):
    base_wall, base_proc_ms, __ = _run_workload(metered=False)
    metered_wall, metered_proc_ms, received = benchmark.pedantic(
        _run_workload, args=(True,), rounds=1, iterations=1
    )
    assert received == N_PERTURB_SENDS  # lossless under immediate mode
    _record_bench(
        "perturbation",
        {
            "sends": N_PERTURB_SENDS,
            "unmetered_wall_s": round(base_wall, 4),
            "metered_wall_s": round(metered_wall, 4),
            "unmetered_proc_ms": base_proc_ms,
            "metered_proc_ms": metered_proc_ms,
            "proc_time_overhead": round(
                metered_proc_ms / base_proc_ms - 1.0, 4
            ) if base_proc_ms else None,
        },
    )
    print(
        "\n[hotpath] perturbation: {0} sends, wall {1:.3f}s -> {2:.3f}s, "
        "procTime {3} -> {4} ms".format(
            N_PERTURB_SENDS, base_wall, metered_wall,
            base_proc_ms, metered_proc_ms,
        )
    )


def _appendix_b_outputs(log_format):
    """Run the Appendix B pingpong session; return the filter output
    bytes (text log, or store segments keyed by path)."""
    from repro.core.cluster import Cluster
    from repro.core.session import MeasurementSession
    from repro.programs import install_all

    cluster = Cluster(seed=11)
    session = MeasurementSession(
        cluster, control_machine="yellow", log_format=log_format
    )
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 12")
    session.command("addprocess pp green pingpongclient red 5100 12")
    session.command("setflags pp send receive accept connect socket termproc")
    session.command("startjob pp")
    session.settle()
    if log_format == "store":
        machine = cluster.machines["blue"]
        return {
            path: bytes(machine.fs.node(path).data)
            for path in machine.fs.paths()
            if "f1.store" in path
        }
    __, text = session.find_filter_log("f1")
    return text.encode("ascii")


def test_hotpath_appendix_b_output_identical(monkeypatch):
    import repro.filtering.standard as standard

    results = {}
    for log_format in ("text", "store"):
        compiled = _appendix_b_outputs(log_format)
        with monkeypatch.context() as patch:
            patch.setattr(
                standard, "parse_rules",
                lambda text: parse_rules(text, compiled=False),
            )
            patch.setattr(
                standard, "parse_descriptions",
                lambda text: parse_descriptions(text, compiled=False),
            )
            interpreted = _appendix_b_outputs(log_format)
        assert compiled == interpreted
        results[log_format + "_identical"] = True
        if log_format == "text":
            results["text_bytes"] = len(compiled)
            assert compiled  # the session really produced a trace
        else:
            results["store_segments"] = len(compiled)
            assert compiled
    _record_bench("appendix_b", results)
    print("\n[hotpath] appendix B output byte-identical (text + store)")
