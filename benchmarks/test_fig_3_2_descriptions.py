"""Figure 3.2 -- Description of the send event.

Regenerates the event-record description file and measures
description-driven decoding (the filter's inner loop).
"""

from benchmarks.conftest import HOSTS, synthetic_send_records
from repro.filtering.descriptions import (
    default_descriptions_text,
    parse_descriptions,
)

FIGURE_3_2_SEND_LINE = (
    "SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10 "
    "destNameLen,16,4,10 destName,20,16,16"
)


def test_fig_3_2_description_file_regenerated(benchmark):
    text = benchmark(default_descriptions_text)
    lines = text.splitlines()
    assert lines[0].startswith("HEADER size machine cpuTime")
    assert FIGURE_3_2_SEND_LINE in lines
    print("\n[fig 3.2] generated description file:")
    for line in lines[:4]:
        print("   ", line)


def test_fig_3_2_description_driven_decode(benchmark):
    descriptions = parse_descriptions(default_descriptions_text())
    wire = synthetic_send_records(200)

    def decode_all():
        return [descriptions.decode_message(raw, HOSTS) for raw in wire]

    records = benchmark(decode_all)
    assert len(records) == 200
    assert records[0]["event"] == "send"
    assert records[0]["destName"].startswith("inet:")
