#!/usr/bin/env python
"""Time without a universal time base (Sections 1.1 and 4.1).

Machines get deliberately skewed clocks.  Raw meter-message timestamps
then *contradict causality* -- messages appear to be received before
they were sent.  The analysis recovers order the way the paper says:
"since a message must be sent before it may be received, the times of
sending and receiving a message can always be ordered relative to one
another.  Given these constraints, much of the global ordering can be
deduced."

Run:  python examples/clock_skew_ordering.py
"""

from repro.analysis import HappensBefore, Trace, estimate_clock_skews
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all

#: Offsets in milliseconds; green's clock runs 800 ms behind red's and
#: also drifts fast.
SKEWS = {
    "red": (500.0, 40.0),
    "green": (-300.0, -60.0),
    "blue": (0.0, 0.0),
    "yellow": (120.0, 10.0),
}


def main():
    cluster = Cluster(seed=13, clock_skew=SKEWS)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)

    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 8")
    session.command("addprocess pp green pingpongclient red 5100 8")
    session.command("setflags pp send receive accept connect")
    session.command("startjob pp")
    session.settle()

    trace = Trace(session.read_trace("f1"))
    hb = HappensBefore(trace)

    print("== raw timestamps vs causality ==")
    violations = hb.violates_causality()
    print(
        "{0} of {1} matched message pairs have the receive time-stamped "
        "BEFORE the send (impossible; pure clock skew)".format(
            len(violations), len(hb.matcher.pairs)
        )
    )
    for pair in violations[:3]:
        print(
            "  send at local t={0} on machine {1} -> receive at local "
            "t={2} on machine {3}".format(
                pair.send.local_time,
                pair.send.machine,
                pair.recv.local_time,
                pair.recv.machine,
            )
        )

    print()
    print("== recovered ordering ==")
    print(
        "fraction of cross-machine event pairs ordered by deduction: "
        "{0:.2f}".format(hb.ordered_fraction())
    )
    skews = estimate_clock_skews(trace, hb.matcher)
    print("estimated relative clock offsets (ms):", {
        machine: round(offset, 1) for machine, offset in skews.items()
    })
    print("true offsets (ms): red-green = {0:.0f}".format(
        SKEWS["red"][0] - SKEWS["green"][0]
    ))

    print()
    print("== one consistent global order (first 10 events) ==")
    for event in hb.consistent_global_order()[:10]:
        print(
            "  {0:12s} pid {1} machine {2} local t={3}".format(
                event.event, event.pid, event.machine, event.local_time
            )
        )

    print()
    print("== how the engine sees it: vector clocks ==")
    print("processes (one clock component each):", trace.processes())
    final = hb.consistent_global_order()[-1]
    print(
        "clock of the final event {0!r}: {1} -- component i counts the "
        "events of process i known to precede it".format(
            final, hb.vector_clock(final)
        )
    )


if __name__ == "__main__":
    main()
