"""Scalability -- one filter under growing computations (Section 3.4:
"when large computations are being metered").

Sweeps the number of metered processes feeding a single filter and
reports events collected and filter CPU: the load curve that motivates
putting the filter on a disjoint machine.
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.analysis import Trace

MACHINES = ("red", "green", "yellow")


def _run(nprocs, seed=9):
    session = fresh_session(seed=seed)
    session.command("filter f1 blue")
    session.command("newjob j")
    for i in range(nprocs):
        machine = MACHINES[i % len(MACHINES)]
        session.command(
            "addprocess j {0} dgramproducer blue {1} 20 64 2".format(
                machine, 7000 + i
            )
        )
    session.command("setflags j send socket termproc immediate")
    session.command("startjob j")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    filter_cpu = sum(
        p.cpu_ms
        for p in session.cluster.machine("blue").procs.values()
        if p.program_name == "filter"
    )
    return len(trace), len(trace.processes()), filter_cpu


@pytest.mark.parametrize("nprocs", [1, 3, 6, 9])
def test_scalability_processes_per_filter(benchmark, nprocs):
    events, processes, filter_cpu = benchmark.pedantic(
        _run, args=(nprocs,), rounds=1, iterations=1
    )
    assert processes == nprocs
    assert events == nprocs * 22  # socket + 20 sends + termproc each
    print(
        "\n[scale] {0} metered processes -> {1} events, filter CPU "
        "{2:6.2f} ms".format(nprocs, events, filter_cpu)
    )


def test_scalability_no_event_loss_at_peak(benchmark):
    events, processes, __ = benchmark.pedantic(
        _run, args=(9,), rounds=1, iterations=1
    )
    assert events == 9 * 22  # the meter stream never drops under load
