"""Injector idempotence: redundant faults are logged no-ops.

A chaos schedule routinely asks for impossible transitions -- crash a
crashed machine, heal with no partition up, restart a daemon that never
died.  Each must be absorbed as an explicit ``no-op:`` log entry, never
an exception or a double-application, so shrunk subsequences of a
schedule always remain runnable.
"""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan


def _run(plan, session=None, until_ms=400.0):
    cluster = Cluster(seed=11)
    if session:
        session = MeasurementSession(cluster, control_machine="yellow")
    injector = FaultInjector(cluster, plan, session=session).arm()
    cluster.run(until_ms=until_ms)
    return injector.describe_applied()


def _noops(lines):
    return [line for line in lines if "no-op:" in line]


def test_crashing_a_crashed_machine_is_a_noop():
    plan = FaultPlan().crash(10.0, "red").crash(20.0, "red")
    lines = _run(plan)
    assert len(lines) == 2
    assert "no-op: already crashed" in lines[1]


def test_rebooting_a_running_machine_is_a_noop():
    lines = _run(FaultPlan().reboot(10.0, "red"))
    assert "no-op: not crashed" in lines[0]


def test_healing_without_a_partition_is_a_noop():
    lines = _run(FaultPlan().heal(10.0))
    assert "no-op: no partition active" in lines[0]


def test_double_heal_after_one_partition():
    plan = (
        FaultPlan()
        .partition(10.0, [["red"], ["green", "blue", "yellow"]])
        .heal(20.0)
        .heal(30.0)
    )
    lines = _run(plan)
    assert _noops(lines) == [lines[2]]


def test_killing_a_process_that_never_ran_is_a_noop():
    lines = _run(FaultPlan().kill_process(10.0, "green", "worker"))
    assert "no-op: no live 'worker' process" in lines[0]


def test_killing_on_a_crashed_machine_is_a_noop():
    plan = (
        FaultPlan().crash(10.0, "green").kill_process(20.0, "green", "worker")
    )
    lines = _run(plan)
    assert "no-op: machine crashed" in lines[1]


def test_restarting_a_running_daemon_is_a_noop():
    plan = FaultPlan().restart_daemon(50.0, "green")
    lines = _run(plan, session=True)
    assert "no-op: meterdaemon already running" in lines[0]


def test_restarting_a_live_controller_is_a_noop():
    plan = FaultPlan().restart_controller(50.0)
    lines = _run(plan, session=True)
    assert "no-op: controller alive" in lines[0]


def test_killing_a_dead_controller_is_absorbed():
    plan = FaultPlan().kill_controller(50.0).kill_controller(80.0)
    lines = _run(plan, session=True)
    assert len(lines) == 2
    assert "controller already dead" in lines[1]


def test_noop_runs_stay_deterministic():
    plan = (
        FaultPlan()
        .crash(10.0, "red")
        .crash(20.0, "red")
        .heal(30.0)
        .reboot(40.0, "red")
        .reboot(50.0, "red")
    )
    assert _run(plan) == _run(plan)
