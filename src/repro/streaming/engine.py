"""The streaming engine: every online analysis composed behind one
``update(record)`` fold.

The engine consumes exactly the records the filter *commits* -- after
batch-marker dedup, in log-append order -- so replaying the finished
log through a fresh engine must reproduce its state bit for bit.  That
replay is the post-mortem twin (:mod:`repro.streaming.twins`), and the
equality is this subsystem's correctness oracle.

Digests are order-independent (a commutative sum of scrambled CRCs):
the online clock fold resolves events in dependency order, the batch
pass in Kahn order, and both must hash to the same value.
"""

import json
import zlib

from repro.streaming.clocks import OnlineVectorClocks
from repro.streaming.matching import OnlineMatcher
from repro.streaming.queries import make_query
from repro.streaming.windows import WindowedStats

#: Default sliding-window width for windowed aggregates.
DEFAULT_WINDOW_MS = 500.0

#: Firings kept for polling; older ones fall off (the poll cursor
#: reports the latest sequence number so losses are detectable).
FIRING_BUFFER = 4096

#: Resolved clocks kept for O(1) happens-before queries.
CLOCK_HISTORY = 4096

#: How often (in records) in-flight state is sampled for ``peak_state``.
_STATE_SAMPLE = 256

_DIGEST_MOD = 1 << 64


def digest_add(acc, item):
    """Fold ``item`` into an order-independent 64-bit digest.

    Commutative (a modular sum), so the emission order of clocks and
    pairs -- which legitimately differs between the online fold and the
    batch pass -- cannot affect the result."""
    crc = zlib.crc32(repr(item).encode("utf-8"))
    return (acc + (crc + 1) * 2654435761) % _DIGEST_MOD


class StreamEvent:
    """One committed record, decorated for the folds."""

    __slots__ = (
        "record",
        "index",
        "machine",
        "pid",
        "proc_seq",
        "event",
        "time",
        "ptime",
        "sock",
        "length",
        "dest",
        "source",
        "sock_name",
        "peer_name",
        "new_sock",
        "node",
        "in_matching",
        "matched",
    )

    def __init__(self, record, index, proc_seq):
        self.record = record
        self.index = index
        self.machine = record.get("machine")
        self.pid = record.get("pid")
        self.proc_seq = proc_seq
        self.event = record.get("event")
        self.time = record.get("cpuTime", 0)
        self.ptime = record.get("procTime", 0)
        self.sock = record.get("sock")
        self.length = record.get("msgLength", 0) or 0
        self.dest = record.get("destName") or None
        self.source = record.get("sourceName") or None
        self.sock_name = record.get("sockName") or None
        self.peer_name = record.get("peerName") or None
        self.new_sock = record.get("newSock")
        self.node = None
        self.in_matching = False
        self.matched = False

    @property
    def process(self):
        return (self.machine, self.pid)

    def __repr__(self):
        return "StreamEvent({0}, {1}@m{2}, t={3})".format(
            self.event, self.pid, self.machine, self.time
        )


class StreamEngine:
    """Live vector clocks + matching + windowed stats + queries."""

    def __init__(self, window_ms=DEFAULT_WINDOW_MS,
                 clock_history=CLOCK_HISTORY):
        self.window_ms = float(window_ms)
        self.clocks = OnlineVectorClocks(
            on_resolve=self._clock_resolved, history=clock_history
        )
        self.matcher = OnlineMatcher(
            on_pair=self._paired, on_recv_done=self._recv_done
        )
        self.windows = WindowedStats(self.window_ms)
        self.queries = {}
        self._next_qid = 1
        self.firings = []
        self.firing_seq = 0
        self.on_firing = None  # optional callback, e.g. live printing
        self.records = 0
        self.watermark = 0.0
        self._proc_seq = {}
        self.clock_digest = 0
        self.pairs_digest = 0
        self.peak_state = 0
        self._last_advance = 0.0
        self.finalized = False

    # -- the fold ------------------------------------------------------

    def update(self, record):
        """Consume one committed record."""
        process = (record.get("machine"), record.get("pid"))
        proc_seq = self._proc_seq.get(process, 0)
        self._proc_seq[process] = proc_seq + 1
        event = StreamEvent(record, self.records, proc_seq)
        self.records += 1
        if event.time > self.watermark:
            self.watermark = event.time
        # A receive's clock waits for the matcher to declare its send
        # dependencies complete; everything else only waits for program
        # order.
        self.clocks.add(event, defer=(event.event == "receive"))
        self.matcher.update(event)
        self.clocks.drain()
        self.windows.update(event, self.watermark)
        if self.queries:
            fire = self._fire
            for query in list(self.queries.values()):
                query.on_event(event, self.watermark, fire)
            if (
                self.watermark - self._last_advance >= 1.0
                or self.records % 128 == 0
            ):
                self._advance()
        if self.records % _STATE_SAMPLE == 0:
            size = self.state_size()
            if size > self.peak_state:
                self.peak_state = size
        return event

    def finalize(self, advance_queries=False):
        """End of stream: settle open matching/clock state.  The live
        filter never calls this (its stream has no end); the offline
        twin and the CLI verbs do."""
        if self.finalized:
            return self
        self.matcher.finalize()
        self.clocks.drain()
        self.clocks.finalize()
        if advance_queries:
            self._advance()
        self.windows.evict(self.watermark)
        size = self.state_size()
        if size > self.peak_state:
            self.peak_state = size
        self.finalized = True
        return self

    # -- fold plumbing -------------------------------------------------

    def _clock_resolved(self, event, clock):
        sparse = tuple(sorted(clock.items()))
        self.clock_digest = digest_add(
            self.clock_digest,
            ("clk", event.machine, event.pid, event.proc_seq, sparse),
        )

    def _paired(self, send, recv, nbytes):
        # Matching can resolve *inside* the send's own update() call
        # (its receive committed first); queries see that send only
        # after matcher.update returns, so the matched flag -- not the
        # on_pair callback order -- is what tells them it never was
        # undelivered.
        send.matched = True
        recv.matched = True
        if send.node is not None and recv.node is not None:
            self.clocks.add_dep(recv.node, send.node)
        self.pairs_digest = digest_add(
            self.pairs_digest,
            (
                "pair",
                send.machine,
                send.pid,
                send.proc_seq,
                recv.machine,
                recv.pid,
                recv.proc_seq,
                nbytes,
            ),
        )
        self.windows.on_pair(send, recv, nbytes, self.watermark)
        if self.queries:
            fire = self._fire
            for query in list(self.queries.values()):
                query.on_pair(send, recv, self.watermark, fire)

    def _recv_done(self, recv):
        if recv.node is not None:
            self.clocks.close(recv.node)

    def _advance(self):
        fire = self._fire
        for query in list(self.queries.values()):
            query.advance(self.watermark, fire)
        self._last_advance = self.watermark

    def _fire(self, query, details):
        self.firing_seq += 1
        firing = {
            "seq": self.firing_seq,
            "id": query.qid,
            "kind": query.kind,
            "at": round(self.watermark, 3),
        }
        firing.update(details)
        self.firings.append(firing)
        if len(self.firings) > FIRING_BUFFER:
            del self.firings[: len(self.firings) - FIRING_BUFFER]
        if self.on_firing is not None:
            self.on_firing(firing)

    # -- continuous queries --------------------------------------------

    def add_query(self, spec, qid=None):
        """Register a continuous query; returns its id.  Re-adding an
        id replaces the query (how the controller re-subscribes after a
        filter relaunch)."""
        if qid is None:
            qid = self._next_qid
        qid = int(qid)
        self._next_qid = max(self._next_qid, qid + 1)
        self.queries[qid] = make_query(qid, spec)
        return qid

    def remove_query(self, qid):
        return self.queries.pop(int(qid), None) is not None

    def poll(self, since=0):
        since = int(since)
        return {
            "firings": [f for f in self.firings if f["seq"] > since],
            "seq": self.firing_seq,
        }

    # -- answers -------------------------------------------------------

    def happens_before(self, a, b):
        """a, b: (machine, pid, proc_seq).  True/False, or None when
        the needed clock is unresolved or already evicted."""
        return self.clocks.happens_before(tuple(a), tuple(b))

    def state_size(self):
        """In-flight state that *could* grow without eviction; the
        bound the benchmark holds against trace length."""
        size = self.matcher.state_size()
        size += self.clocks.state_size()
        size += self.windows.state_size()
        for query in self.queries.values():
            size += query.state_size()
        return size

    def snapshot(self):
        snap = self.windows.snapshot(self.watermark)
        snap["records"] = self.records
        snap["watermark"] = round(self.watermark, 3)
        snap["state"] = {
            "size": self.state_size(),
            "peak": self.peak_state,
            "clocks_pending": self.clocks.pending,
            "outstanding_sends": len(self.matcher.pending_send_events()),
        }
        snap["queries"] = [q.describe() for q in self.queries.values()]
        snap["firings_buffered"] = len(self.firings)
        return snap

    def digest(self):
        """The oracle surface: order-independent digests plus the
        cumulative counters, all diffable against the post-mortem
        twins."""
        return {
            "records": self.records,
            "clocks_resolved": self.clocks.resolved,
            "clock_digest": self.clock_digest,
            "pairs_digest": self.pairs_digest,
            "totals": self.windows.totals(),
            "per_process": self.windows.per_process_dict(),
            "peak_state": self.peak_state,
            "state_size": self.state_size(),
        }


def serve_query(engine, request):
    """Execute one live-query request against ``engine``.

    The request is the decoded JSON body of a STREAM_QUERY meter frame
    (see :mod:`repro.streaming.protocol`); the reply is always a
    JSON-able dict with a ``status`` key."""
    if not isinstance(request, dict):
        return {"status": "error", "reason": "malformed query"}
    op = request.get("op")
    try:
        if op == "stats":
            return {"status": "ok", "result": engine.snapshot()}
        if op == "digest":
            return {"status": "ok", "result": engine.digest()}
        if op == "add":
            qid = engine.add_query(
                request.get("spec") or {}, qid=request.get("id")
            )
            return {"status": "ok", "id": qid}
        if op == "remove":
            removed = engine.remove_query(request.get("id", 0))
            return {"status": "ok", "removed": removed}
        if op == "poll":
            result = engine.poll(request.get("since", 0))
            return {"status": "ok", "firings": result["firings"],
                    "seq": result["seq"]}
        if op == "list":
            return {
                "status": "ok",
                "queries": [q.describe() for q in engine.queries.values()],
            }
        if op == "hb":
            verdict = engine.happens_before(
                request.get("a") or (), request.get("b") or ()
            )
            return {"status": "ok", "happens_before": verdict}
    except (ValueError, TypeError) as exc:
        return {"status": "error", "reason": str(exc)}
    return {"status": "error", "reason": "unknown op {0!r}".format(op)}


# -- human-readable rendering (controller and CLI) ---------------------


def format_snapshot(snap):
    """Render a snapshot as the controller's `stats` output lines."""
    totals = snap.get("totals", {})
    window = snap.get("window", {})
    pairs = window.get("pairs", {})
    state = snap.get("state", {})
    lines = [
        "live statistics at t={0:.0f}ms ({1} records)".format(
            snap.get("watermark", 0.0), snap.get("records", 0)
        ),
        "  totals: {events} events, {processes} processes on "
        "{machines} machines, {messages_sent} msgs / {bytes_sent} B "
        "sent, {matched_pairs} pairs matched".format(
            events=totals.get("events", 0),
            processes=totals.get("processes", 0),
            machines=totals.get("machines", 0),
            messages_sent=totals.get("messages_sent", 0),
            bytes_sent=totals.get("bytes_sent", 0),
            matched_pairs=totals.get("matched_pairs", 0),
        ),
        "  window {0:.0f}ms: {1} events ({2}/s), {3} active processes, "
        "{4} msgs / {5} B sent".format(
            window.get("window_ms", 0.0),
            window.get("events", 0),
            window.get("rate_per_s", 0.0),
            window.get("active_processes", 0),
            window.get("messages_sent", 0),
            window.get("bytes_sent", 0),
        ),
        "  window pairs: {0} matched, {1} B, lag mean {2}ms max "
        "{3}ms".format(
            pairs.get("count", 0),
            pairs.get("bytes", 0),
            pairs.get("lag_mean_ms", 0.0),
            pairs.get("lag_max_ms", 0.0),
        ),
    ]
    rates = window.get("pair_rates") or {}
    for key in sorted(rates):
        rate = rates[key]
        lines.append(
            "    {0}: {1} msgs, {2} B in window".format(
                key, rate.get("messages", 0), rate.get("bytes", 0)
            )
        )
    lines.append(
        "  state: {0} in flight (peak {1}), {2} clocks pending, "
        "{3} sends outstanding".format(
            state.get("size", 0),
            state.get("peak", 0),
            state.get("clocks_pending", 0),
            state.get("outstanding_sends", 0),
        )
    )
    queries = snap.get("queries") or []
    if queries:
        lines.append(
            "  queries: "
            + ", ".join(
                "W{0} ({1})".format(q.get("id"), q.get("kind"))
                for q in queries
            )
            + "; {0} firing(s) buffered".format(
                snap.get("firings_buffered", 0)
            )
        )
    return lines


def format_firing(firing):
    """One firing as a single report line."""
    extra = {
        key: value
        for key, value in firing.items()
        if key not in ("seq", "id", "kind", "at")
    }
    detail = json.dumps(extra, sort_keys=True)
    return "WATCH W{0} [{1}] at t={2:.0f}ms: {3}".format(
        firing.get("id"), firing.get("kind"), firing.get("at", 0.0), detail
    )
