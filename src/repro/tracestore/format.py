"""The on-disk trace-store format: segments, frames, index footers.

A *store* is a family of fixed-capacity segment files sharing a base
path::

    /usr/tmp/f1.store.seg00000      (sealed: footer + trailer present)
    /usr/tmp/f1.store.seg00001      (sealed)
    /usr/tmp/f1.store.seg00002      (open tail: recovered by scanning)

Each segment is::

    +--------+----------------------------+--------+---------+
    | header |  record frames (appended)  | footer | trailer |
    +--------+----------------------------+--------+---------+

- header (8 bytes): magic "RTS1", version u16, flags u16;
- frame: payload length u32, discard mask u32, payload -- the payload
  is the record's Appendix-A wire message, byte for byte;
- footer: a JSON index of the segment (record count, min/max header
  cpuTime, per-machine / per-(machine,pid) / per-event-type record
  counts, per-event first/last byte offsets, the host-name map used to
  display NAME fields);
- trailer (12 bytes): footer length u32, footer crc32 u32, magic
  "RTSX".

Only sealed segments carry a footer; a segment interrupted by a crash
simply ends mid-frame and is recovered by scanning frames until the
bytes run out (record framing is self-delimiting, so everything the
writer flushed survives).  The footer lets a reader skip a whole
segment when a predicate cannot match any record in it -- that is the
predicate pushdown the streaming analyses rely on.

The discard mask is a bitmap over :func:`repro.metering.messages.
record_fields`: bit *i* set means field *i* was discarded by a
reduction rule (Figure 3.4's ``#`` prefix).  Masked field bytes are
zeroed in the stored payload and the field is dropped again on decode,
so a store round-trips exactly what the text log would have kept.
"""

import json
import struct
import zlib

from repro.metering.messages import HEADER_BYTES, field_layout, record_fields

SEGMENT_MAGIC = b"RTS1"
TRAILER_MAGIC = b"RTSX"
FORMAT_VERSION = 1

_HEADER_STRUCT = struct.Struct(">4sHH")
SEGMENT_HEADER_BYTES = _HEADER_STRUCT.size  # 8
_FRAME_STRUCT = struct.Struct(">II")
FRAME_OVERHEAD_BYTES = _FRAME_STRUCT.size  # 8
_TRAILER_STRUCT = struct.Struct(">II4s")
TRAILER_BYTES = _TRAILER_STRUCT.size  # 12

#: Default segment capacity (data bytes before the segment is sealed).
DEFAULT_SEGMENT_BYTES = 64 * 1024

#: Wire offsets of the maskable header fields (size and traceType are
#: never zeroed: they carry the framing and the record's identity).
_MASKABLE_HEADER_OFFSETS = {
    "machine": (4, 2),
    "cpuTime": (8, 4),
    "procTime": (16, 4),
}


def segment_header():
    return _HEADER_STRUCT.pack(SEGMENT_MAGIC, FORMAT_VERSION, 0)


def parse_segment_header(data):
    """Validate a segment's first bytes; raises ValueError."""
    if len(data) < SEGMENT_HEADER_BYTES:
        raise ValueError("short segment: %d bytes" % len(data))
    magic, version, __ = _HEADER_STRUCT.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        raise ValueError("not a trace-store segment (magic %r)" % magic)
    if version != FORMAT_VERSION:
        raise ValueError("unsupported segment version %d" % version)
    return version


# ----------------------------------------------------------------------
# Record frames
# ----------------------------------------------------------------------


def encode_frame(payload, mask=0):
    return _FRAME_STRUCT.pack(len(payload), mask) + payload


def iter_frames(data, start, end):
    """Yield (offset, mask, payload) for each complete frame in
    ``data[start:end]``; a truncated trailing frame (crash mid-write)
    ends the iteration instead of raising."""
    offset = start
    while offset + FRAME_OVERHEAD_BYTES <= end:
        length, mask = _FRAME_STRUCT.unpack_from(data, offset)
        body_start = offset + FRAME_OVERHEAD_BYTES
        if body_start + length > end:
            break  # torn tail frame: the writer died mid-append
        yield offset, mask, bytes(data[body_start : body_start + length])
        offset = body_start + length


# ----------------------------------------------------------------------
# Discard masks
# ----------------------------------------------------------------------


def discard_mask(event, missing_fields):
    """Bitmap over record_fields(event) marking the discarded ones."""
    mask = 0
    for i, name in enumerate(record_fields(event)):
        if name in missing_fields:
            mask |= 1 << i
    return mask


def masked_fields(event, mask):
    """The field names a mask discards."""
    if not mask:
        return []
    return [
        name
        for i, name in enumerate(record_fields(event))
        if mask & (1 << i)
    ]


def zero_masked_bytes(raw, event, mask):
    """Zero the wire bytes of every masked field (reduction really does
    remove the data, not just the key).  size and traceType survive so
    the payload stays a decodable meter message."""
    if not mask:
        return raw
    buf = bytearray(raw)
    for i, name in enumerate(record_fields(event)):
        if not mask & (1 << i):
            continue
        span = _MASKABLE_HEADER_OFFSETS.get(name)
        if span is not None:
            offset, length = span
            buf[offset : offset + length] = b"\x00" * length
            continue
        for field_name, body_offset, length, __ in field_layout(event):
            if field_name == name:
                offset = HEADER_BYTES + body_offset
                buf[offset : offset + length] = b"\x00" * length
                break
    return bytes(buf)


# ----------------------------------------------------------------------
# Footers
# ----------------------------------------------------------------------


class SegmentStats:
    """Accumulates the footer index while a segment is written."""

    def __init__(self, host_names=None):
        self.records = 0
        self.t_min = None
        self.t_max = None
        self.machines = {}
        self.pids = {}
        self.events = {}
        self.event_offsets = {}
        self.host_names = dict(host_names or {})

    def add(self, event, machine, pid, cpu_time, offset):
        self.records += 1
        if self.t_min is None or cpu_time < self.t_min:
            self.t_min = cpu_time
        if self.t_max is None or cpu_time > self.t_max:
            self.t_max = cpu_time
        self.machines[machine] = self.machines.get(machine, 0) + 1
        key = "{0}:{1}".format(machine, pid)
        self.pids[key] = self.pids.get(key, 0) + 1
        self.events[event] = self.events.get(event, 0) + 1
        span = self.event_offsets.get(event)
        if span is None:
            self.event_offsets[event] = [offset, offset]
        else:
            span[1] = offset

    def footer(self, data_start, data_end):
        return {
            "version": FORMAT_VERSION,
            "records": self.records,
            "data_start": data_start,
            "data_end": data_end,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "machines": {str(m): n for m, n in self.machines.items()},
            "pids": self.pids,
            "events": self.events,
            "event_offsets": self.event_offsets,
            "hosts": {str(i): name for i, name in self.host_names.items()},
        }


def encode_footer(footer):
    """Footer JSON plus the fixed trailer that locates it from EOF."""
    blob = json.dumps(footer, sort_keys=True).encode("ascii")
    trailer = _TRAILER_STRUCT.pack(
        len(blob), zlib.crc32(blob) & 0xFFFFFFFF, TRAILER_MAGIC
    )
    return blob + trailer


def parse_footer(data):
    """Extract the footer of a sealed segment; None when the segment is
    unsealed (no trailer) or the trailer/footer bytes are damaged."""
    if len(data) < SEGMENT_HEADER_BYTES + TRAILER_BYTES:
        return None
    length, crc, magic = _TRAILER_STRUCT.unpack_from(data, len(data) - TRAILER_BYTES)
    if magic != TRAILER_MAGIC:
        return None
    start = len(data) - TRAILER_BYTES - length
    if start < SEGMENT_HEADER_BYTES:
        return None
    blob = bytes(data[start : start + length])
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        return None
    try:
        footer = json.loads(blob.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        return None
    if footer.get("version") != FORMAT_VERSION:
        return None
    return footer


def footer_matches(footer, machines=None, pids=None, events=None,
                   t_min=None, t_max=None):
    """Can any record in this sealed segment satisfy the predicate?
    False means the whole segment is safely skippable (pushdown)."""
    if footer["records"] == 0:
        return False
    if t_min is not None and footer["t_max"] is not None and footer["t_max"] < t_min:
        return False
    if t_max is not None and footer["t_min"] is not None and footer["t_min"] > t_max:
        return False
    if machines is not None:
        if not any(str(m) in footer["machines"] for m in machines):
            return False
    if pids is not None:
        keys = {"{0}:{1}".format(m, p) for m, p in pids}
        if not keys & set(footer["pids"]):
            return False
    if events is not None:
        if not any(e in footer["events"] for e in events):
            return False
    return True
