"""Builders for synthetic traces (no simulation needed) and a helper to
run a live workload and return its analyzed trace."""

from repro.analysis.trace import Trace

_TYPE = {"send": 1, "receive": 2, "receivecall": 3, "socket": 4, "dup": 5,
         "destsocket": 6, "fork": 7, "accept": 8, "connect": 9, "termproc": 10}


class TraceBuilder:
    """Compose trace records by hand for analysis unit tests."""

    def __init__(self):
        self.records = []

    def _base(self, event, machine, pid, t, **fields):
        record = {
            "event": event,
            "size": 60,
            "machine": machine,
            "cpuTime": t,
            "procTime": fields.pop("procTime", 0),
            "traceType": _TYPE[event],
            "pid": pid,
            "pc": len(self.records),
        }
        record.update(fields)
        self.records.append(record)
        return self

    def connect(self, machine, pid, t, sock, sock_name, peer_name):
        return self._base(
            "connect", machine, pid, t, sock=sock,
            sockName=sock_name, peerName=peer_name,
            sockNameLen=8, peerNameLen=8,
        )

    def accept(self, machine, pid, t, sock, new_sock, sock_name, peer_name):
        return self._base(
            "accept", machine, pid, t, sock=sock, newSock=new_sock,
            sockName=sock_name, peerName=peer_name,
            sockNameLen=8, peerNameLen=8,
        )

    def send(self, machine, pid, t, sock, nbytes, dest="", **kw):
        return self._base(
            "send", machine, pid, t, sock=sock, msgLength=nbytes,
            destName=dest, destNameLen=8 if dest else 0, **kw
        )

    def receive(self, machine, pid, t, sock, nbytes, source="", **kw):
        return self._base(
            "receive", machine, pid, t, sock=sock, msgLength=nbytes,
            sourceName=source, sourceNameLen=8 if source else 0, **kw
        )

    def fork(self, machine, pid, t, new_pid):
        return self._base("fork", machine, pid, t, newPid=new_pid)

    def termproc(self, machine, pid, t, status=0, **kw):
        return self._base("termproc", machine, pid, t, status=status, **kw)

    def build(self):
        return Trace(list(self.records))


def two_process_stream_trace():
    """Client (machine 1, pid 10) connects to server (machine 2, pid
    20), sends 100 bytes, gets 50 back."""
    b = TraceBuilder()
    client_name, server_name = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 100, sock=400, sock_name=client_name, peer_name=server_name)
    b.accept(2, 20, 101, sock=500, new_sock=510, sock_name=server_name, peer_name=client_name)
    b.send(1, 10, 102, sock=400, nbytes=100)
    b.receive(2, 20, 105, sock=510, nbytes=100, source=client_name)
    b.send(2, 20, 106, sock=510, nbytes=50)
    b.receive(1, 10, 109, sock=400, nbytes=50, source=server_name)
    return b.build()
