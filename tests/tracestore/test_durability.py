"""Durability: v2 CRC frames, salvage reads, fsck, and v1 compat."""

import pytest

from repro.metering.messages import MessageCodec
from repro.net.addresses import InternetName
from repro.tracestore import (
    FORMAT_VERSION,
    FORMAT_VERSION_V1,
    BadSegmentHeaderError,
    CorruptSegmentError,
    StoreError,
    StoreReader,
    StoreWriter,
    collect_ops,
    fsck_store,
    repair_store,
)
from repro.tracestore import format as sformat
from repro.tracestore.errors import CorruptFrameError
from repro.tracestore.reader import (
    CORRUPT_FRAME,
    FOREIGN,
    SEALED_CLEAN,
    TORN_TAIL,
    Segment,
)

HOSTS = {1: "red", 2: "green", 3: "blue"}


def _codec():
    return MessageCodec(HOSTS)


def _wire(codec, n, t0=0):
    out = []
    for i in range(n):
        machine = (i % 3) + 1
        dest = InternetName(HOSTS[machine], 6000 + i % 4, machine)
        out.append(
            codec.encode(
                "send",
                machine=machine,
                cpu_time=t0 + i * 5,
                proc_time=10,
                pid=100 + i % 2,
                pc=i,
                sock=4,
                msgLength=32 * (1 + i % 3),
                destName=dest,
                **codec.name_lengths(destName=dest)
            )
        )
    return out


def _store_from(wire, **writer_kw):
    writer_kw.setdefault("host_names", HOSTS)
    writer = StoreWriter("/t/s.store", **writer_kw)
    sink = {}
    for raw in wire:
        writer.append(raw)
    writer.close()
    collect_ops(sink, writer)
    return {path: bytes(data) for path, data in sink.items()}, writer


def _flip_data_byte(store, path, xor=0x40, at=None):
    """Flip a byte inside the sealed data region of one segment."""
    data = bytearray(store[path])
    footer = sformat.parse_footer(data)
    offset = at if at is not None else (footer["data_start"] + footer["data_end"]) // 2
    data[offset] ^= xor
    out = dict(store)
    out[path] = bytes(data)
    return out


# ----------------------------------------------------------------------
# Format versions
# ----------------------------------------------------------------------


def test_writer_defaults_to_v2_with_per_frame_crc():
    codec = _codec()
    store, writer = _store_from(_wire(codec, 6))
    assert writer.version == FORMAT_VERSION
    (data,) = store.values()
    assert sformat.parse_segment_header(data) == FORMAT_VERSION
    reader = StoreReader.from_bytes(store)
    assert reader.segments[0].version == FORMAT_VERSION
    assert reader.records() == [codec.decode(raw) for raw in _wire(codec, 6)]


def test_v1_store_still_reads_record_for_record():
    codec = _codec()
    wire = _wire(codec, 12)
    v1_store, writer = _store_from(wire, version=FORMAT_VERSION_V1)
    assert writer.version == FORMAT_VERSION_V1
    (data,) = v1_store.values()
    assert sformat.parse_segment_header(data) == FORMAT_VERSION_V1
    reader = StoreReader.from_bytes(v1_store)
    assert reader.records() == [codec.decode(raw) for raw in wire]
    assert reader.last_stats.loss_free()
    # v2 spends exactly 4 extra bytes (the CRC) per frame.
    v2_store, __ = _store_from(wire)
    v1_size = sum(len(d) for d in v1_store.values())
    v2_size = sum(len(d) for d in v2_store.values())
    assert v2_size - v1_size >= 4 * len(wire)


def test_unsupported_version_rejected_by_writer_and_reader():
    with pytest.raises(ValueError):
        StoreWriter("/t/s.store", version=3)
    header = sformat.segment_header(FORMAT_VERSION)
    bad = header[:4] + b"\x00\x09" + header[6:]  # version field = 9
    with pytest.raises(BadSegmentHeaderError):
        sformat.parse_segment_header(bad + b"rest")


# ----------------------------------------------------------------------
# Bad-header segments: skipped and counted, never fatal
# ----------------------------------------------------------------------


def test_bad_header_segment_skipped_with_loss_accounting():
    codec = _codec()
    wire = _wire(codec, 30)
    store, writer = _store_from(wire, segment_bytes=600)
    assert writer.segments_sealed >= 3
    first = sorted(store)[0]
    broken = dict(store)
    broken[first] = b"\x00\x00" + broken[first][2:]  # wrecked magic
    reader = StoreReader.from_bytes(broken)
    records = reader.records()
    stats = reader.last_stats
    assert stats.segments_bad_header == 1
    assert not stats.loss_free()
    assert stats.segment_errors and stats.segment_errors[0][0] == first
    # Every surviving record comes from the intact segments, in order.
    baseline = [codec.decode(raw) for raw in wire]
    assert records == baseline[len(baseline) - len(records):]
    assert reader.record_count() == len(records)


def test_foreign_file_flagged_not_parsed():
    segment = Segment("/t/x", b"GIF89a not a segment at all")
    assert not segment.valid
    report = segment.verify()
    assert report["status"] == FOREIGN
    assert report["quarantined_bytes"] == len(b"GIF89a not a segment at all")
    assert list(segment.iter_frames()) == []


# ----------------------------------------------------------------------
# Strict vs salvage reads of a corrupted data region
# ----------------------------------------------------------------------


def test_strict_scan_raises_typed_error_on_v2_bit_flip():
    codec = _codec()
    store, __ = _store_from(_wire(codec, 10))
    (path,) = store
    damaged = _flip_data_byte(store, path)
    reader = StoreReader.from_bytes(damaged)
    with pytest.raises(CorruptSegmentError) as exc:
        reader.records()
    # The hierarchy keeps old except-ValueError handlers working.
    assert isinstance(exc.value, StoreError)
    assert isinstance(exc.value, ValueError)
    assert exc.value.path == path


def test_salvage_scan_loses_exactly_the_damaged_frame():
    codec = _codec()
    wire = _wire(codec, 10)
    store, __ = _store_from(wire)
    (path,) = store
    damaged = _flip_data_byte(store, path)
    reader = StoreReader.from_bytes(damaged)
    records = reader.records(salvage=True)
    stats = reader.last_stats
    baseline = [codec.decode(raw) for raw in wire]
    assert len(records) == len(baseline) - 1
    assert all(record in baseline for record in records)
    assert stats.frames_corrupt == 1
    assert stats.bytes_quarantined > 0
    assert stats.records_salvaged == len(records)
    assert not stats.loss_free()


def test_torn_tail_is_expected_loss_not_corruption():
    codec = _codec()
    wire = _wire(codec, 8)
    writer = StoreWriter("/t/s.store", host_names=HOSTS, flush_bytes=1)
    sink = {}
    for raw in wire:
        writer.append(raw)
    collect_ops(sink, writer)  # crash: no close(), no footer
    (path,) = sink
    torn = {path: bytes(sink[path][:-5])}  # medium lost the last bytes
    reader = StoreReader.from_bytes(torn, host_names=HOSTS)
    records = reader.records()
    assert records == [codec.decode(raw) for raw in wire[:-1]]
    assert reader.last_stats.loss_free()  # torn tails are accounted free
    segment = Segment(path, torn[path])
    report = segment.verify()
    assert report["status"] == TORN_TAIL
    assert report["torn_bytes"] > 0
    assert report["quarantined_bytes"] == 0


def test_v1_sealed_segment_overrun_is_corruption():
    codec = _codec()
    store, __ = _store_from(_wire(codec, 5), version=FORMAT_VERSION_V1)
    (path,) = store
    data = bytearray(store[path])
    footer = sformat.parse_footer(data)
    # Stretch the first frame's length field: the frame now overruns
    # the sealed data region, which cannot happen on a clean seal.
    data[footer["data_start"]] = 0x7F
    reader = StoreReader.from_bytes({path: bytes(data)})
    with pytest.raises(CorruptFrameError):
        reader.records()


def test_v1_undecodable_payload_counted_not_raised():
    # v1 has no frame CRC: garbage that passes framing but fails decode
    # is quarantined with the loss accounted even in strict mode.
    codec = _codec()
    wire = _wire(codec, 3)
    good = [sformat.encode_frame(raw, 0, FORMAT_VERSION_V1) for raw in wire]
    junk = sformat.encode_frame(b"\x00" * len(wire[0]), 0, FORMAT_VERSION_V1)
    data = sformat.segment_header(FORMAT_VERSION_V1) + good[0] + junk + good[1] + good[2]
    reader = StoreReader.from_bytes({"/t/s.store.seg00000": data}, host_names=HOSTS)
    records = reader.records()
    stats = reader.last_stats
    assert records == [codec.decode(raw) for raw in wire]
    assert stats.frames_corrupt == 1
    assert stats.bytes_quarantined == len(junk)
    assert not stats.loss_free()


# ----------------------------------------------------------------------
# fsck and repair
# ----------------------------------------------------------------------


def test_fsck_clean_store():
    codec = _codec()
    store, writer = _store_from(_wire(codec, 20), segment_bytes=600)
    report = fsck_store(StoreReader.from_bytes(store))
    assert report["clean"]
    assert report["totals"]["records_recovered"] == 20
    assert report["totals"]["records_lost_known"] == 0
    assert report["totals"]["by_status"] == {
        SEALED_CLEAN: writer.segments_sealed
    }


def test_fsck_classifies_and_counts_damage():
    codec = _codec()
    store, __ = _store_from(_wire(codec, 30), segment_bytes=600)
    paths = sorted(store)
    damaged = _flip_data_byte(store, paths[1])
    damaged[paths[0]] = b"JUNKJUNK" + damaged[paths[0]][8:]
    report = fsck_store(StoreReader.from_bytes(damaged))
    assert not report["clean"]
    by_path = {seg["path"]: seg for seg in report["segments"]}
    assert by_path[paths[0]]["status"] == FOREIGN
    assert by_path[paths[1]]["status"] == CORRUPT_FRAME
    assert by_path[paths[1]]["records_lost"] == 1
    for path in paths[2:]:
        assert by_path[path]["status"] == SEALED_CLEAN
    totals = report["totals"]
    assert totals["records_lost_known"] == 1
    assert totals["bytes_quarantined"] > 0
    # Footers say how many records each sealed segment held, so the
    # recovered+lost ledger covers every intact-header segment exactly.
    expected = sum(
        seg["records_expected"] for seg in report["segments"]
        if seg["records_expected"] is not None
    )
    assert totals["records_recovered"] + totals["records_lost_known"] == expected


def test_repair_produces_a_store_that_rereads_clean():
    codec = _codec()
    wire = _wire(codec, 24)
    store, __ = _store_from(wire, segment_bytes=600)
    paths = sorted(store)
    damaged = _flip_data_byte(store, paths[0])
    reader = StoreReader.from_bytes(damaged)
    copy, writer, report = repair_store(reader, "/t/repaired.store")
    assert not report["clean"]
    repaired = StoreReader.from_bytes(copy)
    assert fsck_store(repaired)["clean"]
    salvaged = StoreReader.from_bytes(damaged).records(salvage=True)
    assert repaired.records() == salvaged
    assert writer.records_appended == len(salvaged) == len(wire) - 1
    # The repaired copy is current-format: every frame CRC-protected.
    assert all(seg.version == FORMAT_VERSION for seg in repaired.segments)


def test_repair_upgrades_v1_to_v2():
    codec = _codec()
    wire = _wire(codec, 10)
    v1_store, __ = _store_from(wire, version=FORMAT_VERSION_V1)
    copy, __, report = repair_store(
        StoreReader.from_bytes(v1_store), "/t/up.store"
    )
    assert report["clean"]
    repaired = StoreReader.from_bytes(copy)
    assert all(seg.version == FORMAT_VERSION for seg in repaired.segments)
    assert repaired.records() == [codec.decode(raw) for raw in wire]
