"""Terminal device semantics."""

from repro.kernel.tty import Terminal


def test_push_and_read_bytes():
    tty = Terminal()
    tty.push_input("hello")
    assert tty.readable()
    assert tty.read(3) == b"hel"
    assert tty.read(10) == b"lo"
    assert not tty.readable()


def test_push_line_appends_newline():
    tty = Terminal()
    tty.push_line("cmd")
    assert tty.read(100) == b"cmd\n"


def test_eof_makes_readable_with_empty_read():
    tty = Terminal()
    tty.send_eof()
    assert tty.readable()
    assert tty.read(10) == b""


def test_write_collects_output_and_fires_hook():
    tty = Terminal()
    chunks = []
    tty.on_output = chunks.append
    tty.write(b"one")
    tty.write(b"two")
    assert tty.peek_output() == "onetwo"
    assert chunks == [b"one", b"two"]


def test_take_output_drains():
    tty = Terminal()
    tty.write(b"data")
    assert tty.take_output() == "data"
    assert tty.take_output() == ""


def test_readable_wakes_waiters():
    from repro.kernel.waitq import WaitQueue

    tty = Terminal()
    assert isinstance(tty.rd_wait, WaitQueue)
    assert not tty.readable()
    tty.push_input("x")
    assert tty.readable()
