"""Stream socket semantics (Section 3.1): connection establishment,
reliable ordered byte streams, flow control, teardown."""

import pytest

from repro.kernel import defs
from repro.kernel.errno import SyscallError
from repro.net.addresses import InternetName, PairName, UnixName
from tests.conftest import run_guests, simple_stream_server


def _client(server_host, port, payloads, received, reads=None):
    def main(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, (server_host, port)
        )
        for payload in payloads:
            yield sys.write(fd, payload)
        expected = sum(len(p) for p in payloads)
        got = b""
        while len(got) < expected:
            data = yield sys.read(fd, reads or 4096)
            if not data:
                break
            got += data
        received.append(got)
        yield sys.close(fd)
        yield sys.exit(0)

    return main


def test_connect_accept_transfer_roundtrip(cluster):
    received = []
    run_guests(
        cluster,
        ("red", simple_stream_server(5000), ()),
        ("green", _client("red", 5000, [b"hello world"], received), ()),
    )
    assert received == [b"hello world"]


def test_stream_is_a_byte_stream_without_message_boundaries(cluster):
    """Messages coalesce: many small writes can satisfy one big read."""
    received = []
    payloads = [b"aa", b"bb", b"cc", b"dd"]
    run_guests(
        cluster,
        ("red", simple_stream_server(5000), ()),
        ("green", _client("red", 5000, payloads, received), ()),
    )
    assert received == [b"aabbccdd"]


def test_stream_preserves_order_and_content_for_large_transfer(cluster):
    """Bigger than the 4096-byte socket buffer: exercises flow control.
    Uses shutdown(2) half-close so the sink knows when the upload ends
    (a full echo of 16 KiB through two 4 KiB buffers would deadlock on
    a real BSD too)."""
    payload = bytes(range(256)) * 64  # 16 KiB
    uploaded = []
    reply = []

    def sink(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        got = b""
        while True:
            data = yield sys.read(conn, 4096)
            if not data:
                break
            got += data
        uploaded.append(got)
        yield sys.write(conn, b"got %d" % len(got))
        yield sys.close(conn)
        yield sys.exit(0)

    def uploader(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.write(fd, payload)
        yield sys.shutdown(fd, "w")
        reply.append((yield sys.read(fd, 100)))
        yield sys.close(fd)
        yield sys.exit(0)

    run_guests(
        cluster,
        ("red", sink, ()),
        ("green", uploader, ()),
        max_events=3_000_000,
    )
    assert uploaded == [payload]
    assert reply == [b"got %d" % len(payload)]


def test_connect_to_unbound_port_refused(cluster):
    errors = []

    def client(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, ("red", 9999))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("green", client, ()))
    from repro.kernel import errno

    assert errors == [errno.ECONNREFUSED]


def test_connect_before_listen_refused(cluster):
    """bind alone is not enough; the pending queue needs listen()."""
    errors = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.sleep(200)  # bound but never listening
        yield sys.exit(0)

    def client(sys, argv):
        yield sys.sleep(20)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, ("red", 5000))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    from repro.kernel import errno

    assert errors == [errno.ECONNREFUSED]


def test_backlog_limits_pending_connections(cluster):
    """Connections beyond the listen backlog are refused until accepts
    drain the queue."""
    outcomes = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 2)
        yield sys.sleep(500)  # let clients pile up
        yield sys.exit(0)

    def client(sys, argv):
        yield sys.sleep(10)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, ("red", 5000))
            outcomes.append("ok")
        except SyscallError:
            outcomes.append("refused")
        yield sys.exit(0)

    run_guests(
        cluster,
        ("red", server, ()),
        ("green", client, ()),
        ("green", client, ()),
        ("green", client, ()),
        ("green", client, ()),
    )
    assert outcomes.count("ok") == 2
    assert outcomes.count("refused") == 2


def test_read_returns_eof_after_peer_close(cluster):
    results = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        yield sys.write(conn, b"bye")
        yield sys.close(conn)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        first = yield sys.read(fd, 100)
        second = yield sys.read(fd, 100)
        results.append((first, second))
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert results == [(b"bye", b"")]


def test_write_after_peer_close_is_epipe(cluster):
    errors = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        yield sys.close(conn)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.sleep(50)  # let the close arrive
        try:
            yield sys.write(fd, b"anyone there?")
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    from repro.kernel import errno

    assert errors == [errno.EPIPE]


def test_accept_returns_peer_name(cluster):
    names = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        __, peer = yield sys.accept(fd)
        names.append(peer)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert isinstance(names[0], InternetName)
    assert names[0].host == "green"


def test_getsockname_getpeername(cluster):
    names = {}

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        names["server_sock"] = yield sys.getsockname(conn)
        names["server_peer"] = yield sys.getpeername(conn)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        names["client_sock"] = yield sys.getsockname(fd)
        names["client_peer"] = yield sys.getpeername(fd)
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert names["client_peer"] == names["server_sock"]
    assert names["server_peer"] == names["client_sock"]


def test_getpeername_on_unconnected_socket_fails(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.getpeername(fd)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    from repro.kernel import errno

    assert errors == [errno.ENOTCONN]


def test_unix_domain_streams_work_locally(cluster):
    received = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.bind(fd, "/tmp/srv")
        yield sys.listen(fd, 5)
        conn, peer = yield sys.accept(fd)
        data = yield sys.read(conn, 100)
        received.append((data, peer))
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_UNIX, defs.SOCK_STREAM, "/tmp/srv"
        )
        yield sys.write(fd, b"local")
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("red", client, ()))
    assert received[0][0] == b"local"


def test_socketpair_is_connected_both_ways(cluster):
    results = []

    def guest(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.write(a, b"ping")
        results.append((yield sys.read(b, 100)))
        yield sys.write(b, b"pong")
        results.append((yield sys.read(a, 100)))
        name_a = yield sys.getsockname(a)
        results.append(name_a)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert results[0] == b"ping"
    assert results[1] == b"pong"
    assert isinstance(results[2], PairName)


def test_socketpair_inherited_by_fork_connects_children(cluster):
    """Section 3.1: "processes can use socket pairs to set up
    communication between their children in a simple way"."""
    results = []

    def child_writer(sys, argv):
        yield sys.write(int(argv[0]), b"from child")
        yield sys.exit(0)

    def parent(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.fork(child_writer, [str(b)])
        yield sys.close(b)
        results.append((yield sys.read(a, 100)))
        yield sys.exit(0)

    run_guests(cluster, ("red", parent, ()))
    assert results == [b"from child"]


def test_bind_rejects_port_in_use(cluster):
    errors = []

    def guest(sys, argv):
        fd1 = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd1, ("", 5000))
        fd2 = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.bind(fd2, ("", 5000))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    from repro.kernel import errno

    assert errors == [errno.EADDRINUSE]


def test_bind_rejects_foreign_host(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.bind(fd, ("green", 5000))  # we are on red
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    from repro.kernel import errno

    assert errors == [errno.EADDRNOTAVAIL]


def test_socket_released_when_last_descriptor_closes(cluster):
    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        dup_fd = yield sys.dup(fd)
        yield sys.bind(fd, ("", 5000))
        yield sys.close(fd)
        # still referenced by the dup: the binding survives
        fd2 = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.bind(fd2, ("", 5000))
            raise AssertionError("port should still be bound")
        except SyscallError:
            pass
        yield sys.close(dup_fd)
        # last reference gone: the port is free again
        fd3 = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd3, ("", 5000))
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_reason == defs.EXIT_NORMAL


def test_listen_on_datagram_socket_rejected(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 5000))
        try:
            yield sys.listen(fd, 5)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    from repro.kernel import errno

    assert errors == [errno.EOPNOTSUPP]


def test_connect_to_unknown_host_unreachable(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, ("mars", 5000))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    from repro.kernel import errno

    assert errors == [errno.ENETUNREACH]


def test_unix_names_do_not_cross_machines(cluster):
    """UNIX-domain communication is machine-local in 4.2BSD."""
    outcomes = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.bind(fd, "/tmp/srv")
        yield sys.listen(fd, 5)
        yield sys.sleep(100)
        yield sys.exit(0)

    def client(sys, argv):
        yield sys.sleep(20)
        fd = yield sys.socket(defs.AF_UNIX, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, "/tmp/srv")
            outcomes.append("connected")
        except SyscallError:
            outcomes.append("refused")
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert outcomes == ["refused"]
