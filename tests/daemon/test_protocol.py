"""Controller/daemon wire protocol (Figure 3.6)."""

from repro.daemon import protocol


def test_create_request_and_reply_keep_figure_3_6_numbers():
    assert protocol.CREATE_REQ == 11
    assert protocol.CREATE_REPLY == 18


def test_every_request_has_a_distinct_reply():
    replies = list(protocol.REPLY_FOR.values())
    assert len(set(replies)) == len(replies)
    for req, reply in protocol.REPLY_FOR.items():
        assert req != reply


def test_encode_decode_round_trip():
    payload = protocol.encode(
        protocol.CREATE_REQ,
        filename="A",
        params=["x", "y"],
        filter_host="blue",
        filter_port=1234,
        meter_flags=7,
        control_host="yellow",
        control_port=4321,
    )
    msg_type, body = protocol.decode(payload)
    assert msg_type == protocol.CREATE_REQ
    assert body["filename"] == "A"
    assert body["params"] == ["x", "y"]
    assert body["filter_port"] == 1234


def test_error_reply():
    msg_type, body = protocol.decode(protocol.error_reply("ENOENT: A"))
    assert msg_type == protocol.ERROR_REPLY
    assert not protocol.is_ok(body)
    assert "ENOENT" in body["status"]


def test_is_ok():
    __, body = protocol.decode(protocol.encode(protocol.CREATE_REPLY, status="ok"))
    assert protocol.is_ok(body)


def test_notifications_are_not_replies():
    assert protocol.TERMINATION_NOTIFY not in protocol.REPLY_FOR.values()
    assert protocol.OUTPUT_NOTIFY not in protocol.REPLY_FOR.values()
