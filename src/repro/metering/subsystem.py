"""The in-kernel meter.

Implements the paper's kernel changes (Section 3.2):

- event detection hooks called from the syscall layer;
- per-process meter-message buffering ("The default is to buffer
  several messages so that the number of meter messages is considerably
  smaller than the number of messages sent by the metered process");
- flush of unsent messages at process termination;
- the ``setmeter(2)`` system call (Appendix C);
- meter-state inheritance across fork.

The meter socket's descriptor "is not stored in the process's
descriptor table and is, therefore, not directly accessible by the
process" -- here it lives in ``proc.meter_entry``.
"""

from collections import deque

from repro.kernel import defs as kdefs
from repro.kernel import errno
from repro.kernel.errno import SyscallError
from repro.kernel.waitq import WaitQueue
from repro.metering import flags as mflags
from repro.metering.messages import MessageCodec, encode_batch_marker
from repro.net.addresses import InternetName

#: Event name -> the flag bit that enables it.
_EVENT_FLAG = {
    "send": mflags.METERSEND,
    "receivecall": mflags.METERRECEIVECALL,
    "receive": mflags.METERRECEIVE,
    "accept": mflags.METERACCEPT,
    "connect": mflags.METERCONNECT,
    "fork": mflags.METERFORK,
    "socket": mflags.METERSOCKET,
    "dup": mflags.METERDUP,
    "destsocket": mflags.METERDESTSOCKET,
    "termproc": mflags.METERTERMPROC,
}

#: Messages buffered before the kernel ships a batch to the filter.
DEFAULT_BUFFER_LIMIT = 8

#: Upper bound on messages retained across failed flushes (transient
#: backpressure, e.g. a meter socket that is not yet connected): past
#: this the oldest messages are dropped and counted, so a never-ready
#: socket cannot grow the kernel buffer without bound.
DEFAULT_REQUEUE_LIMIT = 64

#: Flushed batches retained per process for retransmission after a
#: filter reconnect.  Each batch is stamped with a per-process sequence
#: number; a replacement meter connection gets the whole window resent
#: and the filter inbox dedups by (machine, pid, seq).  Rolling a
#: never-delivered batch out of the window is real, counted loss.
WINDOW_BATCHES = 32

#: Stamped batches retained per destination (filter address) after
#: their process exits, so a filter that crashes around a process's
#: death can still recover the final records (including termproc)
#: through ``meterdrain``.
ORPHAN_BATCHES = 512


class MeterSubsystem:
    """Per-machine metering state and hooks."""

    def __init__(
        self,
        machine,
        buffer_limit=DEFAULT_BUFFER_LIMIT,
        requeue_limit=DEFAULT_REQUEUE_LIMIT,
    ):
        self.machine = machine
        self.buffer_limit = buffer_limit
        self.requeue_limit = requeue_limit
        self.codec = MessageCodec()
        # Statistics for the perturbation / buffering studies.
        self.events_recorded = 0
        self.wire_sends = 0
        self.wire_bytes = 0
        #: Meter messages lost for any reason (broken or never-ready
        #: meter connection, re-queue overflow, process termination
        #: with an unsendable buffer) -- loss is observable, not silent.
        self.events_dropped = 0
        #: pid -> share of ``events_dropped``, surfaced per process
        #: through meterstat(2) and the daemon status RPC.
        self.dropped_by_pid = {}
        #: (filter host, filter port) -> deque of window entries whose
        #: process has exited; drained to a reconnecting filter by
        #: meterdrain(2).
        self.orphans = {}
        #: Broken-meter notifications for the local meterdaemon
        #: (``select(want_meter_loss=True)``): the kernel knows the
        #: instant a meter connection dies, and the daemon on this
        #: machine is the only agent guaranteed to share its side of
        #: any partition -- the controller's health view runs over a
        #: different path and can stay green while meter data silently
        #: stops flowing.
        self.lost_meters = deque()
        self.lost_wait = WaitQueue("meter-loss")

    # ------------------------------------------------------------------
    # setmeter(2)
    # ------------------------------------------------------------------

    def sys_setmeter(self, proc, request):
        """Appendix C semantics.

        ``setmeter(proc, flags, socket)``: -1 for proc means the caller;
        -1 for flags/socket means no change; flags 0 (NONE) clears all;
        socket SOCK_NONE (or None) closes the meter connection.
        """
        target_pid, new_flags, socket_fd = request.args

        if target_pid == mflags.SELF:
            target = proc
        else:
            target = self.machine.procs.get(target_pid)
            if target is None or target.state == kdefs.PROC_ZOMBIE:
                raise SyscallError(errno.ESRCH, "pid %r" % target_pid)
        # "A user can request metering only for processes belonging to
        # that user ... A superuser process can set metering for any
        # process."
        if proc.uid != 0 and proc.uid != target.uid:
            raise SyscallError(errno.EPERM, "pid %r" % target_pid)

        if new_flags != mflags.NO_CHANGE:
            target.meter_flags = int(new_flags)

        if socket_fd is None:
            socket_fd = mflags.SOCK_NONE
        if socket_fd == mflags.SOCK_NONE:
            # Deliberate un-metering: nobody will reconnect for these
            # batches, so the window's undelivered remainder is loss.
            self._drop_meter_socket(target)
            target.meter_pending_dest = None
            self._discard_window(target)
        elif socket_fd != mflags.NO_CHANGE:
            entry = proc.fds.get(socket_fd)
            if entry is None:
                # Appendix C prints ESRCH for "the socket does not
                # exist", but a descriptor that names no open file is
                # EBADF in 4.2BSD; ESRCH stays reserved for the process
                # lookup above.
                raise SyscallError(errno.EBADF, "socket fd %r" % socket_fd)
            if entry.kind != "socket":
                raise SyscallError(errno.ENOTSOCK, "fd %r" % socket_fd)
            sock = entry.obj
            # "The socket provided must be a stream socket in the
            # Internet domain."  (It "must be connected to be used,
            # though this is not checked.")
            if not sock.is_stream or sock.domain != kdefs.AF_INET:
                raise SyscallError(
                    errno.EINVAL, "meter socket must be an Internet stream socket"
                )
            # "If setmeter() is called specifying a new meter socket for
            # a process already having one, the old socket is closed."
            self._drop_meter_socket(target)
            target.meter_entry = self.machine.file_table.ref(entry)
            target.meter_pending_dest = None
            if target.meter_window:
                # Reconnect: every retained batch goes out again on the
                # new connection; the filter dedups by (machine, pid,
                # seq), so redelivery is harmless and gaps are closed.
                for went in target.meter_window:
                    went[3] = False
                self._pump_window(target)
        return 0

    def _drop_meter_socket(self, proc):
        if proc.meter_entry is not None:
            self.machine.file_table.unref(proc.meter_entry)
            proc.meter_entry = None

    def inherit(self, parent, child):
        """fork(): "the child process inherits the meter socket and the
        meter flags of the parent"."""
        child.meter_flags = parent.meter_flags
        if parent.meter_entry is not None:
            child.meter_entry = self.machine.file_table.ref(parent.meter_entry)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _metered(self, proc, event):
        # A broken meter connection with a remembered destination means
        # a replacement filter may reconnect: keep recording into the
        # resend window so the gap can be closed.  Only a process that
        # never had a socket, or was deliberately un-metered (setmeter
        # with SOCK_NONE clears the pending destination), stops here.
        if proc.meter_entry is None and proc.meter_pending_dest is None:
            return False
        return proc.meter_flags & _EVENT_FLAG[event] != 0

    def _record(self, proc, event, **body):
        """Build, buffer, and maybe ship one meter message."""
        raw = self.codec.encode(
            event,
            machine=self.machine.host.host_id,
            cpu_time=int(self.machine.clock.local_time(self.machine.sim.now)),
            proc_time=int(proc.proc_time()),
            pc=proc.step_count,
            **body
        )
        proc.meter_buffer.append(raw)
        self.events_recorded += 1
        proc.charge_cpu(kdefs.METER_EVENT_COST_MS)
        immediate = proc.meter_flags & mflags.M_IMMEDIATE != 0
        if immediate and proc.meter_entry is None and proc.meter_pending_dest is not None:
            # Awaiting a filter reconnect: immediate delivery is moot
            # with no connection, and stamping one window batch per
            # event would burn through the resend window ``buffer_limit``
            # times faster than full batches do.  Batch fully until the
            # replacement connection arrives.
            immediate = False
        if immediate or len(proc.meter_buffer) >= self.buffer_limit:
            self.flush(proc)

    def flush(self, proc):
        """Ship any buffered messages over the meter connection."""
        if proc.meter_window:
            # Older stamped batches first, so the stream stays in
            # sequence order across a reconnect.
            self._pump_window(proc)
        if not proc.meter_buffer:
            return
        if proc.meter_entry is None:
            if proc.meter_pending_dest is not None:
                # The connection broke but a replacement filter may
                # reconnect: stamp the batch into the resend window
                # instead of dropping it.
                self._stamp_batch(proc, sent=False)
            else:
                # "Meter messages are lost if ... unconnected."
                self._count_dropped(proc.pid, len(proc.meter_buffer))
                proc.meter_buffer = []
            return
        pending = proc.meter_buffer
        proc.meter_buffer = []
        # The batch marker trails the batch, stamping it with this
        # process's flush sequence number; it rides in the same send,
        # so batching cost (one wire send per batch) is unchanged.
        seq = proc.meter_seq
        data = (
            pending[0] if len(pending) == 1 else b"".join(pending)
        ) + encode_batch_marker(self.machine.host.host_id, proc.pid, seq)
        sock = proc.meter_entry.obj
        if self.machine.kernel_stream_send(sock, data):
            self.wire_sends += 1
            self.wire_bytes += len(data)
            proc.meter_seq = seq + 1
            self._window_push(proc, [seq, data, len(pending), True])
        elif sock.closed or sock.peer_gone or sock.error is not None:
            # The meter connection broke (filter died, path severed):
            # transparency under failure (Section 2) -- quietly un-meter
            # the process and let it keep computing, never perturb it.
            # The batch waits in the resend window for a reconnect.
            proc.meter_seq = seq + 1
            self._window_push(proc, [seq, data, len(pending), False])
            self._disconnect(proc, sock)
        else:
            # Transient refusal while the socket itself is healthy
            # (e.g. a meter socket set before it finished connecting):
            # keep the batch for the next flush instead of silently
            # discarding it, bounded by the re-queue limit.  No sequence
            # number is consumed -- the records are still unstamped.
            requeued = pending + proc.meter_buffer
            overflow = len(requeued) - self.requeue_limit
            if overflow > 0:
                self._count_dropped(proc.pid, overflow)
                requeued = requeued[overflow:]
            proc.meter_buffer = requeued

    # -- resend window --------------------------------------------------

    def _count_dropped(self, pid, count):
        if count <= 0:
            return
        self.events_dropped += count
        self.dropped_by_pid[pid] = self.dropped_by_pid.get(pid, 0) + count

    def _dest_of(self, sock):
        """(host, port) of the filter a meter socket is connected to."""
        name = getattr(sock, "peer_name", None)
        if isinstance(name, InternetName):
            return (name.host, name.port)
        return None

    def _disconnect(self, proc, sock):
        """The meter connection is dead: remember where it pointed so a
        replacement connection can pick the window up, drop it, and
        tell the local meterdaemon so it can redial."""
        dest = self._dest_of(sock)
        if dest is not None:
            proc.meter_pending_dest = dest
            self.lost_meters.append(
                {
                    "meter_lost": True,
                    "pid": proc.pid,
                    "host": dest[0],
                    "port": dest[1],
                }
            )
            self.lost_wait.wake_all()
        self._drop_meter_socket(proc)

    def _stamp_batch(self, proc, sent):
        """Move the whole meter buffer into the window as one stamped,
        marker-prefixed batch."""
        pending = proc.meter_buffer
        proc.meter_buffer = []
        seq = proc.meter_seq
        proc.meter_seq = seq + 1
        data = (
            pending[0] if len(pending) == 1 else b"".join(pending)
        ) + encode_batch_marker(self.machine.host.host_id, proc.pid, seq)
        self._window_push(proc, [seq, data, len(pending), sent])

    def _window_push(self, proc, entry):
        """Append a [seq, wire bytes, record count, sent] entry, rolling
        the window; an entry that never reached any filter is loss."""
        proc.meter_window.append(entry)
        while len(proc.meter_window) > WINDOW_BATCHES:
            old = proc.meter_window.popleft()
            if not old[3]:
                self._count_dropped(proc.pid, old[2])

    def _pump_window(self, proc):
        """(Re)send window batches not yet delivered on the current
        connection, oldest first; stops at the first refusal."""
        if proc.meter_entry is None:
            return
        sock = proc.meter_entry.obj
        for entry in proc.meter_window:
            if entry[3]:
                continue
            if self.machine.kernel_stream_send(sock, entry[1]):
                self.wire_sends += 1
                self.wire_bytes += len(entry[1])
                entry[3] = True
            elif sock.closed or sock.peer_gone or sock.error is not None:
                self._disconnect(proc, sock)
                return
            else:
                return  # transient; retried at the next flush

    def _discard_window(self, proc):
        for entry in proc.meter_window:
            if not entry[3]:
                self._count_dropped(proc.pid, entry[2])
        proc.meter_window.clear()

    def _spool_orphans(self, proc, dest):
        """Keep an exited process's window for the filter at ``dest``;
        meterdrain(2) redelivers it on a fresh connection."""
        spool = self.orphans.setdefault(dest, deque())
        for entry in proc.meter_window:
            spool.append([entry[0], entry[1], entry[2], entry[3], proc.pid])
        while len(spool) > ORPHAN_BATCHES:
            old = spool.popleft()
            if not old[3]:
                self._count_dropped(old[4], old[2])
        proc.meter_window.clear()

    # ------------------------------------------------------------------
    # Hooks called by the syscall layer
    # ------------------------------------------------------------------

    def on_socket(self, proc, entry, sock):
        if self._metered(proc, "socket"):
            self._record(
                proc,
                "socket",
                pid=proc.pid,
                sock=entry.addr,
                domain=sock.domain,
                type=sock.type,
                protocol=sock.protocol,
            )

    def on_connect(self, proc, entry, sock, peer_name):
        if self._metered(proc, "connect"):
            self._record(
                proc,
                "connect",
                pid=proc.pid,
                sock=entry.addr,
                sockName=sock.name,
                peerName=peer_name,
                **self.codec.name_lengths(sockName=sock.name, peerName=peer_name)
            )

    def on_accept(self, proc, listener_entry, conn_entry, listener, conn):
        if self._metered(proc, "accept"):
            self._record(
                proc,
                "accept",
                pid=proc.pid,
                sock=listener_entry.addr,
                newSock=conn_entry.addr,
                sockName=listener.name,
                peerName=conn.peer_name,
                **self.codec.name_lengths(
                    sockName=listener.name, peerName=conn.peer_name
                )
            )

    def on_send(self, proc, entry, sock, msg_length, dest_name):
        if self._metered(proc, "send"):
            self._record(
                proc,
                "send",
                pid=proc.pid,
                sock=entry.addr,
                msgLength=msg_length,
                destName=dest_name,
                **self.codec.name_lengths(destName=dest_name)
            )

    def on_recvcall(self, proc, entry, sock):
        if self._metered(proc, "receivecall"):
            self._record(proc, "receivecall", pid=proc.pid, sock=entry.addr)

    def on_recv(self, proc, entry, sock, msg_length, source_name):
        if self._metered(proc, "receive"):
            self._record(
                proc,
                "receive",
                pid=proc.pid,
                sock=entry.addr,
                msgLength=msg_length,
                sourceName=source_name,
                **self.codec.name_lengths(sourceName=source_name)
            )

    def on_dup(self, proc, entry, newfd):
        if self._metered(proc, "dup"):
            self._record(
                proc, "dup", pid=proc.pid, sock=entry.addr, newSock=newfd
            )

    def on_destsocket(self, proc, entry):
        if self._metered(proc, "destsocket"):
            self._record(proc, "destsocket", pid=proc.pid, sock=entry.addr)

    def on_fork(self, parent, child):
        if self._metered(parent, "fork"):
            self._record(parent, "fork", pid=parent.pid, newPid=child.pid)

    def on_termproc(self, proc):
        """Called from proc_exit: final event, flush, close the socket."""
        if self._metered(proc, "termproc"):
            self._record(
                proc,
                "termproc",
                pid=proc.pid,
                status=proc.exit_status if proc.exit_status is not None else 0,
            )
        self.flush(proc)
        if proc.meter_buffer:
            # The process is gone; whatever could not be shipped is lost.
            self._count_dropped(proc.pid, len(proc.meter_buffer))
            proc.meter_buffer = []
        if proc.meter_window:
            # The process is gone but its filter may be mid-restart:
            # park the window where a drain for that filter address can
            # find it, so even the termproc record survives the race.
            dest = proc.meter_pending_dest
            if dest is None and proc.meter_entry is not None:
                dest = self._dest_of(proc.meter_entry.obj)
            if dest is not None:
                self._spool_orphans(proc, dest)
            else:
                self._discard_window(proc)
        proc.meter_pending_dest = None
        self._drop_meter_socket(proc)

    # ------------------------------------------------------------------
    # meterstat(2) / meterdrain(2)
    # ------------------------------------------------------------------

    def sys_meterstat(self, proc, request):
        """Machine-wide metering statistics (root only): loss totals,
        the per-pid split, how many orphan batches are parked (and
        where), and which live processes sit on a broken meter
        connection (the redial worklist)."""
        if proc.uid != 0:
            raise SyscallError(errno.EPERM, "meterstat is root-only")
        disconnected = {}
        for other in self.machine.procs.values():
            if (
                other.state != kdefs.PROC_ZOMBIE
                and other.meter_pending_dest is not None
            ):
                disconnected[other.pid] = list(other.meter_pending_dest)
        return {
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
            "wire_sends": self.wire_sends,
            "dropped_by_pid": dict(self.dropped_by_pid),
            "orphan_batches": sum(len(q) for q in self.orphans.values()),
            # Only never-delivered batches count: a spool of delivered
            # leftovers needs no redial (a drain would just be deduped).
            "orphans_parked": {
                key: count
                for key, count in (
                    (
                        "{0}:{1}".format(host, port),
                        sum(1 for entry in spool if not entry[3]),
                    )
                    for (host, port), spool in self.orphans.items()
                )
                if count
            },
            "disconnected": disconnected,
        }

    def sys_meterdrain(self, proc, request):
        """Redeliver orphaned batches over ``fd`` (root only).

        ``meterdrain(fd, ports)``: ``fd`` must be a stream socket
        connected to the (relaunched) filter's machine; every orphan
        batch spooled for that host at any of the given filter ports is
        shipped over it.  Returns the number of batches shipped."""
        fd, ports = request.args
        if proc.uid != 0:
            raise SyscallError(errno.EPERM, "meterdrain is root-only")
        entry = proc.fds.get(fd)
        if entry is None:
            raise SyscallError(errno.EBADF, "fd %r" % fd)
        if entry.kind != "socket":
            raise SyscallError(errno.ENOTSOCK, "fd %r" % fd)
        sock = entry.obj
        dest = self._dest_of(sock)
        if dest is None:
            raise SyscallError(
                errno.EINVAL, "meterdrain needs a connected Internet socket"
            )
        shipped = 0
        for port in ports:
            key = (dest[0], int(port))
            spool = self.orphans.pop(key, None)
            if not spool:
                continue
            while spool:
                batch = spool[0]
                if self.machine.kernel_stream_send(sock, batch[1]):
                    spool.popleft()
                    shipped += 1
                    self.wire_sends += 1
                    self.wire_bytes += len(batch[1])
                else:
                    # Refused mid-drain: keep the rest for a later try.
                    self.orphans[key] = spool
                    return shipped
        return shipped
