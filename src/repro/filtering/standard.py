"""The standard filter (Section 3.4).

"After receiving a message from standard input, the default filter
performs selection and reduction operations on the event records
received.  It uses event record descriptions and selection rules to
specify the criteria for data selection and reduction."

Guest program arguments::

    argv = [filtername, log_path, descriptions_path, templates_path]

Accepted records are appended, one text line each, to the log file
("A filter sends its output to a log file located in the /usr/tmp
directory.  Each filter has its own log file.").
"""

from repro import guestlib
from repro.filtering.descriptions import parse_descriptions
from repro.filtering.filterlib import MeterInbox
from repro.filtering.records import format_record
from repro.filtering.rules import RuleSet, parse_rules

PROGRAM_NAME = "filter"
LOG_DIRECTORY = "/usr/tmp"


def log_path_for(filtername):
    return "{0}/{1}.log".format(LOG_DIRECTORY, filtername)


def standard_filter(sys, argv):
    """Guest main for the standard filter."""
    filtername = argv[0] if len(argv) > 0 else "filter"
    log_path = argv[1] if len(argv) > 1 else log_path_for(filtername)
    descriptions_path = argv[2] if len(argv) > 2 else "descriptions"
    templates_path = argv[3] if len(argv) > 3 else "templates"

    descriptions_text = yield from guestlib.read_whole_file(sys, descriptions_path)
    descriptions = parse_descriptions(descriptions_text)
    templates_text = yield from guestlib.read_optional_file(sys, templates_path)
    rules = parse_rules(templates_text) if templates_text is not None else RuleSet([])
    host_names = yield sys.hosttable()

    log_fd = yield sys.open(log_path, "w")
    inbox = MeterInbox()
    while True:
        raw_messages = yield from inbox.wait(sys)
        lines = []
        for raw in raw_messages:
            try:
                record = descriptions.decode_message(raw, host_names)
            except (ValueError, KeyError):
                # Anything may connect to the meter port; a malformed
                # message must not take the filter down -- drop it.
                continue
            saved = rules.apply(record)
            if saved is None:
                continue
            order = descriptions.field_order(record["event"])
            lines.append(format_record(saved, order))
        if lines:
            yield sys.write(log_fd, ("\n".join(lines) + "\n").encode("ascii"))
        # The filter runs until the controller removes it (die).
