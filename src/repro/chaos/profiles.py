"""Chaos profiles: weighted fault mixes the generator draws from.

A profile is the *shape* of adversity -- which fault kinds appear, how
often, and with what parameter ranges -- while the seed picks the
concrete schedule.  Profiles name generator *moves*, not raw
:mod:`repro.faults.plan` kinds: a move may expand to a pair of events
(``daemon_outage`` is a kill **and** the later init restart;
``machine_outage`` is a crash **and** the reboot), because an
unrecovered outage would change what the workload computes and turn
every oracle into noise.

The built-in profiles partition the fault space so a search batch can
claim coverage per dimension:

- ``network``      partitions, loss bursts, latency spikes
- ``processes``    filter kills, daemon outages
- ``controlplane`` controller kill/restart, daemon outages, partitions
- ``storage``      bit rot, dropped flushes, torn writes on the store
- ``mixed``        everything above, weighted toward the common cases
- ``destructive``  machine crash/reboot on top of the mixed faults
  (baseline-equality oracles do not apply; the monitor must merely
  stay truthful about what survived)
"""

#: Generator move names (see ChaosProfile.weights keys).
KILL_FILTER = "kill_filter"
DAEMON_OUTAGE = "daemon_outage"
PARTITION = "partition"
LOSS_BURST = "loss_burst"
LATENCY_SPIKE = "latency_spike"
CONTROLLER_OUTAGE = "controller_outage"
STORAGE_BIT_ROT = "storage_bit_rot"
STORAGE_DROP_FLUSH = "storage_drop_flush"
STORAGE_TORN_WRITE = "storage_torn_write"
MACHINE_OUTAGE = "machine_outage"

ALL_MOVES = (
    KILL_FILTER,
    DAEMON_OUTAGE,
    PARTITION,
    LOSS_BURST,
    LATENCY_SPIKE,
    CONTROLLER_OUTAGE,
    STORAGE_BIT_ROT,
    STORAGE_DROP_FLUSH,
    STORAGE_TORN_WRITE,
    MACHINE_OUTAGE,
)


class ChaosProfile:
    """Weights and parameter ranges for schedule generation.

    ``moves`` bounds how many moves one schedule draws (paired moves
    contribute two events).  ``horizon_ms`` is the fault window length,
    measured from the moment the workload starts; recovery halves of
    paired moves always land inside it, so a settled run ends healed.
    """

    def __init__(
        self,
        name,
        weights,
        moves=(4, 8),
        horizon_ms=700.0,
        min_gap_ms=40.0,
        loss_range=(0.1, 0.6),
        burst_duration_ms=(30.0, 150.0),
        latency_extra_ms=(5.0, 40.0),
        flips_range=(1, 4),
        torn_bytes_range=(1, 160),
        controller_outage_limit=1,
    ):
        for move in weights:
            if move not in ALL_MOVES:
                raise ValueError("unknown generator move {0!r}".format(move))
        if not weights:
            raise ValueError("profile needs at least one weighted move")
        self.name = name
        #: move name -> relative weight (insertion order is draw order).
        self.weights = dict(weights)
        self.moves = (int(moves[0]), int(moves[1]))
        if not 0 < self.moves[0] <= self.moves[1]:
            raise ValueError("moves must satisfy 0 < min <= max")
        self.horizon_ms = float(horizon_ms)
        self.min_gap_ms = float(min_gap_ms)
        self.loss_range = loss_range
        self.burst_duration_ms = burst_duration_ms
        self.latency_extra_ms = latency_extra_ms
        self.flips_range = flips_range
        self.torn_bytes_range = torn_bytes_range
        #: At most this many controller kill/restart pairs per schedule
        #: (each pair costs one operator ``resume`` in the harness).
        self.controller_outage_limit = int(controller_outage_limit)

    def __repr__(self):
        return "ChaosProfile({0!r}, moves={1})".format(self.name, self.moves)


PROFILES = {
    "mixed": ChaosProfile(
        "mixed",
        {
            KILL_FILTER: 2.0,
            DAEMON_OUTAGE: 2.0,
            PARTITION: 2.0,
            LOSS_BURST: 1.5,
            LATENCY_SPIKE: 1.5,
            CONTROLLER_OUTAGE: 1.0,
            STORAGE_BIT_ROT: 0.8,
            STORAGE_DROP_FLUSH: 0.5,
            STORAGE_TORN_WRITE: 0.5,
        },
    ),
    "network": ChaosProfile(
        "network",
        {PARTITION: 3.0, LOSS_BURST: 2.0, LATENCY_SPIKE: 2.0},
        moves=(4, 9),
    ),
    "processes": ChaosProfile(
        "processes",
        {KILL_FILTER: 3.0, DAEMON_OUTAGE: 3.0},
        moves=(3, 6),
    ),
    "controlplane": ChaosProfile(
        "controlplane",
        {CONTROLLER_OUTAGE: 2.0, DAEMON_OUTAGE: 2.0, PARTITION: 1.0},
        moves=(3, 6),
    ),
    "storage": ChaosProfile(
        "storage",
        {
            STORAGE_BIT_ROT: 2.0,
            STORAGE_DROP_FLUSH: 1.5,
            STORAGE_TORN_WRITE: 1.5,
            KILL_FILTER: 1.0,
        },
        moves=(3, 6),
    ),
    "destructive": ChaosProfile(
        "destructive",
        {
            MACHINE_OUTAGE: 2.0,
            PARTITION: 1.5,
            LOSS_BURST: 1.0,
            KILL_FILTER: 1.0,
            DAEMON_OUTAGE: 1.0,
        },
        moves=(3, 7),
    ),
}


def get_profile(name):
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            "unknown chaos profile {0!r}; available: {1}".format(
                name, ", ".join(sorted(PROFILES))
            )
        )
