"""The chaos search driver: generate, run, judge, shrink, report.

One :func:`search` call sweeps ``profiles x seeds`` schedules against a
scenario: each seed derives a :class:`FaultPlan` (generator), each plan
runs on a fresh seeded cluster (scenario harness), and each run is
judged by the invariant-oracle suite against the scenario's fault-free
baseline.  Failing schedules are delta-debugged down to a minimal
repro and emitted as replayable JSON artifacts.

The report is the soak currency: schedules and events injected,
per-fault-kind coverage, schedules/hour, and every verdict -- the
numbers the blocking ``chaos-search`` CI job uploads as
BENCH_PR10.json.
"""

import time

from collections import Counter

from repro.chaos.artifact import build_artifact, save_artifact
from repro.chaos.generator import generate_plan
from repro.chaos.oracles import run_oracles, violated_names
from repro.chaos.profiles import get_profile
from repro.chaos.scenario import run_scenario
from repro.chaos.shrink import shrink_plan


def search(
    scenario,
    profiles=("mixed",),
    seeds=range(5),
    cluster_seed=7,
    oracles=None,
    shrink_failures=True,
    artifact_dir=None,
    max_shrink_probes=120,
    log=None,
):
    """Run the search; returns the report dict.

    ``log``, when given, receives one human-readable progress line per
    schedule (the CLI passes ``print``).
    """
    emit = log or (lambda line: None)
    surface = scenario.surface(log_directory=None)
    began = time.perf_counter()
    baseline = run_scenario(scenario, cluster_seed)
    baseline_records = sum(baseline.record_multiset().values())
    emit(
        "baseline: {0} ({1} records)".format(
            scenario.describe(), baseline_records
        )
    )
    per_schedule = []
    failures = []
    coverage = Counter()
    events_injected = 0
    for profile_name in profiles:
        profile = get_profile(profile_name)
        for seed in seeds:
            plan = generate_plan(seed, profile, surface)
            coverage.update(event.kind for event in plan.events)
            events_injected += len(plan)
            run = run_scenario(scenario, cluster_seed, plan)
            verdict = run_oracles(run, baseline, oracles)
            violated = violated_names(verdict)
            entry = {
                "profile": profile.name,
                "seed": int(seed),
                "events": len(plan),
                "ok": verdict["ok"],
                "violated": violated,
            }
            per_schedule.append(entry)
            emit(
                "[{0}:{1}] {2} event(s) -> {3}".format(
                    profile.name,
                    seed,
                    len(plan),
                    "ok" if verdict["ok"] else "VIOLATED " + ",".join(violated),
                )
            )
            if verdict["ok"]:
                continue
            failure = dict(entry)
            if shrink_failures:
                shrunk = _shrink_failure(
                    scenario,
                    cluster_seed,
                    baseline,
                    plan,
                    violated,
                    oracles,
                    max_shrink_probes,
                )
                failure["shrunk_events"] = shrunk.final_events
                failure["shrink_probes"] = shrunk.probes
                emit("  " + shrunk.summary())
                repro_plan = shrunk.plan
                shrink_info = {
                    "original_events": shrunk.original_events,
                    "probes": shrunk.probes,
                }
            else:
                repro_plan = plan
                shrink_info = None
            if artifact_dir is not None:
                repro_run = run_scenario(scenario, cluster_seed, repro_plan)
                repro_verdict = run_oracles(repro_run, baseline, oracles)
                artifact = build_artifact(
                    scenario.name,
                    cluster_seed,
                    repro_plan,
                    repro_verdict,
                    profile=profile.name,
                    gen_seed=int(seed),
                    oracles=oracles,
                    shrink_info=shrink_info,
                )
                path = save_artifact(
                    artifact,
                    "{0}/chaos_{1}_{2}_{3}.json".format(
                        artifact_dir, scenario.name, profile.name, seed
                    ),
                )
                failure["artifact"] = str(path)
                emit("  artifact: {0}".format(path))
            failures.append(failure)
    elapsed = time.perf_counter() - began
    report = {
        "scenario": scenario.name,
        "cluster_seed": int(cluster_seed),
        "profiles": list(profiles),
        "seeds": [int(seed) for seed in seeds],
        "schedules": len(per_schedule),
        "events_injected": events_injected,
        "baseline_records": baseline_records,
        "coverage": dict(sorted(coverage.items())),
        "kinds_covered": len(coverage),
        "violations": len(failures),
        "failures": failures,
        "per_schedule": per_schedule,
        "elapsed_seconds": round(elapsed, 3),
        "schedules_per_hour": round(
            len(per_schedule) * 3600.0 / elapsed, 1
        )
        if elapsed
        else 0.0,
    }
    return report


def _shrink_failure(
    scenario, cluster_seed, baseline, plan, violated, oracles, max_probes
):
    """Delta-debug a failing schedule: a candidate still "fails" when
    it reproduces at least one of the originally violated oracles."""
    original = set(violated)

    def fails(candidate):
        run = run_scenario(scenario, cluster_seed, candidate)
        verdict = run_oracles(run, baseline, oracles)
        return bool(original & set(violated_names(verdict)))

    return shrink_plan(plan, fails, max_probes=max_probes)


def format_report(report):
    """Human-readable soak summary lines."""
    lines = [
        "chaos search: {0} schedule(s), {1} fault event(s) injected "
        "over scenario '{2}'".format(
            report["schedules"], report["events_injected"], report["scenario"]
        ),
        "coverage: "
        + ", ".join(
            "{0}={1}".format(kind, count)
            for kind, count in sorted(report["coverage"].items())
        ),
        "rate: {0} schedules/hour ({1}s elapsed)".format(
            report["schedules_per_hour"], report["elapsed_seconds"]
        ),
        "verdicts: {0} ok, {1} violated".format(
            report["schedules"] - report["violations"], report["violations"]
        ),
    ]
    for failure in report["failures"]:
        line = "  VIOLATED [{0}:{1}] {2}".format(
            failure["profile"], failure["seed"], ",".join(failure["violated"])
        )
        if "shrunk_events" in failure:
            line += " (shrunk {0} -> {1} events)".format(
                failure["events"], failure["shrunk_events"]
            )
        if "artifact" in failure:
            line += " -> " + failure["artifact"]
        lines.append(line)
    return lines
