"""Guest workload programs.

The distributed programs a user of the measurement system would
actually monitor: the client/server and datagram examples of Section
3.1, a token ring, a master/worker computation, a long-running system
server (the acquire target), and the distributed travelling-salesman
solver of the paper's concluding study (Lai & Miller 84).

Each program is a generator ``main(sys, argv)`` taking string
arguments, so it can be installed as an executable and created through
the controller's addprocess command.
"""

from repro.programs.echo import echo_client, echo_server
from repro.programs.dgram import dgram_consumer, dgram_producer
from repro.programs.master_worker import mw_master, mw_worker
from repro.programs.pingpong import pingpong_client, pingpong_server
from repro.programs.pipeline import pipeline_stage
from repro.programs.ring import ring_node
from repro.programs.server import name_server, name_client
from repro.programs.tsp import tsp_master, tsp_worker
from repro.programs.wordcount import wc_coordinator, wc_mapper, wc_reducer

#: name -> main, ready for Cluster.install_program /
#: MeasurementSession.install_program.
WORKLOADS = {
    "echoserver": echo_server,
    "echoclient": echo_client,
    "dgramproducer": dgram_producer,
    "dgramconsumer": dgram_consumer,
    "ringnode": ring_node,
    "mwmaster": mw_master,
    "mwworker": mw_worker,
    "pingpongserver": pingpong_server,
    "pingpongclient": pingpong_client,
    "nameserver": name_server,
    "nameclient": name_client,
    "pipelinestage": pipeline_stage,
    "tspmaster": tsp_master,
    "tspworker": tsp_worker,
    "wccoordinator": wc_coordinator,
    "wcmapper": wc_mapper,
    "wcreducer": wc_reducer,
}


def install_all(session_or_cluster):
    """Install every workload on every machine."""
    for name, main in WORKLOADS.items():
        session_or_cluster.install_program(name, main)


__all__ = ["WORKLOADS", "install_all"] + sorted(
    main.__name__ for main in WORKLOADS.values()
)
