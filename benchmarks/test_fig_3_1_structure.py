"""Figure 3.1 -- Structure of the 4.2BSD metering tools.

Metered processes + in-kernel meters + a filter + the control process
+ meterdaemons, wired over IPC connections.  The bench stands up the
whole structure, runs a communicating job through it, and checks each
box of the figure is present and connected.
"""

from benchmarks.conftest import fresh_session
from repro.analysis import Trace
from repro.kernel import defs


def _build_and_run():
    session = fresh_session(seed=7)
    session.command("filter f1 blue")
    session.command("newjob job")
    session.command("addprocess job red echoserver 5000 1")
    session.command("addprocess job green echoclient red 5000 5 64 1")
    session.command("setflags job all")
    session.command("startjob job")
    session.settle()
    return session


def test_fig_3_1_full_measurement_structure(benchmark):
    session = benchmark.pedantic(_build_and_run, rounds=3, iterations=1)
    cluster = session.cluster
    # Every machine runs a meterdaemon (the figure's daemon boxes).
    for name, machine in cluster.machines.items():
        daemons = [
            p for p in machine.procs.values()
            if p.program_name == "meterdaemon" and p.state != defs.PROC_ZOMBIE
        ]
        assert len(daemons) == 1, name
    # One filter process on blue.
    filters = [
        p for p in cluster.machine("blue").procs.values()
        if p.program_name == "filter" and p.state != defs.PROC_ZOMBIE
    ]
    assert len(filters) == 1
    # The control process on yellow.
    assert session.controller_alive()
    # Meter messages flowed from both metered processes to the filter.
    trace = Trace(session.read_trace("f1"))
    assert len(trace.processes()) == 2
    red = cluster.host_table.lookup("red").host_id
    green = cluster.host_table.lookup("green").host_id
    assert {machine for machine, __ in trace.processes()} == {red, green}
    print(
        "\n[fig 3.1] daemons=4 filter=1 controller=1 metered=2, "
        "{0} events collected".format(len(trace))
    )
