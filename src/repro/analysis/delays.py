"""Message delay analysis.

Once sends are matched to receives and clock skew is estimated, the
trace yields end-to-end message delays -- the communication costs a
performance study needs (one of the "communications statistics" of
[Miller 84]).  Raw local timestamps would make cross-machine delays
meaningless (even negative); delays here are computed on
skew-corrected times.
"""

import numpy as np

from repro.analysis.ordering import estimate_clock_skews


class MessageDelays:
    """Per-message and per-process-pair delay statistics."""

    def __init__(self, trace, matcher=None, skews=None):
        self.trace = trace
        self.matcher = matcher or trace.matcher()
        self.skews = (
            skews
            if skews is not None
            else estimate_clock_skews(trace, self.matcher)
        )
        #: (src process, dst process) -> [corrected delays in ms]
        self.by_pair = {}
        self.delays = []
        for pair in self.matcher.pairs:
            send_t = pair.send.local_time - self.skews.get(pair.send.machine, 0.0)
            recv_t = pair.recv.local_time - self.skews.get(pair.recv.machine, 0.0)
            delay = recv_t - send_t
            self.delays.append(delay)
            key = (pair.send.process, pair.recv.process)
            self.by_pair.setdefault(key, []).append(delay)

    def count(self):
        return len(self.delays)

    def mean(self):
        return float(np.mean(self.delays)) if self.delays else 0.0

    def minimum(self):
        return float(np.min(self.delays)) if self.delays else 0.0

    def maximum(self):
        return float(np.max(self.delays)) if self.delays else 0.0

    def percentile(self, q):
        return float(np.percentile(self.delays, q)) if self.delays else 0.0

    def negative_fraction(self):
        """Fraction of corrected delays below zero: residual skew the
        offset estimate could not remove (should be ~0)."""
        if not self.delays:
            return 0.0
        return sum(1 for d in self.delays if d < 0) / len(self.delays)

    def pair_means(self):
        return {
            key: float(np.mean(values)) for key, values in self.by_pair.items()
        }

    def report(self):
        if not self.delays:
            return "Message delays: no matched messages"
        lines = [
            "Message delays ({0} matched messages)".format(self.count()),
            "  mean {0:.2f} ms   min {1:.2f}   p90 {2:.2f}   max {3:.2f}".format(
                self.mean(), self.minimum(), self.percentile(90), self.maximum()
            ),
        ]
        for (src, dst), mean in sorted(self.pair_means().items()):
            lines.append(
                "  {0} -> {1}: {2:.2f} ms mean over {3} messages".format(
                    src, dst, mean, len(self.by_pair[(src, dst)])
                )
            )
        return "\n".join(lines)
