"""Event record descriptions (Figure 3.2)."""

import pytest

from repro.filtering.descriptions import (
    default_description_set,
    default_descriptions_text,
    parse_descriptions,
)
from repro.metering.messages import EVENT_TYPES, MessageCodec
from repro.net.addresses import InternetName


def test_default_text_parses():
    ds = parse_descriptions(default_descriptions_text())
    assert set(ds.by_type) == set(EVENT_TYPES.values())


def test_default_text_has_figure_3_2_send_line():
    text = default_descriptions_text()
    send_lines = [l for l in text.splitlines() if l.startswith("SEND")]
    assert send_lines == [
        "SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10 "
        "destNameLen,16,4,10 destName,20,16,16"
    ]


def test_header_line_lists_standard_fields():
    text = default_descriptions_text()
    assert text.splitlines()[0] == "HEADER size machine cpuTime procTime traceType"


def test_descriptions_decode_matches_codec_decode():
    """The filter's description-driven decode and the kernel codec must
    agree on every field -- this IS the meter/filter protocol."""
    codec = MessageCodec({1: "red", 2: "green"})
    ds = default_description_set()
    dest = InternetName("green", 7777, 2)
    raw = codec.encode(
        "send",
        machine=1,
        cpu_time=55,
        proc_time=10,
        pid=2117,
        pc=9,
        sock=0x2030,
        msgLength=64,
        destName=dest,
        **codec.name_lengths(destName=dest)
    )
    via_codec = codec.decode(raw)
    via_descriptions = ds.decode_message(raw, {1: "red", 2: "green"})
    for key in ("machine", "cpuTime", "procTime", "pid", "pc", "sock",
                "msgLength", "destNameLen", "destName", "event"):
        assert via_descriptions[key] == via_codec[key], key


def test_all_events_decodable_via_descriptions():
    codec = MessageCodec()
    ds = default_description_set()
    from repro.metering import messages

    for event in EVENT_TYPES:
        body = {
            name: 5 for name, kind in messages.BODY_FIELDS[event] if kind == "long"
        }
        raw = codec.encode(event, machine=1, cpu_time=1, proc_time=0, **body)
        record = ds.decode_message(raw)
        assert record["event"] == event
        for name in body:
            assert record[name] == 5


def test_unknown_trace_type_raises():
    ds = default_description_set()
    raw = bytearray(60)
    raw[0:4] = (60).to_bytes(4, "big")
    raw[20:24] = (77).to_bytes(4, "big")
    with pytest.raises(ValueError):
        ds.decode_message(bytes(raw))


def test_bad_field_spec_raises():
    with pytest.raises(ValueError):
        parse_descriptions("SEND 1, pid,0,4\n")


def test_custom_description_subset():
    """A user can describe only the fields they care about."""
    ds = parse_descriptions("SEND 1, pid,0,4,10 msgLength,12,4,10\n")
    codec = MessageCodec()
    raw = codec.encode(
        "send",
        machine=1,
        cpu_time=0,
        proc_time=0,
        pid=7,
        pc=1,
        sock=2,
        msgLength=99,
        destName=None,
        destNameLen=0,
    )
    record = ds.decode_message(raw)
    assert record["pid"] == 7
    assert record["msgLength"] == 99
    assert "sock" not in record


def test_field_order_headers_first():
    ds = default_description_set()
    order = ds.field_order("send")
    assert order[:6] == ["event", "size", "machine", "cpuTime", "procTime", "traceType"]
    assert order[6:] == ["pid", "pc", "sock", "msgLength", "destNameLen", "destName"]


def test_compiled_body_decode_matches_per_field_decode():
    """The per-event compiled struct must read exactly what the
    interpreted field-by-field decode reads, for every Appendix-A
    event and for gapped custom layouts."""
    from repro.metering import messages

    hosts = {1: "red", 2: "green", 3: "blue"}
    ds = default_description_set()
    codec = MessageCodec(hosts)
    name = InternetName("green", 5100, 2)
    bodies = {
        "send": dict(pid=7, pc=2, sock=3, msgLength=512, destName=name,
                     **codec.name_lengths(destName=name)),
        "accept": dict(pid=7, pc=2, sock=3, newSock=4, sockName=name,
                       peerName=name,
                       **codec.name_lengths(sockName=name, peerName=name)),
        "termproc": dict(pid=7, pc=2, status=-1),
    }
    for event, body in bodies.items():
        raw = codec.encode(event, machine=1, cpu_time=50, proc_time=10, **body)
        desc = ds.by_type[messages.EVENT_TYPES[event]]
        assert desc._compiled is not None
        compiled = desc.decode_body(raw, hosts, offset=messages.HEADER_BYTES)
        interpreted = {
            field.name: field.decode(raw[messages.HEADER_BYTES :], hosts)
            for field in desc.fields
        }
        assert compiled == interpreted

    # Gapped subset layout: pad bytes cover the skipped fields.
    subset = parse_descriptions("SEND 1, pid,0,4,10 msgLength,12,4,10\n")
    desc = subset.by_type[1]
    assert desc._compiled is not None
    raw = codec.encode(
        "send", machine=1, cpu_time=0, proc_time=0,
        pid=9, pc=1, sock=2, msgLength=77, destName=None, destNameLen=0,
    )
    assert desc.decode_body(raw, hosts, offset=messages.HEADER_BYTES) == {
        "pid": 9,
        "msgLength": 77,
    }


def test_irregular_description_falls_back_to_per_field_decode():
    """A 3-byte field has no struct code; the interpreted decode must
    still serve it (and overlapping fields must not compile)."""
    import struct

    ds = parse_descriptions("SEND 1, weird,1,3,10\n")
    desc = ds.by_type[1]
    assert desc._compiled is None
    header = struct.pack(">ih2xi4xii", 64, 1, 50, 10, 1)
    raw = header + b"\x00\x01\x02\x03\x04\x05" + b"\x00" * 34
    record = ds.decode_message(raw)
    assert record["weird"] == 0x010203

    overlap = parse_descriptions("SEND 1, a,0,4,10 b,2,4,10\n")
    assert overlap.by_type[1]._compiled is None
    record = overlap.decode_message(raw)
    assert record["a"] == 0x00010203
    assert record["b"] == 0x02030405
