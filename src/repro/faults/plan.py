"""FaultPlan: a declarative, seed-reproducible schedule of faults.

A plan is an ordered list of :class:`FaultEvent` entries, each pinned
to an absolute simulated time.  Building a plan performs no action;
:class:`~repro.faults.injector.FaultInjector` arms it on a cluster.
Builder methods chain::

    plan = (FaultPlan()
            .kill_daemon(at_ms=150.0, machine="green")
            .partition(at_ms=200.0, groups=[["red", "blue", "yellow"], ["green"]])
            .heal(at_ms=400.0)
            .crash(at_ms=500.0, machine="red")
            .reboot(at_ms=800.0, machine="red"))

Every builder validates its arguments at call time -- a bad machine
name (when the plan was built with ``machines=...``), a negative time,
or a nonsense parameter (``flips <= 0``, ``loss`` outside [0, 1]) is a
``ValueError`` here, not a failure deep inside the injector mid-run.
Plans round-trip through JSON (:meth:`to_jsonable` /
:meth:`from_jsonable` / :meth:`to_json`), which is what the chaos
search engine stores in its replayable artifacts.
"""

import json
import math

# Fault kinds.
CRASH = "crash"
REBOOT = "reboot"
PARTITION = "partition"
HEAL = "heal"
LOSS_BURST = "loss_burst"
LATENCY_SPIKE = "latency_spike"
KILL_PROCESS = "kill_process"
KILL_CONTROLLER = "kill_controller"
RESTART_CONTROLLER = "restart_controller"
RESTART_DAEMON = "restart_daemon"
STORAGE_TORN_WRITE = "storage_torn_write"
STORAGE_DROP_FLUSH = "storage_drop_flush"
STORAGE_BIT_ROT = "storage_bit_rot"

#: Kinds that damage the storage medium (weakens trace-equality oracles).
STORAGE_KINDS = frozenset(
    (STORAGE_TORN_WRITE, STORAGE_DROP_FLUSH, STORAGE_BIT_ROT)
)
#: Kinds that destroy computation state the self-healing machinery does
#: not promise to recover (a crashed machine's processes are gone).
DESTRUCTIVE_KINDS = frozenset((CRASH, REBOOT))


class FaultEvent:
    """One scheduled fault: a kind, an absolute time, and arguments."""

    __slots__ = ("at_ms", "kind", "args")

    def __init__(self, at_ms, kind, **args):
        if not isinstance(at_ms, (int, float)) or not math.isfinite(at_ms):
            raise ValueError("fault time must be a finite number, got %r" % (at_ms,))
        if at_ms < 0:
            raise ValueError("fault time must be >= 0, got %r" % at_ms)
        self.at_ms = float(at_ms)
        self.kind = kind
        self.args = args

    def describe(self):
        details = " ".join(
            "{0}={1}".format(key, value)
            for key, value in sorted(self.args.items())
        )
        return "[{0:10.3f}] {1}{2}".format(
            self.at_ms, self.kind, " " + details if details else ""
        )

    def to_jsonable(self):
        """JSON-native form: ``{"at_ms": ..., "kind": ..., <args>}``."""
        entry = {"at_ms": self.at_ms, "kind": self.kind}
        for key, value in self.args.items():
            if key == "groups":
                value = [list(group) for group in value]
            entry[key] = value
        return entry

    def __repr__(self):
        return "FaultEvent({0!r}, at={1}, {2})".format(
            self.kind, self.at_ms, self.args
        )


class FaultPlan:
    """An ordered schedule of faults on the simulator clock.

    ``machines``, when given, is the set of valid machine names: every
    builder call naming a machine outside it raises ``ValueError``
    immediately.  Without it the check still happens, but only when the
    :class:`~repro.faults.injector.FaultInjector` arms the plan.
    """

    def __init__(self, machines=None):
        self.events = []
        self.machines = frozenset(machines) if machines is not None else None

    def _check_machine(self, machine):
        machine = str(machine)
        if not machine:
            raise ValueError("machine name must be non-empty")
        if self.machines is not None and machine not in self.machines:
            raise ValueError(
                "fault plan names unknown machine {0!r} (plan allows: "
                "{1})".format(machine, ", ".join(sorted(self.machines)))
            )
        return machine

    def _add(self, at_ms, kind, **args):
        self.events.append(FaultEvent(at_ms, kind, **args))
        return self

    # -- machines --------------------------------------------------------

    def crash(self, at_ms, machine):
        """Power the machine off: processes die unflushed, peers see
        connection resets, in-flight traffic is destroyed."""
        return self._add(at_ms, CRASH, machine=self._check_machine(machine))

    def reboot(self, at_ms, machine, restart_daemon=True):
        """Bring a crashed machine back with a cold kernel.  With
        ``restart_daemon`` (and a session armed on the injector) a fresh
        meterdaemon is spawned, as init would."""
        return self._add(
            at_ms,
            REBOOT,
            machine=self._check_machine(machine),
            restart_daemon=bool(restart_daemon),
        )

    # -- network ---------------------------------------------------------

    def partition(self, at_ms, groups):
        """Split the internetwork into ``groups`` (lists of machine
        names); traffic crosses no group boundary and in-flight reliable
        traffic across the cut is destroyed.  Hosts in no group share
        one implicit group."""
        frozen = tuple(
            tuple(self._check_machine(name) for name in group)
            for group in groups
        )
        if not frozen:
            raise ValueError("partition needs at least one group")
        if any(not group for group in frozen):
            raise ValueError("partition groups must be non-empty")
        seen = set()
        for group in frozen:
            for name in group:
                if name in seen:
                    raise ValueError(
                        "machine {0!r} appears in two partition "
                        "groups".format(name)
                    )
                seen.add(name)
        return self._add(at_ms, PARTITION, groups=frozen)

    def heal(self, at_ms):
        """End the partition.  Connections broken by it stay broken;
        new connections succeed."""
        return self._add(at_ms, HEAL)

    def loss_burst(self, at_ms, duration_ms, loss):
        """Add ``loss`` (0..1) datagram loss probability on remote links
        for ``duration_ms``."""
        duration_ms, loss = float(duration_ms), float(loss)
        if duration_ms <= 0:
            raise ValueError("loss_burst duration must be > 0, got %r" % duration_ms)
        if not 0.0 <= loss <= 1.0:
            raise ValueError("loss probability must be in [0, 1], got %r" % loss)
        return self._add(at_ms, LOSS_BURST, duration_ms=duration_ms, loss=loss)

    def latency_spike(self, at_ms, duration_ms, extra_ms):
        """Add ``extra_ms`` one-way latency on remote links for
        ``duration_ms``."""
        duration_ms, extra_ms = float(duration_ms), float(extra_ms)
        if duration_ms <= 0:
            raise ValueError(
                "latency_spike duration must be > 0, got %r" % duration_ms
            )
        if extra_ms <= 0:
            raise ValueError(
                "latency_spike extra_ms must be > 0, got %r" % extra_ms
            )
        return self._add(
            at_ms, LATENCY_SPIKE, duration_ms=duration_ms, extra_ms=extra_ms
        )

    # -- processes -------------------------------------------------------

    def kill_process(self, at_ms, machine, program):
        """SIGKILL every live process named ``program`` on ``machine``."""
        if not str(program):
            raise ValueError("kill_process needs a program name")
        return self._add(
            at_ms,
            KILL_PROCESS,
            machine=self._check_machine(machine),
            program=str(program),
        )

    def kill_daemon(self, at_ms, machine):
        """SIGKILL the machine's meterdaemon (control plane loss)."""
        return self.kill_process(at_ms, machine, "meterdaemon")

    def kill_filter(self, at_ms, machine):
        """SIGKILL every filter process on ``machine`` (its daemon is
        expected to notice and relaunch them)."""
        return self.kill_process(at_ms, machine, "filter")

    def restart_daemon(self, at_ms, machine):
        """Spawn a fresh meterdaemon on ``machine`` (init restarting a
        crashed daemon; pair with :meth:`kill_daemon`).  Requires a
        session armed on the injector."""
        return self._add(
            at_ms, RESTART_DAEMON, machine=self._check_machine(machine)
        )

    # -- storage ---------------------------------------------------------

    def storage_torn_write(self, at_ms, machine, path_prefix, drop_bytes):
        """Tear the tail off the newest file matching ``path_prefix``
        on ``machine`` (the last ``drop_bytes`` bytes never reached the
        platter).  Pair with :meth:`crash` at the same instant for a
        realistic power-fail torn write; a trace-store segment damaged
        this way reads back as a torn tail / salvageable segment."""
        drop_bytes = int(drop_bytes)
        if drop_bytes <= 0:
            raise ValueError(
                "storage_torn_write drop_bytes must be > 0, got %r" % drop_bytes
            )
        return self._add(
            at_ms,
            STORAGE_TORN_WRITE,
            machine=self._check_machine(machine),
            path_prefix=self._check_path_prefix(path_prefix),
            drop_bytes=drop_bytes,
        )

    def storage_drop_flush(self, at_ms, machine, path_prefix):
        """Arm a one-shot medium lie on ``machine``: the next guest
        write to a file matching ``path_prefix`` is acknowledged but
        silently discarded (a dropped sync).  Detected by per-frame
        CRCs / salvage accounting on read."""
        return self._add(
            at_ms,
            STORAGE_DROP_FLUSH,
            machine=self._check_machine(machine),
            path_prefix=self._check_path_prefix(path_prefix),
        )

    def storage_bit_rot(self, at_ms, machine, path_prefix, flips=1, seed=0):
        """Flip ``flips`` seed-chosen bits across the at-rest bytes of
        every file matching ``path_prefix`` on ``machine`` (bit rot /
        post-crash corruption).  Deterministic: same seed, same bits."""
        flips = int(flips)
        if flips <= 0:
            raise ValueError("storage_bit_rot flips must be > 0, got %r" % flips)
        return self._add(
            at_ms,
            STORAGE_BIT_ROT,
            machine=self._check_machine(machine),
            path_prefix=self._check_path_prefix(path_prefix),
            flips=flips,
            seed=int(seed),
        )

    @staticmethod
    def _check_path_prefix(path_prefix):
        path_prefix = str(path_prefix)
        if not path_prefix:
            raise ValueError("storage fault needs a non-empty path_prefix")
        return path_prefix

    # -- the controller ---------------------------------------------------

    def kill_controller(self, at_ms):
        """SIGKILL the session's control process (the user's tool
        crashes; the session journal survives).  Requires a session
        armed on the injector."""
        return self._add(at_ms, KILL_CONTROLLER)

    def restart_controller(self, at_ms):
        """Start a fresh control process on the session's terminal
        (killing any survivor first).  The operator then types
        ``resume``.  Requires a session armed on the injector."""
        return self._add(at_ms, RESTART_CONTROLLER)

    # --------------------------------------------------------------------

    def sorted_events(self):
        """Events in firing order (time, then declaration order)."""
        return sorted(
            enumerate(self.events), key=lambda pair: (pair[1].at_ms, pair[0])
        )

    def describe(self):
        """Human-readable schedule, one line per fault."""
        return [event.describe() for __, event in self.sorted_events()]

    def kinds(self):
        """The set of fault kinds this plan schedules."""
        return {event.kind for event in self.events}

    def has_kind(self, kind):
        return any(event.kind == kind for event in self.events)

    # -- serialization ---------------------------------------------------

    def to_jsonable(self):
        """The schedule as a JSON-native list, in declaration order."""
        return [event.to_jsonable() for event in self.events]

    def to_json(self):
        """Canonical serialized form: byte-identical for identical
        plans (the chaos generator's determinism contract)."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_jsonable(cls, entries, machines=None):
        """Rebuild a plan from :meth:`to_jsonable` output.  Every entry
        passes back through its builder method, so deserialization
        applies the same validation as construction."""
        plan = cls(machines=machines)
        for entry in entries:
            args = dict(entry)
            try:
                at_ms = args.pop("at_ms")
                kind = args.pop("kind")
            except KeyError as err:
                raise ValueError("fault entry missing {0}".format(err))
            builder = getattr(plan, kind, None)
            if builder is None or kind not in _BUILDER_KINDS:
                raise ValueError("unknown fault kind {0!r}".format(kind))
            builder(at_ms, **args)
        return plan

    def shifted(self, delta_ms):
        """A copy with every time moved by ``delta_ms`` (used to pin a
        relative schedule to the moment a workload starts)."""
        entries = self.to_jsonable()
        for entry in entries:
            entry["at_ms"] = entry["at_ms"] + delta_ms
        return type(self).from_jsonable(entries, machines=self.machines)

    def __len__(self):
        return len(self.events)


#: Kinds reachable through from_jsonable (method name == kind).
_BUILDER_KINDS = frozenset(
    (
        CRASH,
        REBOOT,
        PARTITION,
        HEAL,
        LOSS_BURST,
        LATENCY_SPIKE,
        KILL_PROCESS,
        RESTART_DAEMON,
        STORAGE_TORN_WRITE,
        STORAGE_DROP_FLUSH,
        STORAGE_BIT_ROT,
        KILL_CONTROLLER,
        RESTART_CONTROLLER,
    )
)
