"""Ping-pong: round-trip latency over a stream connection.

The minimal two-process computation; its message pairs give the
ordering analysis the cleanest send-before-receive evidence.
"""

from repro import guestlib
from repro.kernel import defs


def pingpong_server(sys, argv):
    """argv: [port, rounds]."""
    port = int(argv[0]) if len(argv) > 0 else 5100
    rounds = int(argv[1]) if len(argv) > 1 else 10

    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", port))
    yield sys.listen(fd, 1)
    conn, __ = yield sys.accept(fd)
    for __i in range(rounds):
        data = yield from guestlib.read_exactly(sys, conn, 8)
        if data is None:
            break
        yield sys.write(conn, data)
    yield sys.close(conn)
    yield sys.exit(0)


def pingpong_client(sys, argv):
    """argv: [server, port, rounds] -- reports the average round trip
    measured on its own (drifting!) local clock."""
    server = argv[0] if len(argv) > 0 else "red"
    port = int(argv[1]) if len(argv) > 1 else 5100
    rounds = int(argv[2]) if len(argv) > 2 else 10

    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (server, port)
    )
    start = yield sys.gettimeofday()
    for i in range(rounds):
        yield sys.write(fd, i.to_bytes(8, "big"))
        yield from guestlib.read_exactly(sys, fd, 8)
    end = yield sys.gettimeofday()
    avg_us = 1000.0 * (end - start) / rounds
    yield sys.write(1, b"avg round trip %d us\n" % int(avg_us))
    yield sys.close(fd)
    yield sys.exit(0)
