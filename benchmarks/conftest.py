"""Shared builders for the benchmark harness.

Every figure and appendix of the paper has one benchmark module here
(see DESIGN.md, per-experiment index).  Each bench regenerates the
paper artifact -- asserting its *shape* -- and measures the cost of the
code paths involved.  EXPERIMENTS.md records paper-vs-measured.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.metering.messages import MessageCodec
from repro.net.addresses import InternetName
from repro.programs import install_all

HOSTS = {1: "red", 2: "green", 3: "blue", 4: "yellow"}


def fresh_session(seed=7, clock_skew=None, net_params=None):
    cluster = Cluster(seed=seed, clock_skew=clock_skew, net_params=net_params)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    return session


def synthetic_send_records(n, codec=None):
    """n encoded send messages with varying fields (filter workloads)."""
    codec = codec or MessageCodec(HOSTS)
    wire = []
    for i in range(n):
        dest = InternetName(HOSTS[(i % 4) + 1], 6000 + i % 8, (i % 4) + 1)
        wire.append(
            codec.encode(
                "send",
                machine=(i % 4) + 1,
                cpu_time=i * 3,
                proc_time=(i // 10) * 10,
                pid=2100 + i % 5,
                pc=i,
                sock=0x1000 + 16 * (i % 6),
                msgLength=16 * (1 + i % 64),
                destName=dest,
                **codec.name_lengths(destName=dest)
            )
        )
    return wire


@pytest.fixture
def codec():
    return MessageCodec(HOSTS)
