"""Analysis routines: the third measurement stage (Section 3.3).

"The analysis routines provide the means for interpreting the traces
created by filters.  They give meaning to the data by summarizing and
operating on the event records collected."  The paper points to three
families of analyses performed with the tool ([Miller 84]):
communications statistics, measurement of parallelism, and structural
studies; Section 4.1 adds the deduction of global event orderings from
message causality.  All four live here, and all of them work purely
from filter log files -- never from simulator internals.
"""

from repro.analysis.debugging import TraceAudit
from repro.analysis.delays import MessageDelays
from repro.analysis.matching import MessageMatcher
from repro.analysis.ordering import (
    HappensBefore,
    estimate_clock_models,
    estimate_clock_skews,
)
from repro.analysis.parallelism import ParallelismProfile
from repro.analysis.stats import CommunicationStatistics
from repro.analysis.structure import CommunicationGraph
from repro.analysis.timeline import Timeline, render_timeline
from repro.analysis.trace import Event, Trace

__all__ = [
    "TraceAudit",
    "MessageDelays",
    "MessageMatcher",
    "HappensBefore",
    "estimate_clock_models",
    "estimate_clock_skews",
    "ParallelismProfile",
    "CommunicationStatistics",
    "CommunicationGraph",
    "Timeline",
    "render_timeline",
    "Event",
    "Trace",
]
