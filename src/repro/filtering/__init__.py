"""Filtering: selection and reduction of meter event records.

The second stage of the measurement model (Section 2.2 / 3.4).  A
filter process receives meter messages on its standard input (a
listening meter socket set up by the meterdaemon), decodes them using
*event record descriptions* (Figure 3.2), applies *selection rules*
(Figures 3.3-3.4), and appends accepted -- possibly reduced -- records
to its log file under ``/usr/tmp``.
"""

from repro.filtering.descriptions import (
    DescriptionSet,
    default_descriptions_text,
    parse_descriptions,
)
from repro.filtering.records import format_record, parse_record_line
from repro.filtering.rules import Rule, RuleSet, parse_rules

__all__ = [
    "DescriptionSet",
    "default_descriptions_text",
    "parse_descriptions",
    "format_record",
    "parse_record_line",
    "Rule",
    "RuleSet",
    "parse_rules",
]
