"""Test harness: a minimal in-test filter and setmeter rigging.

Lets metering tests observe the exact records a real filter would see,
without standing up the whole measurement system.
"""

from repro.kernel import defs
from repro.metering import flags as mf
from repro.metering.messages import MessageCodec, decode_stream

COLLECT_PORT = 4400


def start_collector(cluster, machine="blue", port=COLLECT_PORT):
    """Spawn a guest that accepts meter connections and decodes every
    meter message into the returned list."""
    records = []
    codec = MessageCodec(cluster.host_table.names_by_id())

    def collector(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", port))
        yield sys.listen(fd, defs.SOMAXCONN)
        conns = {}
        while True:
            ready, __ = yield sys.select([fd] + list(conns))
            for ready_fd in ready:
                if ready_fd == fd:
                    conn, __peer = yield sys.accept(fd)
                    conns[conn] = b""
                    continue
                data = yield sys.read(ready_fd, 8192)
                if not data:
                    yield sys.close(ready_fd)
                    del conns[ready_fd]
                    continue
                buf = conns[ready_fd] + data
                recs, buf = decode_stream(buf, codec)
                records.extend(recs)
                conns[ready_fd] = buf

    proc = cluster.spawn(machine, collector, uid=0, program_name="collector")
    return records, proc


def rig_meter(cluster, machine, target_pid, flags, port=COLLECT_PORT, filter_host="blue", uid=0):
    """Run a root rigger guest that connects a meter socket to the
    collector and setmeters the target.  Returns the rigger proc."""

    def rigger(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.connect(fd, (filter_host, port))
        yield sys.setmeter(target_pid, flags, fd)
        yield sys.close(fd)
        yield sys.exit(0)

    proc = cluster.spawn(machine, rigger, uid=uid, program_name="rigger")
    cluster.run_until_exit([proc])
    return proc


def metered_spawn(cluster, machine, main, argv=(), flags=mf.M_ALL | mf.M_IMMEDIATE, uid=100):
    """Spawn a guest suspended, rig its metering, start it."""
    proc = cluster.spawn(machine, main, argv=argv, uid=uid, start=False)
    rig_meter(cluster, machine, proc.pid, flags)
    cluster.machine(machine).continue_proc(proc)
    return proc
