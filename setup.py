"""Legacy setup shim: lets ``pip install -e .`` work offline (no wheel
package available), falling back to setuptools' develop mode."""

from setuptools import setup

setup()
