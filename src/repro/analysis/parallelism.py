"""Measurement of parallelism (one of the [Miller 84] analyses).

From a trace alone we can see, per process, when it was actively
producing events and how much CPU it was charged (``procTime``).  The
profile divides skew-corrected global time into buckets and counts the
processes active in each; its average is the effective parallelism of
the computation -- the number the paper's TSP study ([Lai & Miller 84])
used to find that the "parallel" solver was mostly serialized.
"""

from repro.analysis.ordering import estimate_clock_skews


class ParallelismProfile:
    """Activity-over-time profile of a computation."""

    def __init__(self, trace, bucket_ms=10.0, matcher=None):
        self.trace = trace
        self.bucket_ms = float(bucket_ms)
        self.matcher = matcher or trace.matcher()
        self.skews = estimate_clock_skews(trace, self.matcher)
        #: process -> (first, last) corrected activity times
        self.spans = {}
        for process in trace.processes():
            events = trace.events_for(process)
            times = [self._corrected(event) for event in events]
            self.spans[process] = (min(times), max(times))
        self.start = min((span[0] for span in self.spans.values()), default=0.0)
        self.end = max((span[1] for span in self.spans.values()), default=0.0)
        self.buckets = self._fill_buckets()

    def _corrected(self, event):
        return event.local_time - self.skews.get(event.machine, 0.0)

    def _fill_buckets(self):
        if self.end <= self.start:
            return [len(self.spans)] if self.spans else []
        count = max(1, int((self.end - self.start) / self.bucket_ms) + 1)
        buckets = [0] * count
        for first, last in self.spans.values():
            lo = int((first - self.start) / self.bucket_ms)
            hi = int((last - self.start) / self.bucket_ms)
            for i in range(lo, min(hi, count - 1) + 1):
                buckets[i] += 1
        return buckets

    # ------------------------------------------------------------------

    def average_parallelism(self):
        """Mean number of simultaneously-active processes."""
        if not self.buckets:
            return 0.0
        return sum(self.buckets) / len(self.buckets)

    def peak_parallelism(self):
        return max(self.buckets) if self.buckets else 0

    def elapsed_ms(self):
        return self.end - self.start

    def total_cpu_ms(self):
        """Sum of final procTime per process: total work performed."""
        total = 0
        for process in self.trace.processes():
            events = self.trace.events_for(process)
            total += max(event.proc_time for event in events)
        return total

    def cpu_parallelism(self):
        """Total CPU / elapsed: parallelism weighted by real work, at
        the 10 ms granularity the paper warns about."""
        elapsed = self.elapsed_ms()
        if elapsed <= 0:
            return float(len(self.spans))
        return self.total_cpu_ms() / elapsed

    def report(self):
        lines = ["Parallelism profile"]
        lines.append(
            "  {0} processes over {1:.0f} ms (bucket {2:.0f} ms)".format(
                len(self.spans), self.elapsed_ms(), self.bucket_ms
            )
        )
        lines.append(
            "  average active processes: {0:.2f}  peak: {1}".format(
                self.average_parallelism(), self.peak_parallelism()
            )
        )
        lines.append(
            "  total CPU {0:.0f} ms -> CPU parallelism {1:.2f}".format(
                self.total_cpu_ms(), self.cpu_parallelism()
            )
        )
        return "\n".join(lines)
