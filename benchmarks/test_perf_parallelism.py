"""P6 -- Measurement of parallelism ([Miller 84] study family).

The analysis that exposed the TSP bug, validated on a workload whose
true parallelism is known: a master/worker job with N workers should
show CPU parallelism that grows with N (and the trace alone should
reveal it).
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.analysis import ParallelismProfile, Trace

WORKER_MACHINES = ("red", "green", "blue")


def _run(nworkers, seed=12):
    session = fresh_session(seed=seed)
    session.command("filter f1 blue")
    session.command("newjob mw")
    session.command(
        "addprocess mw yellow mwmaster 5400 {0} 12 25".format(nworkers)
    )
    for i in range(nworkers):
        session.command(
            "addprocess mw {0} mwworker yellow 5400".format(
                WORKER_MACHINES[i % len(WORKER_MACHINES)]
            )
        )
    session.command("setflags mw all")
    session.command("startjob mw")
    session.settle()
    return ParallelismProfile(Trace(session.read_trace("f1")))


@pytest.mark.parametrize("nworkers", [1, 2, 3])
def test_perf_parallelism_scaling(benchmark, nworkers):
    profile = benchmark.pedantic(_run, args=(nworkers,), rounds=1, iterations=1)
    print(
        "\n[P6] {0} workers: elapsed {1:7.1f} ms, cpu parallelism "
        "{2:4.2f}, peak active {3}".format(
            nworkers,
            profile.elapsed_ms(),
            profile.cpu_parallelism(),
            profile.peak_parallelism(),
        )
    )
    assert profile.peak_parallelism() == nworkers + 1  # + the master


def test_perf_parallelism_grows_with_workers(benchmark):
    def sweep():
        return [_run(n) for n in (1, 2, 3)]

    one, two, three = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert one.cpu_parallelism() < two.cpu_parallelism() < three.cpu_parallelism()
    assert one.elapsed_ms() > two.elapsed_ms() > three.elapsed_ms()
