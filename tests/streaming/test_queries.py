"""Unit tests for the continuous-query folds, driven directly with
synthetic events (no cluster)."""

import pytest

from repro.streaming.engine import StreamEvent
from repro.streaming.queries import (
    DEFAULT_QUERY_WINDOW_MS,
    QUERY_KINDS,
    make_query,
)


def _event(event="send", machine=1, pid=10, proc_seq=0, time=0.0,
           length=64, dest="red", in_matching=False, index=0):
    record = {
        "event": event,
        "machine": machine,
        "pid": pid,
        "cpuTime": time,
        "procTime": time,
        "msgLength": length,
        "destName": dest,
    }
    ev = StreamEvent(record, index, proc_seq)
    ev.in_matching = in_matching
    return ev


class Recorder:
    def __init__(self):
        self.firings = []

    def __call__(self, query, details):
        self.firings.append((query.qid, dict(details)))


def test_make_query_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_query(1, {"kind": "bogus"})
    with pytest.raises(ValueError):
        make_query(1, {})


def test_window_spelling_both_accepted():
    by_cli = make_query(1, {"kind": "quiet", "window": 200})
    by_api = make_query(1, {"kind": "quiet", "window_ms": 200})
    assert by_cli.window_ms == by_api.window_ms == 200.0
    assert make_query(1, {"kind": "quiet"}).window_ms == DEFAULT_QUERY_WINDOW_MS


def test_undelivered_fires_after_window_only():
    fire = Recorder()
    q = make_query(7, {"kind": "undelivered", "window_ms": 100})
    send = _event(time=50.0, in_matching=True)
    q.on_event(send, 50.0, fire)
    q.advance(120.0, fire)  # 50 + 100 > 120: still within the window
    assert fire.firings == []
    q.advance(151.0, fire)
    assert len(fire.firings) == 1
    qid, details = fire.firings[0]
    assert qid == 7
    assert details["process"] == "1:10"
    assert details["proc_seq"] == 0
    assert details["dest"] == "red"
    # fires once per send -- nothing left pending
    q.advance(1000.0, fire)
    assert len(fire.firings) == 1 and q.state_size() == 0


def test_undelivered_paired_send_never_fires():
    fire = Recorder()
    q = make_query(1, {"kind": "undelivered", "window_ms": 100})
    send = _event(time=50.0, in_matching=True)
    recv = _event(event="receive", machine=2, pid=20, time=60.0)
    q.on_event(send, 50.0, fire)
    q.on_pair(send, recv, 60.0, fire)
    q.advance(1000.0, fire)
    assert fire.firings == []


def test_undelivered_ignores_sends_outside_matching():
    fire = Recorder()
    q = make_query(1, {"kind": "undelivered", "window_ms": 100})
    q.on_event(_event(time=10.0, in_matching=False), 10.0, fire)
    assert q.state_size() == 0


def test_pattern_counts_within_window_and_rearms():
    fire = Recorder()
    q = make_query(2, {"kind": "pattern", "rule": "event=send,msgLength>=100",
                       "count": 2, "window_ms": 100})
    q.on_event(_event(time=10.0, length=128), 10.0, fire)
    q.on_event(_event(time=20.0, length=64), 20.0, fire)  # rule rejects
    assert fire.firings == []
    q.on_event(_event(time=30.0, length=256), 30.0, fire)
    assert len(fire.firings) == 1
    assert fire.firings[0][1] == {"rule": "event=send,msgLength>=100",
                                  "count": 2}
    # Edge triggered: a third match while the condition holds stays quiet.
    q.on_event(_event(time=40.0, length=300), 40.0, fire)
    assert len(fire.firings) == 1
    # Window drains, query re-arms, a new burst fires again.
    q.advance(500.0, fire)
    q.on_event(_event(time=600.0, length=128), 600.0, fire)
    q.on_event(_event(time=610.0, length=128), 610.0, fire)
    assert len(fire.firings) == 2


def test_quiet_fires_once_and_termproc_disarms():
    fire = Recorder()
    q = make_query(3, {"kind": "quiet", "window_ms": 100})
    q.on_event(_event(machine=1, pid=10, time=10.0), 10.0, fire)
    q.on_event(_event(machine=2, pid=20, time=15.0), 15.0, fire)
    q.on_event(_event(event="termproc", machine=2, pid=20, time=16.0),
               16.0, fire)
    q.advance(300.0, fire)
    # Only the live-but-silent process fires; the terminated one does not.
    assert [d["process"] for __, d in fire.firings] == ["1:10"]
    q.advance(400.0, fire)  # edge triggered: no repeat
    assert len(fire.firings) == 1
    # New activity re-arms it.
    q.on_event(_event(machine=1, pid=10, time=500.0), 500.0, fire)
    q.advance(900.0, fire)
    assert len(fire.firings) == 2


def test_rate_threshold_per_machine_with_event_filter():
    fire = Recorder()
    q = make_query(4, {"kind": "rate", "threshold": 3, "event": "send",
                       "window_ms": 100})
    for i in range(3):
        q.on_event(_event(machine=1, time=10.0 + i), 12.0 + i, fire)
        q.on_event(_event(event="receive", machine=2, time=10.0 + i),
                   12.0 + i, fire)
    assert len(fire.firings) == 1
    assert fire.firings[0][1] == {"machine": 1, "count": 3, "event": "send"}
    # Filtered-out events never count toward the threshold.
    assert all(d["machine"] == 1 for __, d in fire.firings)
    # After the window drains the same machine can fire again.
    q.advance(500.0, fire)
    for i in range(3):
        q.on_event(_event(machine=1, time=600.0 + i), 600.0 + i, fire)
    assert len(fire.firings) == 2


def test_query_kinds_constant_matches_factories():
    for kind in QUERY_KINDS:
        q = make_query(1, {"kind": kind})
        assert q.kind == kind
        assert q.describe()["kind"] == kind
