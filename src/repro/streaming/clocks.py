"""Online vector clocks: the :class:`~repro.analysis.ordering.
HappensBefore` computation as a fold.

The batch engine runs one Kahn pass over the finished trace; here the
same clocks are produced as records arrive.  An event's clock cannot
be emitted until every predecessor's clock is known: the previous
event of its process, plus -- for a receive -- every matched send.
Sends are paired with receives by the online matcher, possibly *after*
the receive arrived, so receive nodes are added "open" and stay
unresolved until the matcher declares their send dependencies complete
(stream bytes fully covered, datagram claimed, or session finalized).
Everything else resolves as soon as its program-order predecessor has.

Equivalence with the batch pass: component ``i`` of a clock counts the
events of the ``i``-th process (first-appearance order, identical to
``Trace.processes()``) that happen before or at the event, and the
event's own component is forced to ``proc_seq + 1`` after the merge --
exactly ``HappensBefore._clocks``.  Clocks are dicts holding only
nonzero components, so they are also independent of how many processes
eventually appear.
"""

from collections import OrderedDict, deque


def merge_clock(acc, other):
    """Componentwise max of ``other`` into ``acc`` (both sparse dicts)."""
    for component, value in other.items():
        if value > acc.get(component, 0):
            acc[component] = value


class _Node:
    """One event awaiting (or holding) its clock."""

    __slots__ = ("event", "acc", "wait", "open", "succ", "clock")

    def __init__(self, event):
        self.event = event
        self.acc = {}  # merged clocks of already-resolved predecessors
        self.wait = 0  # unresolved predecessors
        self.open = False  # matcher may still add send dependencies
        self.succ = None  # nodes waiting on this clock (lazy list)
        self.clock = None


class OnlineVectorClocks:
    """Incremental vector clocks with O(1) happens-before queries.

    ``on_resolve(event, clock)`` fires once per event, in dependency
    order (not arrival order -- a digest over resolutions must be
    order-independent).  The last ``history`` resolved clocks are kept
    for :meth:`happens_before`; everything older is evicted, so memory
    is bounded by the in-flight frontier plus that window.
    """

    def __init__(self, on_resolve=None, history=4096):
        self.on_resolve = on_resolve
        #: process -> clock component index, first-appearance order
        #: (matches ``Trace.processes()``).
        self.proc_index = {}
        self._last = {}  # process -> most recent node (program order)
        self._ready = deque()
        self._unresolved = {}  # id(node) -> node, for finalize sweeps
        self.pending = 0
        self.resolved = 0
        #: process -> clock of its most recently *resolved* event.
        self.frontier = {}
        self._history_len = int(history)
        self._history = OrderedDict()  # (machine, pid, proc_seq) -> clock

    def component(self, process):
        index = self.proc_index.get(process)
        if index is None:
            index = self.proc_index[process] = len(self.proc_index)
        return index

    # -- building the order --------------------------------------------

    def add(self, event, defer=False):
        """Admit ``event`` (a StreamEvent); returns its node, also
        stored on ``event.node``.  With ``defer`` the node waits for
        :meth:`close` before it may resolve."""
        self.component(event.process)
        node = _Node(event)
        node.open = bool(defer)
        prev = self._last.get(event.process)
        if prev is not None:
            if prev.clock is not None:
                merge_clock(node.acc, prev.clock)
            else:
                node.wait += 1
                if prev.succ is None:
                    prev.succ = []
                prev.succ.append(node)
        self._last[event.process] = node
        self._unresolved[id(node)] = node
        self.pending += 1
        event.node = node
        if not node.open and node.wait == 0:
            self._ready.append(node)
        return node

    def add_dep(self, node, send_node):
        """A matched send happens before ``node`` (a receive)."""
        if send_node is node or node.clock is not None:
            return
        if send_node.clock is not None:
            merge_clock(node.acc, send_node.clock)
        else:
            node.wait += 1
            if send_node.succ is None:
                send_node.succ = []
            send_node.succ.append(node)

    def close(self, node):
        """The matcher declares all of ``node``'s send deps added."""
        if not node.open:
            return
        node.open = False
        if node.wait == 0 and node.clock is None:
            self._ready.append(node)

    def drain(self):
        """Resolve every node whose predecessors are all resolved."""
        ready = self._ready
        while ready:
            node = ready.popleft()
            if node.clock is not None:
                continue
            self._resolve(node)

    def _resolve(self, node):
        event = node.event
        clock = node.acc
        clock[self.proc_index[event.process]] = event.proc_seq + 1
        node.clock = clock
        node.acc = None
        del self._unresolved[id(node)]
        self.pending -= 1
        self.resolved += 1
        self.frontier[event.process] = clock
        history = self._history
        history[(event.machine, event.pid, event.proc_seq)] = clock
        if len(history) > self._history_len:
            history.popitem(last=False)
        if self.on_resolve is not None:
            self.on_resolve(event, clock)
        succ = node.succ
        if succ:
            node.succ = None
            for later in succ:
                if later.clock is not None:
                    continue
                merge_clock(later.acc, clock)
                later.wait -= 1
                if later.wait == 0 and not later.open:
                    self._ready.append(later)

    def finalize(self):
        """Resolve any leftovers best-effort, in arrival order -- the
        same escape hatch the batch engine uses for cyclic or truncated
        evidence.  A correctly closed stream leaves nothing here."""
        self.drain()
        while self._unresolved:
            stuck = min(
                self._unresolved.values(), key=lambda node: node.event.index
            )
            stuck.open = False
            self._resolve(stuck)
            self.drain()

    # -- queries -------------------------------------------------------

    def clock_of(self, machine, pid, proc_seq):
        """The (sparse) clock of one event, or None if it has not yet
        resolved or has left the history window."""
        return self._history.get((machine, pid, proc_seq))

    def happens_before(self, a, b):
        """Whether a -> b is deducible; a and b are (machine, pid,
        proc_seq) triples.  O(1): one clock-component lookup.  Returns
        None when b's clock is unavailable (unresolved or evicted)."""
        a = tuple(a)
        b = tuple(b)
        if a == b:
            return False
        clock_b = self._history.get(b)
        if clock_b is None:
            return None
        component = self.proc_index.get((a[0], a[1]))
        if component is None:
            return False
        return clock_b.get(component, 0) >= a[2] + 1

    def state_size(self):
        """In-flight state only: the bounded history is excluded so
        growth here means the frontier itself is growing."""
        return self.pending
