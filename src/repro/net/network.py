"""The internetwork: packet delivery between machines.

Two delivery services (paper Section 3.1):

- :meth:`Network.send_datagram` -- may drop packets, may reorder (each
  datagram gets independent jitter, so a later send can overtake an
  earlier one);
- :meth:`Network.send_reliable` -- per-channel FIFO delivery; never
  drops, never reorders.  The kernel's stream sockets and the meter
  connections ride on this, which is why "message delivery is
  guaranteed and messages arrive in the same order as they were sent".

Local (same-machine) traffic bypasses loss entirely: "Such links are
reliable when used within a single machine" (Section 3.5.2).
"""


class NetworkParams:
    """Tunable characteristics of the internetwork.

    Times in milliseconds.  Defaults roughly evoke a 1984 3Mb/10Mb
    Ethernet: ~1ms base latency, mild jitter, small datagram loss.
    """

    def __init__(
        self,
        base_latency_ms=1.0,
        jitter_ms=0.5,
        local_latency_ms=0.05,
        datagram_loss=0.0,
        bandwidth_bytes_per_ms=1250.0,
    ):
        self.base_latency_ms = float(base_latency_ms)
        self.jitter_ms = float(jitter_ms)
        self.local_latency_ms = float(local_latency_ms)
        self.datagram_loss = float(datagram_loss)
        self.bandwidth_bytes_per_ms = float(bandwidth_bytes_per_ms)


class Network:
    """Delivers packets between machines via the shared simulator."""

    def __init__(self, simulator, params=None):
        self.sim = simulator
        self.params = params or NetworkParams()
        #: channel key -> earliest time the next packet may arrive,
        #: used to keep reliable channels FIFO.
        self._channel_clearance = {}
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.reliable_packets_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------

    def _transit_time(self, src_host, dst_host, size_bytes, jittered):
        params = self.params
        if src_host is dst_host:
            latency = params.local_latency_ms
        else:
            latency = params.base_latency_ms
            if jittered and params.jitter_ms > 0:
                latency += self.sim.rng.uniform(0.0, params.jitter_ms)
        if params.bandwidth_bytes_per_ms > 0:
            latency += size_bytes / params.bandwidth_bytes_per_ms
        return latency

    # ------------------------------------------------------------------

    def send_datagram(self, src_host, dst_host, size_bytes, deliver):
        """Best-effort delivery; ``deliver()`` runs on arrival (if any).

        Returns True if the datagram was sent (False means it was
        dropped in transit; the sender is never told, as in UDP).
        """
        self.datagrams_sent += 1
        self.bytes_sent += size_bytes
        remote = src_host is not dst_host
        if remote and self.params.datagram_loss > 0:
            if self.sim.rng.random() < self.params.datagram_loss:
                self.datagrams_dropped += 1
                return False
        delay = self._transit_time(src_host, dst_host, size_bytes, jittered=True)
        self.sim.schedule(delay, deliver)
        return True

    def send_reliable(self, channel, src_host, dst_host, size_bytes, deliver):
        """Reliable FIFO delivery on ``channel`` (any hashable key).

        Packets on the same channel arrive in send order even when
        jitter would have reordered them; nothing is dropped.
        """
        self.reliable_packets_sent += 1
        self.bytes_sent += size_bytes
        delay = self._transit_time(src_host, dst_host, size_bytes, jittered=True)
        arrival = self.sim.now + delay
        clearance = self._channel_clearance.get(channel, 0.0)
        arrival = max(arrival, clearance)
        # Strictly increasing arrivals preserve FIFO under equal times too.
        self._channel_clearance[channel] = arrival + 1e-9
        self.sim.schedule_at(arrival, deliver)
        return True

    def close_channel(self, channel):
        """Forget FIFO state for a finished connection."""
        self._channel_clearance.pop(channel, None)
