"""Property tests for selection rules: reduction is sound, acceptance
is monotone in rule count."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.records import format_record, parse_record_line
from repro.filtering.rules import Rule, RuleSet, parse_rules

_FIELDS = ["machine", "pid", "sock", "msgLength", "cpuTime", "traceType"]

_records = st.fixed_dictionaries(
    {field: st.integers(min_value=0, max_value=10_000) for field in _FIELDS}
)

_ops = st.sampled_from(["=", "!=", "<", ">", "<=", ">="])


@st.composite
def _rule_texts(draw):
    n_conditions = draw(st.integers(min_value=1, max_value=4))
    conditions = []
    for __ in range(n_conditions):
        field = draw(st.sampled_from(_FIELDS))
        op = draw(_ops)
        discard = draw(st.booleans())
        wildcard = draw(st.booleans())
        if wildcard:
            value = "*"
            op = "="
        else:
            value = str(draw(st.integers(min_value=0, max_value=10_000)))
        conditions.append(
            "{0}{1}{2}{3}".format(field, op, "#" if discard else "", value)
        )
    return ", ".join(conditions)


@given(_records, st.lists(_rule_texts(), min_size=0, max_size=5))
@settings(max_examples=200)
def test_saved_record_is_subset_of_original(record, rule_lines):
    rules = parse_rules("\n".join(rule_lines))
    saved = rules.apply(dict(record))
    if saved is not None:
        for key, value in saved.items():
            assert record[key] == value
        assert set(saved) <= set(record)


@given(_records, st.lists(_rule_texts(), min_size=1, max_size=5))
@settings(max_examples=200)
def test_adding_rules_never_rejects_previously_accepted(record, rule_lines):
    """Acceptance is a disjunction over rules: supersets of rules
    accept supersets of records."""
    rules_small = parse_rules("\n".join(rule_lines[:-1]))
    rules_big = parse_rules("\n".join(rule_lines))
    if rules_small.rules and rules_small.apply(dict(record)) is not None:
        assert rules_big.apply(dict(record)) is not None


@given(_records, _rule_texts())
@settings(max_examples=200)
def test_rule_matching_is_deterministic(record, rule_text):
    rules = parse_rules(rule_text)
    first = rules.apply(dict(record))
    second = rules.apply(dict(record))
    assert first == second


@given(_records, _rule_texts())
@settings(max_examples=200)
def test_discards_only_remove_marked_fields(record, rule_text):
    rules = parse_rules(rule_text)
    saved = rules.apply(dict(record))
    if saved is None:
        return
    rule = rules.rules[0]
    if rule.matches(record):
        discarded = set(record) - set(saved)
        assert discarded <= rule.discard_fields()


@given(_records)
@settings(max_examples=100)
def test_log_line_round_trip(record):
    line = format_record(record)
    assert parse_record_line(line) == record


@given(_records, _rule_texts())
@settings(max_examples=200)
def test_rules_survive_serialization(record, rule_text):
    """Rendering conditions back to text parses to an equivalent rule."""
    rules = parse_rules(rule_text)
    rendered = "\n".join(
        ", ".join(cond.to_text() for cond in rule.conditions)
        for rule in rules.rules
    )
    reparsed = parse_rules(rendered)
    assert (rules.apply(dict(record)) is None) == (
        reparsed.apply(dict(record)) is None
    )
