"""The reliable-channel FIFO map must not leak: closed connections
release their clearance/host/pending entries (kernel teardown calls
Network.close_channel)."""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs
from repro.programs import install_all
from tests.conftest import run_guests, simple_stream_server


def _client(server, port):
    def main(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, (server, port)
        )
        yield sys.write(fd, b"hello")
        yield sys.read(fd, 4096)
        yield sys.close(fd)
        yield sys.exit(0)

    return main


def test_channel_state_drains_after_stream_teardown():
    cluster = Cluster(seed=11)
    run_guests(
        cluster,
        ("red", simple_stream_server(5000, count=1), ()),
        ("green", _client("red", 5000), ()),
    )
    net = cluster.network
    assert net._channel_clearance == {}
    assert net._channel_hosts == {}
    assert net._channel_pending == {}


def test_channel_state_stays_bounded_across_many_connections():
    cluster = Cluster(seed=11)
    for round_number in range(10):
        run_guests(
            cluster,
            ("red", simple_stream_server(5000 + round_number, count=1), ()),
            ("green", _client("red", 5000 + round_number), ()),
        )
    assert cluster.network._channel_clearance == {}


def test_measurement_session_run_drains_channel_state():
    """A full controller/daemon/filter session tears every connection
    down; nothing may linger in the channel maps once it quiesces."""
    cluster = Cluster(seed=11)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 10 64 2")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle()
    session.command("die")
    session.command("die")
    session.settle()
    assert cluster.network._channel_clearance == {}
    assert cluster.network._channel_hosts == {}
    assert cluster.network._channel_pending == {}
