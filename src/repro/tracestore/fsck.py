"""Offline store checking and repair (``python -m repro trace fsck``).

``fsck_store`` classifies every segment of a store without decoding it
into a trace (sealed-clean / open-clean / torn-tail / corrupt-frame /
bad-header / foreign), verifies each surviving frame (v2 CRC plus a
payload decode check), and totals the loss: records recovered, records
known lost (sealed footers record how many frames a segment held), and
bytes quarantined.

``repair_store`` rewrites a damaged store as a fresh copy containing
only the verified frames, re-sealing every segment with a rebuilt
footer in the current format version.  The copy re-reads clean by
construction; the original is never modified (fsck is an offline tool,
the medium may be the only evidence of what happened).  Batch-marker
control frames are not carried over -- the repaired copy is a plain
record store, like the output of ``trace pack``.
"""

from repro.metering.messages import MessageCodec, is_batch_marker
from repro.tracestore import format as sformat
from repro.tracestore import reader as sreader
from repro.tracestore.writer import StoreWriter, collect_ops


def fsck_store(reader):
    """Check one store; returns a report dict.

    ``segments`` holds one entry per segment file: the
    :meth:`Segment.verify` report extended with ``records_recovered``
    (frames that decode to records), ``records_expected`` (from the
    footer, sealed segments only) and ``records_lost`` (when known).
    ``totals`` aggregates, and ``clean`` is True when nothing was
    quarantined, skipped, or undecodable -- torn tails are expected
    crash loss and do not make a store unclean.
    """
    segments = []
    totals = {
        "segments": len(reader.segments),
        "records_recovered": 0,
        "records_lost_known": 0,
        "bytes_quarantined": 0,
        "torn_bytes": 0,
        "by_status": {},
    }
    for segment in reader.segments:
        report = segment.verify()
        report["records_recovered"] = 0
        report["records_expected"] = (
            segment.footer["records"] if segment.sealed else None
        )
        if segment.valid:
            frames, __gaps = segment.committed_salvage()
            for __, __mask, payload in frames:
                if is_batch_marker(payload):
                    continue
                try:
                    reader.codec.decode(payload)
                except ValueError:
                    # Counts as damage even where the frame structure
                    # verified (possible on v1: no frame CRC).
                    report["quarantined_bytes"] += len(payload) + (
                        sformat.frame_overhead(segment.version)
                    )
                    if report["status"] in (
                        sreader.SEALED_CLEAN,
                        sreader.OPEN_CLEAN,
                        sreader.TORN_TAIL,
                    ):
                        report["status"] = sreader.CORRUPT_FRAME
                    continue
                report["records_recovered"] += 1
        if report["records_expected"] is not None:
            report["records_lost"] = (
                report["records_expected"] - report["records_recovered"]
            )
        else:
            report["records_lost"] = None
        segments.append(report)
        totals["records_recovered"] += report["records_recovered"]
        if report["records_lost"]:
            totals["records_lost_known"] += report["records_lost"]
        totals["bytes_quarantined"] += report["quarantined_bytes"]
        totals["torn_bytes"] += report["torn_bytes"]
        status = report["status"]
        totals["by_status"][status] = totals["by_status"].get(status, 0) + 1
    clean = all(
        report["status"]
        in (sreader.SEALED_CLEAN, sreader.OPEN_CLEAN, sreader.TORN_TAIL)
        for report in segments
    )
    return {"segments": segments, "totals": totals, "clean": clean}


def repair_store(reader, out_base, segment_bytes=sformat.DEFAULT_SEGMENT_BYTES,
                 writer_driver=None):
    """Write a repaired copy of ``reader``'s store at ``out_base``.

    Every verified, decodable record frame is re-appended (discard
    masks preserved) through a fresh current-version writer, so the
    copy carries per-frame CRCs and rebuilt footers even when the
    source was v1 or had damaged footers.  ``writer_driver(writer)``
    applies the ops to a medium (e.g. ``flush_to_files``); without one
    the copy is returned as a dict path -> bytes.  Returns
    ``(result, writer, report)`` where report is the source store's
    :func:`fsck_store` output.
    """
    report = fsck_store(reader)
    host_names = dict(reader.codec.host_names)
    writer = StoreWriter(
        out_base, segment_bytes=segment_bytes, host_names=host_names
    )
    sink = {} if writer_driver is None else None
    codec = MessageCodec(host_names)
    for segment in reader.segments:
        if not segment.valid:
            continue
        frames, __gaps = segment.committed_salvage()
        for __, mask, payload in frames:
            if is_batch_marker(payload):
                continue
            try:
                codec.decode(payload)
            except ValueError:
                continue  # already accounted by fsck_store
            writer.append(payload, mask)
            if writer_driver is None:
                collect_ops(sink, writer)
            else:
                writer_driver(writer)
    writer.close()
    if writer_driver is None:
        collect_ops(sink, writer)
        return (
            {path: bytes(data) for path, data in sink.items()},
            writer,
            report,
        )
    writer_driver(writer)
    return None, writer, report


def format_report(report, verbose=True):
    """Human-readable fsck report lines (the CLI output)."""
    lines = []
    for seg in report["segments"]:
        parts = [
            "{0}: {1}".format(seg["path"], seg["status"]),
        ]
        if seg["version"] is not None:
            parts.append("v{0}".format(seg["version"]))
        if seg.get("compressed"):
            parts.append("zlib")
        parts.append("{0} record(s)".format(seg["records_recovered"]))
        if seg["markers"]:
            parts.append("{0} marker(s)".format(seg["markers"]))
        if seg["records_lost"]:
            parts.append("{0} lost".format(seg["records_lost"]))
        if seg["torn_bytes"]:
            parts.append("{0}B torn tail".format(seg["torn_bytes"]))
        if seg["quarantined_bytes"]:
            parts.append("{0}B quarantined".format(seg["quarantined_bytes"]))
        if seg["error"]:
            parts.append("({0})".format(seg["error"]))
        if verbose:
            lines.append(", ".join(parts))
    totals = report["totals"]
    lines.append(
        "fsck: {0} segment(s), {1} record(s) recovered, "
        "{2} known lost, {3}B quarantined, {4}B torn -- {5}".format(
            totals["segments"],
            totals["records_recovered"],
            totals["records_lost_known"],
            totals["bytes_quarantined"],
            totals["torn_bytes"],
            "clean" if report["clean"] else "DAMAGED",
        )
    )
    return lines
