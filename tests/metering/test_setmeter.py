"""setmeter(2) conformance: the Appendix C manual page semantics."""

import pytest

from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from repro.metering import flags as mf
from tests.conftest import run_guests
from tests.metering.harness import start_collector


def _idle(sys, argv):
    yield sys.sleep(100_000)
    yield sys.exit(0)


def _run(cluster, main, uid=0, machine="red"):
    proc = cluster.spawn(machine, main, uid=uid)
    cluster.run_until_exit([proc])
    return proc


def _meter_socket(sys, host="blue"):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.connect(fd, (host, 4400))
    return fd


def test_setmeter_self_with_minus_one(cluster):
    start_collector(cluster)

    def guest(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(mf.SELF, mf.METERSEND, fd)
        yield sys.exit(0)

    proc = _run(cluster, guest, uid=100)
    assert proc.meter_flags == mf.METERSEND


def test_setmeter_flags_no_change(cluster):
    start_collector(cluster)

    def guest(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(mf.SELF, mf.METERSEND, fd)
        yield sys.setmeter(mf.SELF, mf.NO_CHANGE, mf.NO_CHANGE)
        yield sys.exit(0)

    proc = _run(cluster, guest, uid=100)
    assert proc.meter_flags == mf.METERSEND


def test_setmeter_flags_replace_not_union(cluster):
    """The man page: the new bit mask "replaces the processes previous
    bit mask" (the *controller* implements union semantics on top)."""
    start_collector(cluster)

    def guest(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(mf.SELF, mf.METERSEND, fd)
        yield sys.setmeter(mf.SELF, mf.METERRECEIVE, mf.NO_CHANGE)
        yield sys.exit(0)

    proc = _run(cluster, guest, uid=100)
    assert proc.meter_flags == mf.METERRECEIVE


def test_setmeter_none_clears_flags(cluster):
    start_collector(cluster)

    def guest(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(mf.SELF, mf.M_ALL, fd)
        yield sys.setmeter(mf.SELF, mf.NONE, mf.NO_CHANGE)
        yield sys.exit(0)

    proc = _run(cluster, guest, uid=100)
    assert proc.meter_flags == 0


def test_setmeter_unknown_pid_is_esrch(cluster):
    errors = []

    def guest(sys, argv):
        try:
            yield sys.setmeter(99999, mf.M_ALL, mf.NO_CHANGE)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    _run(cluster, guest, uid=100)
    assert errors == [errno.ESRCH]


def test_setmeter_foreign_process_is_eperm(cluster):
    victim = cluster.spawn("red", _idle, uid=100)
    errors = []

    def guest(sys, argv):
        try:
            yield sys.setmeter(victim.pid, mf.M_ALL, mf.NO_CHANGE)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    _run(cluster, guest, uid=200)
    assert errors == [errno.EPERM]


def test_superuser_can_meter_any_process(cluster):
    victim = cluster.spawn("red", _idle, uid=100)

    def guest(sys, argv):
        yield sys.setmeter(victim.pid, mf.METERSEND, mf.NO_CHANGE)
        yield sys.exit(0)

    _run(cluster, guest, uid=0)
    assert victim.meter_flags == mf.METERSEND


def test_same_user_can_meter_own_process(cluster):
    victim = cluster.spawn("red", _idle, uid=100)

    def guest(sys, argv):
        yield sys.setmeter(victim.pid, mf.METERSEND, mf.NO_CHANGE)
        yield sys.exit(0)

    _run(cluster, guest, uid=100)
    assert victim.meter_flags == mf.METERSEND


def test_meter_socket_must_be_internet_stream(cluster):
    errors = []

    def guest(sys, argv):
        dgram = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        try:
            yield sys.setmeter(mf.SELF, mf.M_ALL, dgram)
        except SyscallError as err:
            errors.append(err.errno)
        unix = yield sys.socket(defs.AF_UNIX, defs.SOCK_STREAM)
        try:
            yield sys.setmeter(mf.SELF, mf.M_ALL, unix)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    _run(cluster, guest, uid=100)
    assert errors == [errno.EINVAL, errno.EINVAL]


def test_meter_socket_bad_fd_is_ebadf(cluster):
    """Appendix C ERRORS says [ESRCH] "The socket does not exist", but
    a descriptor naming no open file is EBADF in 4.2BSD; ESRCH is kept
    for the *process* lookup only (deliberate deviation)."""
    errors = []

    def guest(sys, argv):
        try:
            yield sys.setmeter(mf.SELF, mf.M_ALL, 33)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    _run(cluster, guest, uid=100)
    assert errors == [errno.EBADF]


def test_meter_socket_not_in_descriptor_table(cluster):
    """"The connected socket is not listed in the descriptor table of
    the metered process" -- and does not consume a descriptor slot."""
    start_collector(cluster)
    victim = cluster.spawn("red", _idle, uid=100)

    def guest(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(victim.pid, mf.M_ALL, fd)
        yield sys.close(fd)
        yield sys.exit(0)

    _run(cluster, guest, uid=0)
    assert victim.meter_entry is not None
    assert victim.meter_entry not in victim.fds.values()


def test_new_meter_socket_closes_the_old_one(cluster):
    start_collector(cluster)
    victim = cluster.spawn("red", _idle, uid=100)

    def guest(sys, argv):
        fd1 = yield from _meter_socket(sys)
        yield sys.setmeter(victim.pid, mf.M_ALL, fd1)
        fd2 = yield from _meter_socket(sys)
        yield sys.setmeter(victim.pid, mf.NO_CHANGE, fd2)
        yield sys.close(fd1)
        yield sys.close(fd2)
        yield sys.exit(0)

    _run(cluster, guest, uid=0)
    cluster.run(until_ms=cluster.sim.now + 10)
    entry = victim.meter_entry
    assert entry is not None
    assert entry.refcount == 1  # only the victim holds the new socket


def test_sock_none_closes_meter_connection(cluster):
    start_collector(cluster)
    victim = cluster.spawn("red", _idle, uid=100)

    def attach(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(victim.pid, mf.M_ALL, fd)
        yield sys.close(fd)
        yield sys.exit(0)

    def detach(sys, argv):
        yield sys.setmeter(victim.pid, mf.NONE, mf.SOCK_NONE)
        yield sys.exit(0)

    _run(cluster, attach, uid=0)
    assert victim.meter_entry is not None
    _run(cluster, detach, uid=0)
    assert victim.meter_entry is None
    assert victim.meter_flags == 0


def test_fork_inherits_meter_socket_and_flags(cluster):
    start_collector(cluster)
    child_record = {}

    def child(sys, argv):
        yield sys.sleep(1)
        yield sys.exit(0)

    def parent(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(mf.SELF, mf.METERSEND | mf.METERFORK, fd)
        yield sys.close(fd)
        pid = yield sys.fork(child, ())
        child_record["pid"] = pid
        yield sys.sleep(5)
        yield sys.exit(0)

    proc = cluster.spawn("red", parent, uid=100)
    cluster.run(until_ms=cluster.sim.now + 3)
    machine = cluster.machine("red")
    child_proc = machine.procs[child_record["pid"]]
    assert child_proc.meter_flags == mf.METERSEND | mf.METERFORK
    assert child_proc.meter_entry is not None
    assert child_proc.meter_entry.obj is proc.meter_entry.obj
    cluster.run_until_exit([proc])


def test_meter_does_not_reduce_available_descriptors(cluster):
    """"The meter does not reduce the number of open files and sockets
    available to the metered process": a metered and an unmetered
    process can open exactly as many descriptors."""
    start_collector(cluster)
    counts = []

    def fill_descriptors(sys):
        opened = 0
        try:
            while True:
                yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
                opened += 1
        except SyscallError:
            pass
        return opened

    def metered(sys, argv):
        fd = yield from _meter_socket(sys)
        yield sys.setmeter(mf.SELF, mf.M_ALL, fd)
        yield sys.close(fd)
        counts.append((yield from fill_descriptors(sys)))
        yield sys.exit(0)

    def unmetered(sys, argv):
        counts.append((yield from fill_descriptors(sys)))
        yield sys.exit(0)

    _run(cluster, metered, uid=100)
    _run(cluster, unmetered, uid=100, machine="green")
    assert counts[0] == counts[1]
