"""``<meterflags.h>``: meter event flags and setmeter special values.

The flags name the system calls to be metered (Sections 3.2 and 4.1).
``M_IMMEDIATE`` "indicates that metering messages are to be sent
immediately, rather than buffered for greater efficiency" (Appendix C).
"""

METERSEND = 0x0001  # process sends a message
METERRECEIVECALL = 0x0002  # process makes a call to receive a message
METERRECEIVE = 0x0004  # process receives a message
METERACCEPT = 0x0008  # process accepts a connection
METERCONNECT = 0x0010  # process initiates a connection
METERFORK = 0x0020  # process forks
METERSOCKET = 0x0040  # process creates a socket
METERDUP = 0x0080  # process duplicates a socket or file descriptor
METERDESTSOCKET = 0x0100  # process closes a socket
METERTERMPROC = 0x0200  # process terminates

#: All event flags ("meter all events").
M_ALL = (
    METERSEND
    | METERRECEIVECALL
    | METERRECEIVE
    | METERACCEPT
    | METERCONNECT
    | METERFORK
    | METERSOCKET
    | METERDUP
    | METERDESTSOCKET
    | METERTERMPROC
)

#: Send each meter message at once instead of buffering (not an event).
M_IMMEDIATE = 0x10000

# setmeter(2) special argument values (Appendix C: "The arguments may
# also be replaced by the special value -1").
SELF = -1  # proc argument: the calling process
NO_CHANGE = -1  # flags / socket argument: leave unchanged
NONE = 0  # flags argument: turn all flags off
#: socket argument: close the meter socket.  The paper overloads NONE
#: for this; we use a distinct value because descriptor 0 is a real fd.
SOCK_NONE = -2

#: Controller flag spelling (the setflags command, Section 4.3).
FLAG_NAMES = {
    "send": METERSEND,
    "receivecall": METERRECEIVECALL,
    "receive": METERRECEIVE,
    "accept": METERACCEPT,
    "connect": METERCONNECT,
    "fork": METERFORK,
    "socket": METERSOCKET,
    "dup": METERDUP,
    "destsocket": METERDESTSOCKET,
    "termproc": METERTERMPROC,
    "all": M_ALL,
    "immediate": M_IMMEDIATE,
}

_SINGLE_NAMES = {
    value: name
    for name, value in FLAG_NAMES.items()
    if name not in ("all",)
}


def flag_name(flag):
    """Spelling of one flag bit, e.g. METERSEND -> "send"."""
    return _SINGLE_NAMES.get(flag, hex(flag))


def flags_from_names(names):
    """Parse a setflags argument list into a bitmask delta.

    Returns ``(set_mask, clear_mask)``: names prefixed with '-' clear
    ("-send will turn off the metering of the send event"), bare names
    set; 'all'/'-all' covers every event flag.  Unknown names raise
    ValueError.
    """
    set_mask = 0
    clear_mask = 0
    for raw in names:
        name = raw.lower()
        negate = name.startswith("-")
        if negate:
            name = name[1:]
        if name not in FLAG_NAMES:
            raise ValueError("unknown meter flag %r" % raw)
        if negate:
            clear_mask |= FLAG_NAMES[name]
        else:
            set_mask |= FLAG_NAMES[name]
    return set_mask, clear_mask


def names_from_flags(mask):
    """Render a bitmask back to sorted flag spellings (for jobs output)."""
    names = [
        name
        for name, value in sorted(FLAG_NAMES.items())
        if name not in ("all",) and mask & value == value and value != 0
    ]
    return names
