"""Invariant oracles: what must stay true of a chaos run.

Each oracle is a named predicate over a :class:`RunResult` (and the
fault-free baseline run of the same scenario and seed).  Oracles
declare *applicability*: record-identity against the baseline only
means something when every injected fault is one the self-healing
machinery promises to absorb (PR 5's guarantee), so storage damage and
machine crashes switch the suite to the weaker truths that must hold
unconditionally -- accounted loss, lane equivalence, monotone clocks,
at-most-once death reporting.

The suite reuses the repo's existing checking machinery rather than
reimplementing it: PR 5's record multiset, PR 6's fsck/salvage
accounting, PR 8's replay-vs-batch digests, PR 9's fast-lane scan, and
PR 2's vector clocks.

A verdict is JSON-native and deterministic: same run artifacts => the
same verdict, byte for byte (the determinism contract the chaos CI job
asserts end to end).
"""

from repro.chaos.scenario import fast_lane_records
from repro.faults.plan import DESTRUCTIVE_KINDS, STORAGE_KINDS


class Oracle:
    """One invariant: a name, an applicability test, and a checker
    returning violation strings (empty list = holds)."""

    def __init__(self, name, check, applies=None, needs_baseline=False):
        self.name = name
        self._check = check
        self._applies = applies
        self.needs_baseline = needs_baseline

    def applies(self, run):
        return True if self._applies is None else self._applies(run)

    def check(self, run, baseline):
        return self._check(run, baseline)


def _recoverable_only(run):
    kinds = run.plan_kinds()
    return not (kinds & (STORAGE_KINDS | DESTRUCTIVE_KINDS))


def _no_crash(run):
    return not (run.plan_kinds() & DESTRUCTIVE_KINDS)


def _has_store(run):
    return not run.store_missing


# ----------------------------------------------------------------------
# The invariants
# ----------------------------------------------------------------------


def _check_session_alive(run, baseline):
    problems = []
    if not run.controller_alive:
        problems.append("controller dead at end of run")
    if run.store_missing:
        problems.append("filter never produced a trace store")
    return problems


def _check_workload_completed(run, baseline):
    problems = []
    for program, expected in sorted(run.scenario.expected_procs.items()):
        got = run.normal_exits.get(program, 0)
        if got != expected:
            problems.append(
                "{0}: {1}/{2} processes exited normally".format(
                    program, got, expected
                )
            )
    return problems


def _check_baseline_identical(run, baseline):
    """PR 5's oracle, generalized: a recoverable fault costs
    retransmission, never records."""
    problems = []
    if run.strict_error is not None:
        problems.append("strict scan failed: {0}".format(run.strict_error))
        return problems
    want = baseline.record_multiset()
    got = run.record_multiset()
    missing = want - got
    extra = got - want
    if missing:
        problems.append(
            "{0} record(s) lost, e.g. {1!r}".format(
                sum(missing.values()), sorted(missing)[:3]
            )
        )
    if extra:
        problems.append(
            "{0} record(s) duplicated or invented, e.g. {1!r}".format(
                sum(extra.values()), sorted(extra)[:3]
            )
        )
    return problems


def _check_no_invented_records(run, baseline):
    """Storage damage may *lose* records (accounted elsewhere) but must
    never mint ones the fault-free run did not produce."""
    extra = run.record_multiset() - baseline.record_multiset()
    if extra:
        return [
            "{0} record(s) not in the fault-free baseline, e.g. {1!r}".format(
                sum(extra.values()), sorted(extra)[:3]
            )
        ]
    return []


def _check_store_accounted(run, baseline):
    """PR 6's guarantee: damage is either absent or *accounted* --
    never a silently different record stream."""
    problems = []
    if run.salvage_stats is None:
        return ["salvage scan never ran"]
    if run.fsck_report is None:
        return ["fsck never ran"]
    clean = run.fsck_report["clean"]
    if run.strict_error is not None and clean:
        problems.append(
            "strict scan failed ({0}) but fsck calls the store "
            "clean".format(run.strict_error)
        )
    if (
        run.strict_error is None
        and clean
        and not run.salvage_stats.loss_free()
    ):
        problems.append(
            "store reads clean but the salvage ledger shows loss "
            "(frames_corrupt={0}, bytes_quarantined={1})".format(
                run.salvage_stats.frames_corrupt,
                run.salvage_stats.bytes_quarantined,
            )
        )
    return problems


def _check_fast_lane_equiv(run, baseline):
    """PR 9's gate, under fire: the compiled batch lane and the
    interpreted lane must tell the same story about a damaged store."""
    salvage = run.strict_error is not None
    fast = fast_lane_records(run, salvage)
    interpreted = list(run.reader.scan(salvage=salvage))
    if len(fast) != len(interpreted):
        return [
            "fast lane yields {0} record(s), interpreted {1}".format(
                len(fast), len(interpreted)
            )
        ]
    for index, (a, b) in enumerate(zip(fast, interpreted)):
        if a != b:
            return [
                "record {0} differs between lanes: fast={1!r} "
                "interpreted={2!r}".format(index, a, b)
            ]
    return []


def _check_streaming_digests(run, baseline):
    """PR 8's twin oracle: the incremental streaming fold over the
    committed stream must agree with the reference batch analyses."""
    from repro.analysis.trace import Trace
    from repro.streaming.twins import batch_digest, diff_digests, replay_engine

    online = replay_engine(run.records).finalize().digest()
    batch = batch_digest(Trace(list(run.records)))
    return diff_digests(online, batch)


def _check_monotone_clocks(run, baseline):
    """Per-process vector clocks must advance monotonically along each
    process's own event order, own component strictly."""
    from repro.analysis.ordering import HappensBefore
    from repro.analysis.trace import Trace

    trace = Trace(list(run.records))
    ordering = HappensBefore(trace)
    processes = trace.processes()
    problems = []
    for own, process in enumerate(processes):
        previous = None
        for event in trace.events_for(process):
            clock = ordering.vector_clock(event)
            if previous is not None:
                if any(a < b for a, b in zip(clock, previous)):
                    problems.append(
                        "{0}: clock went backwards at proc_seq {1}".format(
                            process, event.proc_seq
                        )
                    )
                    break
                if clock[own] <= previous[own]:
                    problems.append(
                        "{0}: own component did not advance at proc_seq "
                        "{1}".format(process, event.proc_seq)
                    )
                    break
            previous = clock
    return problems


def _check_death_reports(run, baseline):
    """At-most-once always; exactly-once when every fault is
    recoverable (PR 5's journal guarantee)."""
    problems = []
    exactly = _recoverable_only(run)
    for program, expected in sorted(run.scenario.expected_procs.items()):
        got = run.done_reports.get(program, 0)
        if got > expected:
            problems.append(
                "{0}: {1} DONE report(s) for {2} process(es) "
                "(duplicate death reporting)".format(program, got, expected)
            )
        elif exactly and got != expected:
            problems.append(
                "{0}: {1}/{2} DONE report(s) (death went "
                "unreported)".format(program, got, expected)
            )
    return problems


#: The standard suite, in reporting order.
STANDARD_ORACLES = (
    Oracle("session_alive", _check_session_alive),
    Oracle("workload_completed", _check_workload_completed, applies=_no_crash),
    Oracle(
        "baseline_identical",
        _check_baseline_identical,
        applies=_recoverable_only,
        needs_baseline=True,
    ),
    Oracle(
        "no_invented_records",
        _check_no_invented_records,
        applies=lambda run: _no_crash(run) and _has_store(run),
        needs_baseline=True,
    ),
    Oracle("store_accounted", _check_store_accounted, applies=_has_store),
    Oracle("fast_lane_equiv", _check_fast_lane_equiv, applies=_has_store),
    Oracle("streaming_digests", _check_streaming_digests, applies=_has_store),
    Oracle("monotone_clocks", _check_monotone_clocks, applies=_has_store),
    Oracle("death_reports", _check_death_reports),
)

_BY_NAME = {oracle.name: oracle for oracle in STANDARD_ORACLES}


def _count_partitions(run, baseline):
    """Demo/synthetic oracle (not in the standard suite): rejects any
    run in which two or more partitions actually fired.  Used by the
    shrinker's acceptance fixtures as a known, reliably triggerable
    "bug"."""
    fired = sum(1 for line in run.applied if "] partition" in line)
    if fired >= 2:
        return ["{0} partition(s) fired (budget: 1)".format(fired)]
    return []


SYNTHETIC_ORACLES = {
    "partition_budget": Oracle("partition_budget", _count_partitions),
}


def get_oracles(names=None):
    """Resolve oracle names to Oracle objects; None = standard suite."""
    if names is None:
        return STANDARD_ORACLES
    resolved = []
    for name in names:
        oracle = _BY_NAME.get(name) or SYNTHETIC_ORACLES.get(name)
        if oracle is None:
            raise ValueError(
                "unknown oracle {0!r}; available: {1}".format(
                    name,
                    ", ".join(sorted(set(_BY_NAME) | set(SYNTHETIC_ORACLES))),
                )
            )
        resolved.append(oracle)
    return tuple(resolved)


def run_oracles(run, baseline=None, oracles=None):
    """Check one run; returns a JSON-native verdict dict::

        {"ok": bool,
         "oracles": {name: {"applied": bool, "violations": [...]}}}
    """
    verdict = {"ok": True, "oracles": {}}
    for oracle in get_oracles(oracles):
        applied = oracle.applies(run)
        if applied and oracle.needs_baseline and baseline is None:
            applied = False
        violations = oracle.check(run, baseline) if applied else []
        verdict["oracles"][oracle.name] = {
            "applied": bool(applied),
            "violations": list(violations),
        }
        if violations:
            verdict["ok"] = False
    return verdict


def violated_names(verdict):
    """The names of oracles that failed, sorted (replay comparison)."""
    return sorted(
        name
        for name, entry in verdict["oracles"].items()
        if entry["violations"]
    )


def format_verdict(verdict, indent=""):
    """Human-readable verdict lines."""
    lines = []
    lines.append(
        "{0}verdict: {1}".format(indent, "OK" if verdict["ok"] else "VIOLATED")
    )
    for name, entry in sorted(verdict["oracles"].items()):
        if entry["violations"]:
            for violation in entry["violations"]:
                lines.append("{0}  {1}: {2}".format(indent, name, violation))
        elif not entry["applied"]:
            lines.append("{0}  {1}: not applicable".format(indent, name))
    return lines
