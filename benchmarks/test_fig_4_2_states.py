"""Figure 4.2 -- Process state diagram.

Regenerates the diagram as its transition table, walks every legal
path through a live job, and measures the cost of controller-level
state transitions (one remote signal each).
"""

import itertools

from benchmarks.conftest import fresh_session
from repro.controller import states


def test_fig_4_2_transition_table(benchmark):
    def enumerate_table():
        return {
            (old, new)
            for old, new in itertools.product(states.ALL_STATES, repeat=2)
            if states.can_transition(old, new)
        }

    table = benchmark(enumerate_table)
    assert table == {
        ("new", "running"),
        ("new", "stopped"),
        ("running", "stopped"),
        ("stopped", "running"),
        ("running", "killed"),
        ("stopped", "killed"),
    }
    print("\n[fig 4.2] legal transitions:")
    for old, new in sorted(table):
        print("    {0} -> {1}".format(old, new))


def test_fig_4_2_live_walk(benchmark):
    """new -> running -> stopped -> running -> ... -> killed, driven
    through the controller, exactly as the figure allows."""

    def walk():
        session = fresh_session(seed=9)
        session.command("filter f1 blue")
        session.command("newjob j")
        session.command("addprocess j red nameserver 5353")
        trail = ["new"]

        def state():
            out = session.command("jobs j")
            for candidate in states.ALL_STATES:
                if " {0} ".format(candidate) in out:
                    return candidate
            return "?"

        assert state() == "new"
        session.command("startjob j")
        trail.append(state())
        session.command("stopjob j")
        trail.append(state())
        session.command("startjob j")
        trail.append(state())
        session.command("stopjob j")
        session.command("removejob j")  # stopped -> killed
        trail.append("killed")
        return trail

    trail = benchmark.pedantic(walk, rounds=2, iterations=1)
    assert trail == ["new", "running", "stopped", "running", "killed"]
    for old, new in zip(trail, trail[1:]):
        assert states.can_transition(old, new), (old, new)
    print("\n[fig 4.2] live walk:", " -> ".join(trail))
