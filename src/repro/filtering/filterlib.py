"""Support library for writing filter processes.

"Given one basic constraint, a user can write a custom filter.  This
one constraint is that a filter process must listen to its standard
input in order to receive meter messages from the kernel meter."
(Section 3.4.)

Here, descriptor 0 of a filter process is a *listening* meter socket
set up by the meterdaemon; the meters of every machine metering for
this filter connect to it.  :class:`MeterInbox` owns the accept loop
and the message framing, handing complete raw meter messages to the
filter body.
"""

from repro.kernel.errno import SyscallError
from repro.metering.messages import HEADER_BYTES, peek_size

#: Any framed size outside these bounds means the connection is not
#: speaking the meter protocol at all; it is closed, not parsed.
MAX_METER_MESSAGE = 4096


class MeterInbox:
    """Accept meter connections on fd 0 and reassemble meter messages.

    Usage inside a filter guest::

        inbox = MeterInbox()
        while True:
            raw_messages = yield from inbox.wait(sys)
            for raw in raw_messages:
                ...
    """

    def __init__(self, listen_fd=0):
        self.listen_fd = listen_fd
        #: conn fd -> reassembly buffer
        self.buffers = {}
        self.connections_accepted = 0
        self.messages_received = 0
        #: Child events from the most recent :meth:`wait`; defined (and
        #: empty) before the first wait so callers may always read it.
        self.last_child_events = []

    def fds(self):
        return [self.listen_fd] + list(self.buffers)

    def wait(self, sys, timeout_ms=None, want_children=False):
        """Block until meter messages arrive; returns a list of raw
        messages (possibly empty on timeout or child events).

        As a sub-generator, also returns child events through
        ``self.last_child_events`` when ``want_children`` is set.
        """
        ready, child_events = yield sys.select(
            self.fds(), timeout_ms=timeout_ms, want_children=want_children
        )
        self.last_child_events = child_events
        raw_messages = []
        for fd in ready:
            if fd == self.listen_fd:
                conn, __ = yield sys.accept(self.listen_fd)
                self.buffers[conn] = b""
                self.connections_accepted += 1
                continue
            try:
                data = yield sys.read(fd, 4096)
            except SyscallError:
                # Connection reset: the metered machine crashed or the
                # path was severed.  The stream is gone; records already
                # logged stay logged, the filter itself must survive.
                data = b""
            if not data:
                yield sys.close(fd)
                del self.buffers[fd]
                continue
            buf = self.buffers[fd] + data
            corrupt = False
            while True:
                size = peek_size(buf)
                if size is None or (HEADER_BYTES <= size and len(buf) < size):
                    break
                if size < HEADER_BYTES or size > MAX_METER_MESSAGE:
                    # Not the meter protocol: drop the connection
                    # rather than loop over garbage framing.
                    corrupt = True
                    break
                raw_messages.append(buf[:size])
                buf = buf[size:]
            if corrupt:
                yield sys.close(fd)
                del self.buffers[fd]
            else:
                self.buffers[fd] = buf
        self.messages_received += len(raw_messages)
        return raw_messages
