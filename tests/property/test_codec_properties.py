"""Property tests: the Appendix-A codec and the description decoder
agree on arbitrary messages, and framing never corrupts a stream."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.descriptions import default_description_set
from repro.metering import messages
from repro.metering.messages import EVENT_TYPES, MessageCodec, decode_stream
from repro.net.addresses import InternetName, PairName, UnixName

HOSTS = {1: "red", 2: "green", 3: "blue", 4: "yellow"}

def _inet_name(host_id, port):
    # The wire form carries only the host id; keep host consistent.
    return InternetName(HOSTS[host_id], port, host_id)


_names = st.one_of(
    st.none(),
    st.builds(
        _inet_name,
        host_id=st.sampled_from(sorted(HOSTS)),
        port=st.integers(min_value=1, max_value=65535),
    ),
    st.builds(
        UnixName,
        path=st.text(
            alphabet="abcdefghij/._", min_size=1, max_size=14
        ),
    ),
    st.builds(PairName, unique_id=st.integers(min_value=1, max_value=2**31 - 1)),
)


def _message_strategy():
    longs = st.integers(min_value=-(2**31), max_value=2**31 - 1)

    @st.composite
    def build(draw):
        event = draw(st.sampled_from(sorted(EVENT_TYPES)))
        body = {}
        names = {}
        for field, kind in messages.BODY_FIELDS[event]:
            if kind == "long":
                if field.endswith("NameLen"):
                    continue  # derived below
                body[field] = draw(longs)
            else:
                names[field] = draw(_names)
        codec = MessageCodec(HOSTS)
        body.update(names)
        body.update(codec.name_lengths(**names))
        header = {
            "machine": draw(st.sampled_from(sorted(HOSTS))),
            "cpu_time": draw(st.integers(min_value=0, max_value=2**31 - 1)),
            "proc_time": draw(st.integers(min_value=0, max_value=10**6)),
        }
        return event, header, body

    return build()


@given(_message_strategy())
@settings(max_examples=200)
def test_encode_decode_round_trip(message):
    event, header, body = message
    codec = MessageCodec(HOSTS)
    raw = codec.encode(event, **dict(header, **body))
    record = codec.decode(raw)
    assert record["event"] == event
    assert record["machine"] == header["machine"]
    assert record["cpuTime"] == header["cpu_time"]
    assert record["procTime"] == header["proc_time"]
    for field, kind in messages.BODY_FIELDS[event]:
        if kind == "long":
            assert record[field] == body.get(field, 0) or field.endswith("NameLen")
        else:
            expected = body[field].display() if body[field] is not None else ""
            # UnixName paths are truncated to 14 bytes on the wire.
            if expected.startswith("unix:"):
                assert record[field] == "unix:" + expected[5:19]
            else:
                assert record[field] == expected


@given(_message_strategy())
@settings(max_examples=100)
def test_codec_and_descriptions_always_agree(message):
    """The generated description file decodes exactly like the codec."""
    event, header, body = message
    codec = MessageCodec(HOSTS)
    raw = codec.encode(event, **dict(header, **body))
    via_codec = codec.decode(raw)
    via_descriptions = default_description_set().decode_message(raw, HOSTS)
    for key, value in via_descriptions.items():
        if key == "size":
            continue
        assert via_codec[key] == value, key


@given(st.lists(_message_strategy(), min_size=0, max_size=20), st.data())
@settings(max_examples=50)
def test_stream_framing_survives_arbitrary_chunking(batch, data):
    """Concatenate N messages, split at random boundaries, feed the
    chunks through incremental decode: same records out."""
    codec = MessageCodec(HOSTS)
    wire = b"".join(
        codec.encode(event, **dict(header, **body))
        for event, header, body in batch
    )
    # Random chunk boundaries.
    boundaries = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(wire)),
                max_size=10,
            )
        )
    )
    chunks = []
    prev = 0
    for boundary in boundaries + [len(wire)]:
        chunks.append(wire[prev:boundary])
        prev = boundary
    records = []
    buf = b""
    for chunk in chunks:
        buf += chunk
        recs, buf = decode_stream(buf, codec)
        records.extend(recs)
    assert buf == b""
    assert [r["event"] for r in records] == [event for event, __, __ in batch]
