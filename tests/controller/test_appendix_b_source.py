"""Appendix B driven through the controller's own scripting commands:
the session script stored as a file and run with ``source``, with
output captured by ``sink``."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from tests.controller.test_appendix_b import _prog_a, _prog_b

APPENDIX_B_SCRIPT = """\
filter f1 blue
newjob foo
addprocess foo red A
addprocess foo green B
setflags foo send receive fork accept connect
startjob foo
"""


@pytest.fixture
def session():
    cluster = Cluster(seed=7)
    sess = MeasurementSession(cluster, control_machine="yellow")
    sess.install_program("A", _prog_a)
    sess.install_program("B", _prog_b)
    sess.cluster.machine("yellow").fs.install(
        "appendixb", APPENDIX_B_SCRIPT, owner=sess.uid, mode=0o644
    )
    return sess


def test_sourced_script_runs_whole_session(session):
    out = session.command("source appendixb")
    assert "filter 'f1' ... created" in out
    assert "process 'A' ... created" in out
    assert "process 'B' ... created" in out
    assert "'A' started." in out
    session.settle()
    done = session.drain_output()
    assert "DONE: process A in job 'foo' terminated: reason: normal" in done
    session.command("getlog f1 trace")
    assert "event=send" in session.read_controller_file("trace")


def test_sourced_script_with_sink_redirection(session):
    """A script whose first line sinks output to a file and whose last
    line restores the terminal, as Section 4.3 describes."""
    script = "sink captured\n" + APPENDIX_B_SCRIPT + "sink\n"
    session.cluster.machine("yellow").fs.install(
        "scripted", script, owner=session.uid, mode=0o644
    )
    out = session.command("source scripted")
    assert "created" not in out  # everything went to the file
    captured = session.read_controller_file("captured")
    assert "filter 'f1' ... created" in captured
    assert "'B' started." in captured
    # Output is back on the terminal afterwards.
    assert "alpha" not in session.command("jobs foo") or True
    assert "foo" in session.command("jobs")


def test_nested_source(session):
    machine = session.cluster.machine("yellow")
    machine.fs.install("outer", "source inner\njobs\n", owner=session.uid, mode=0o644)
    machine.fs.install("inner", "filter f9 blue\nnewjob bar f9\n", owner=session.uid, mode=0o644)
    out = session.command("source outer")
    assert "filter 'f9' ... created" in out
    assert "bar" in out  # the outer script's jobs command ran after
