#!/usr/bin/env python
"""Debugging a hung distributed program with the monitor.

The scenario the paper's introduction motivates: a computation that
silently stops making progress.  A worker waits for a datagram that
its producer — which crashed — never sent.  Nothing on any terminal
says why.  The monitor's trace does:

1. meter with the *immediate* flag (a hung process never flushes its
   buffered meter messages — Appendix C's reason for M_IMMEDIATE);
2. run the trace audit: it names the blocked receive and the abnormal
   exit;
3. render the space-time diagram to see where the computation stopped.

Run:  python examples/debug_hang.py
"""

from repro.analysis import Trace, TraceAudit, render_timeline
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs


def flaky_producer(sys, argv):
    """Sends two of the three datagrams the consumer expects, then
    dies with an error."""
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.sendto(fd, b"part-1", ("red", 6000))
    yield sys.sendto(fd, b"part-2", ("red", 6000))
    yield sys.compute(5)
    yield sys.exit(1)  # crash before part-3


def consumer(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", 6000))
    for __ in range(3):  # expects three parts; will hang on the third
        yield sys.recvfrom(fd, 100)
    yield sys.write(1, b"all parts received\n")
    yield sys.exit(0)


def main():
    cluster = Cluster(seed=31)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("producer", flaky_producer)
    session.install_program("consumer", consumer)

    session.command("filter f1 blue")
    session.command("newjob pipeline")
    session.command("addprocess pipeline red consumer")
    session.command("addprocess pipeline green producer")
    session.command("setflags pipeline all immediate")
    session.command("startjob pipeline")
    session.settle(500)

    print("== what the user sees ==")
    print(session.command("jobs pipeline"), end="")
    print("(the consumer shows 'running' -- but nothing is happening)")
    print()

    trace = Trace(session.read_trace("f1"))

    print("== trace audit ==")
    audit = TraceAudit(trace)
    print(audit.report())
    print()

    print("== space-time diagram ==")
    print(render_timeline(trace))
    print()
    print(
        "Diagnosis: the producer terminated abnormally after part-2; "
        "the consumer's third receive call will block forever."
    )


if __name__ == "__main__":
    main()
