#!/usr/bin/env python
"""Quickstart: the paper's example session (Section 4.4 / Appendix B).

Builds the four-machine cluster of Figure 4.3 (red, green, blue,
yellow), runs the measurement system, and replays the Appendix B
script: a filter on blue, a job ``foo`` with processes A (on red) and
B (on green), metering of send/receive/fork/accept/connect, and
retrieval of the trace with getlog.

Run:  python examples/quickstart.py
"""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs


def prog_a(sys, argv):
    """Process A: connects to B and exchanges three messages."""
    from repro import guestlib

    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, ("green", 7777)
    )
    for i in range(3):
        yield sys.write(fd, b"msg-%d" % i)
        yield sys.read(fd, 100)
        yield sys.compute(5)
    yield sys.close(fd)
    yield sys.exit(0)


def prog_b(sys, argv):
    """Process B: accepts A's connection and echoes with a reply tag."""
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", 7777))
    yield sys.listen(fd, 5)
    conn, __peer = yield sys.accept(fd)
    while True:
        data = yield sys.read(conn, 100)
        if not data:
            break
        yield sys.compute(2)
        yield sys.write(conn, b"reply:" + data)
    yield sys.close(conn)
    yield sys.exit(0)


def main():
    cluster = Cluster(machines=("red", "green", "blue", "yellow"), seed=7)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("A", prog_a)
    session.install_program("B", prog_b)

    # The Appendix B script, command for command.
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red A")
    session.command("addprocess foo green B")
    session.command("setflags foo send receive fork accept connect")
    session.command("startjob foo")
    session.settle()  # run the computation; DONE reports arrive
    session.command("rmjob foo")
    session.command("getlog f1 trace")
    session.command("bye")

    print("=== session transcript (compare with the paper's Appendix B) ===")
    print(session.transcript())

    print("=== first lines of the retrieved trace file ===")
    trace_text = session.read_controller_file("trace")
    for line in trace_text.splitlines()[:8]:
        print(" ", line)
    print("  ... (%d records)" % len(trace_text.splitlines()))


if __name__ == "__main__":
    main()
