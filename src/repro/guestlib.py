"""Guest-side convenience subroutines.

Guest programs are generators, so shared helpers are sub-generators
used with ``yield from``::

    text = yield from guestlib.read_whole_file(sys, "descriptions")

Nothing here is privileged; everything reduces to plain syscalls.
"""

import json

from repro.kernel import errno
from repro.kernel.errno import SyscallError


def read_whole_file(sys, path):
    """Open, read to EOF, close; returns the content as text."""
    fd = yield sys.open(path, "r")
    chunks = []
    while True:
        data = yield sys.read(fd, 4096)
        if not data:
            break
        chunks.append(data)
    yield sys.close(fd)
    return b"".join(chunks).decode("ascii", "replace")


def read_optional_file(sys, path):
    """Like :func:`read_whole_file` but returns None if absent."""
    try:
        text = yield from read_whole_file(sys, path)
    except SyscallError as err:
        if err.errno == errno.ENOENT:
            return None
        raise
    return text


def write_text(sys, path, text, mode="w"):
    """Create/append a text file."""
    fd = yield sys.open(path, mode)
    yield sys.write(fd, text.encode("ascii"))
    yield sys.close(fd)


def read_exactly(sys, fd, nbytes):
    """Read exactly ``nbytes`` from a stream; returns None at EOF."""
    parts = []
    remaining = nbytes
    while remaining > 0:
        data = yield sys.read(fd, remaining)
        if not data:
            return None
        parts.append(data)
        remaining -= len(data)
    return b"".join(parts)


def read_line(sys, fd, buffered):
    """Read one newline-terminated line.

    ``buffered`` is a single-element list carrying leftover bytes
    across calls (generators cannot keep closure state for the caller).
    Returns the line without the newline, or None at EOF.
    """
    while b"\n" not in buffered[0]:
        data = yield sys.read(fd, 1024)
        if not data:
            if buffered[0]:
                line, buffered[0] = buffered[0], b""
                return line.decode("ascii", "replace")
            return None
        buffered[0] += data
    line, __, buffered[0] = buffered[0].partition(b"\n")
    return line.decode("ascii", "replace")


def connect_retry(sys, domain, type_, name, attempts=50, backoff_ms=20.0):
    """Create a socket and connect, retrying on ECONNREFUSED.

    Workload processes of a job all start at once (startjob), so a
    client can race its server's listen(); real 4.2BSD programs retried
    exactly like this.  Returns the connected fd.
    """
    last_err = None
    for __ in range(attempts):
        fd = yield sys.socket(domain, type_)
        try:
            yield sys.connect(fd, name)
            return fd
        except SyscallError as err:
            last_err = err
            yield sys.close(fd)
            if err.errno != errno.ECONNREFUSED:
                raise
            yield sys.sleep(backoff_ms)
    raise last_err


def send_frame(sys, fd, payload):
    """Write a 4-byte-length-prefixed frame (controller/daemon RPC)."""
    header = len(payload).to_bytes(4, "big")
    yield sys.write(fd, header + payload)


#: Frames above this are junk, not protocol traffic: refuse instead of
#: blocking forever waiting for gigabytes that will never come.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def recv_frame(sys, fd):
    """Read one length-prefixed frame; returns None at EOF or when the
    claimed length is absurd (a non-protocol peer)."""
    header = yield from read_exactly(sys, fd, 4)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        return None
    payload = yield from read_exactly(sys, fd, length)
    return payload


def send_json(sys, fd, obj):
    """One JSON object as a frame (workload wire format)."""
    yield from send_frame(sys, fd, json.dumps(obj).encode("ascii"))


def recv_json(sys, fd):
    """Read one JSON frame; returns None at EOF."""
    payload = yield from recv_frame(sys, fd)
    if payload is None:
        return None
    return json.loads(payload.decode("ascii"))
