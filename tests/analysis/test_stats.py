"""Communication statistics."""

from repro.analysis.stats import CommunicationStatistics
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_per_process_counters():
    stats = CommunicationStatistics(two_process_stream_trace())
    client = stats.per_process[(1, 10)]
    server = stats.per_process[(2, 20)]
    assert client.messages_sent == 1
    assert client.bytes_sent == 100
    assert client.bytes_received == 50
    assert server.messages_sent == 1
    assert server.bytes_received == 100
    assert client.event_counts["connect"] == 1
    assert server.event_counts["accept"] == 1


def test_totals():
    stats = CommunicationStatistics(two_process_stream_trace())
    totals = stats.totals()
    assert totals["processes"] == 2
    assert totals["machines"] == 2
    assert totals["messages_sent"] == 2
    assert totals["bytes_sent"] == 150
    assert totals["matched_pairs"] == 2


def test_pair_traffic_matrix():
    stats = CommunicationStatistics(two_process_stream_trace())
    assert stats.pair_traffic[((1, 10), (2, 20))] == [1, 100]
    assert stats.pair_traffic[((2, 20), (1, 10))] == [1, 50]


def test_busiest_processes_ranked_by_volume():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=1000, dest="inet:x:1")
    b.send(1, 11, 101, sock=2, nbytes=10, dest="inet:x:1")
    stats = CommunicationStatistics(b.build())
    busiest = stats.busiest_processes(1)
    assert busiest[0].process == (1, 10)


def test_cpu_ms_tracks_max_proc_time():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1", procTime=10)
    b.send(1, 10, 200, sock=1, nbytes=5, dest="inet:x:1", procTime=40)
    stats = CommunicationStatistics(b.build())
    assert stats.per_process[(1, 10)].cpu_ms == 40


def test_report_is_readable():
    report = CommunicationStatistics(two_process_stream_trace()).report()
    assert "2 processes" in report
    assert "->" in report
