"""The travelling-salesman study (Lai & Miller 84).

The paper's conclusion reports that "a multiprocess computation was
developed and debugged using the tool, which led to substantial
modifications of the program resulting in substantial improvements of
its performance."  That computation was a distributed TSP solver.  We
reproduce both sides of the story:

- ``v1``: the naive master hands out one subproblem at a time and
  *waits for the result* before dispatching the next -- the monitor's
  parallelism analysis shows the workers serialized (average
  parallelism ~1 no matter how many workers);
- ``v2``: the fixed master keeps one subproblem outstanding per worker
  and shares the best-tour bound, so workers run concurrently and
  prune more.

Subproblems are tour prefixes ``(0, i, j)``; each worker runs an exact
branch-and-bound over the remaining cities, charging simulated CPU
proportional to the nodes it explores.
"""

from repro import guestlib
from repro.kernel import defs

#: Simulated CPU cost per branch-and-bound node.
MS_PER_NODE = 0.02


# ----------------------------------------------------------------------
# Geometry (pure helpers, shared by guests, benches and tests)
# ----------------------------------------------------------------------


def make_cities(n, seed=1):
    """Deterministic city coordinates from a little LCG."""
    state = (seed * 2654435761) & 0xFFFFFFFF
    cities = []
    for __ in range(n):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        x = state % 1000
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        y = state % 1000
        cities.append((x, y))
    return cities


def distance(a, b):
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5


def tour_length(cities, tour):
    total = 0.0
    for i in range(len(tour)):
        total += distance(cities[tour[i]], cities[tour[(i + 1) % len(tour)]])
    return total


def prefix_tasks(n):
    """All depth-3 tour prefixes starting at city 0."""
    return [
        (0, i, j)
        for i in range(1, n)
        for j in range(1, n)
        if i != j
    ]


def solve_prefix(cities, prefix, bound):
    """Exact DFS branch-and-bound completion of ``prefix``.

    Returns (best length or None, best tour or None, nodes explored).
    ``bound``: current global best tour length (prune above it).
    """
    n = len(cities)
    remaining = [c for c in range(n) if c not in prefix]
    prefix_len = sum(
        distance(cities[prefix[i]], cities[prefix[i + 1]])
        for i in range(len(prefix) - 1)
    )
    best = {"length": None, "tour": None, "nodes": 0}

    def dfs(tour, tour_len, rest):
        best["nodes"] += 1
        limit = bound if best["length"] is None else min(bound, best["length"])
        if tour_len >= limit:
            return
        if not rest:
            total = tour_len + distance(cities[tour[-1]], cities[tour[0]])
            if total < limit:
                best["length"] = total
                best["tour"] = list(tour)
            return
        for idx, city in enumerate(rest):
            step = distance(cities[tour[-1]], cities[city])
            dfs(tour + [city], tour_len + step, rest[:idx] + rest[idx + 1 :])

    dfs(list(prefix), prefix_len, remaining)
    return best["length"], best["tour"], best["nodes"]


def solve_exact(cities):
    """Reference single-machine solution (for correctness tests)."""
    best_len, best_tour = float("inf"), None
    for task in prefix_tasks(len(cities)):
        length, tour, __ = solve_prefix(cities, task, best_len)
        if length is not None and length < best_len:
            best_len, best_tour = length, tour
    return best_len, best_tour


# ----------------------------------------------------------------------
# Guests
# ----------------------------------------------------------------------


def tsp_master(sys, argv):
    """argv: [version, port, nworkers, ncities, seed].

    version "v1": serial dispatch (the bug); "v2": one outstanding task
    per worker plus bound sharing (the fix).
    """
    version = argv[0] if len(argv) > 0 else "v2"
    port = int(argv[1]) if len(argv) > 1 else 5200
    nworkers = int(argv[2]) if len(argv) > 2 else 2
    ncities = int(argv[3]) if len(argv) > 3 else 7
    seed = int(argv[4]) if len(argv) > 4 else 1

    cities = make_cities(ncities, seed)
    tasks = prefix_tasks(ncities)

    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", port))
    yield sys.listen(listen_fd, defs.SOMAXCONN)
    workers = []
    for __ in range(nworkers):
        conn, __peer = yield sys.accept(listen_fd)
        workers.append(conn)

    best = {"length": 1e18, "tour": None}
    if version == "v1":
        yield from _run_serial(sys, workers, cities, tasks, best)
    else:
        yield from _run_parallel(sys, workers, cities, tasks, best)

    for conn in workers:
        yield from guestlib.send_json(sys, conn, {"done": True})
        yield sys.close(conn)
    yield sys.write(
        1,
        b"best tour length %d: %s\n"
        % (int(best["length"]), repr(best["tour"]).encode("ascii")),
    )
    yield sys.exit(0)


def _task_message(cities, task, bound):
    return {"cities": cities, "prefix": list(task), "bound": bound}


def _take_result(reply, best):
    if reply and reply.get("length") is not None:
        if reply["length"] < best["length"]:
            best["length"] = reply["length"]
            best["tour"] = reply["tour"]


def _run_serial(sys, workers, cities, tasks, best):
    """v1: one task in flight globally.  Every worker but one idles."""
    windex = 0
    for task in tasks:
        conn = workers[windex % len(workers)]
        windex += 1
        yield from guestlib.send_json(
            sys, conn, _task_message(cities, task, best["length"])
        )
        reply = yield from guestlib.recv_json(sys, conn)
        _take_result(reply, best)


def _run_parallel(sys, workers, cities, tasks, best):
    """v2: one task in flight per worker, bound piggybacked."""
    queue = list(tasks)
    outstanding = {}
    for conn in workers:
        if queue:
            task = queue.pop(0)
            yield from guestlib.send_json(
                sys, conn, _task_message(cities, task, best["length"])
            )
            outstanding[conn] = task
    while outstanding:
        ready, __ = yield sys.select(list(outstanding))
        for conn in ready:
            reply = yield from guestlib.recv_json(sys, conn)
            _take_result(reply, best)
            del outstanding[conn]
            if queue:
                task = queue.pop(0)
                yield from guestlib.send_json(
                    sys, conn, _task_message(cities, task, best["length"])
                )
                outstanding[conn] = task


def tsp_worker(sys, argv):
    """argv: [master_host, port]."""
    host = argv[0] if len(argv) > 0 else "red"
    port = int(argv[1]) if len(argv) > 1 else 5200

    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (host, port)
    )
    while True:
        message = yield from guestlib.recv_json(sys, fd)
        if message is None or message.get("done"):
            break
        cities = [tuple(c) for c in message["cities"]]
        length, tour, nodes = solve_prefix(
            cities, tuple(message["prefix"]), message["bound"]
        )
        yield sys.compute(nodes * MS_PER_NODE)
        yield from guestlib.send_json(
            sys, fd, {"length": length, "tour": tour, "nodes": nodes}
        )
    yield sys.close(fd)
    yield sys.exit(0)
