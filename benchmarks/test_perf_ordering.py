"""P5 -- Global ordering without synchronized clocks (Section 4.1).

"The separate machines' times ... only roughly correspond to a global
time.  Statements regarding the global ordering of events can only be
made on the basis of evidence within the trace ... Given these
constraints, much of the global ordering can be deduced."

The bench sweeps clock skew, counts raw-timestamp causality
violations, and measures the fraction of cross-machine event pairs the
analysis still orders plus the accuracy of the recovered offsets.
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.analysis import HappensBefore, Trace, estimate_clock_skews


def _run(offset_ms, seed=13):
    skews = {"red": (offset_ms, 0.0), "green": (-offset_ms, 0.0)}
    session = fresh_session(seed=seed, clock_skew=skews)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 10")
    session.command("addprocess pp green pingpongclient red 5100 10")
    session.command("setflags pp send receive accept connect")
    session.command("startjob pp")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    hb = HappensBefore(trace)
    red = session.cluster.host_table.lookup("red").host_id
    green = session.cluster.host_table.lookup("green").host_id
    estimated = estimate_clock_skews(trace, hb.matcher, reference=red)
    return {
        "violations": len(hb.violates_causality()),
        "pairs": len(hb.matcher.pairs),
        "ordered": hb.ordered_fraction(),
        "estimated_offset": estimated[green],
        "true_offset": -2 * offset_ms,
    }


@pytest.mark.parametrize("offset_ms", [0, 50, 500, 5000])
def test_perf_ordering_under_skew(benchmark, offset_ms):
    result = benchmark.pedantic(_run, args=(offset_ms,), rounds=1, iterations=1)
    print(
        "\n[P5] skew +/-{0:>5} ms: {1:2d}/{2} pairs violate raw "
        "timestamps; {3:.0%} of cross pairs ordered; offset estimated "
        "{4:8.1f} (true {5})".format(
            offset_ms,
            result["violations"],
            result["pairs"],
            result["ordered"],
            result["estimated_offset"],
            result["true_offset"],
        )
    )
    # Causal deduction is unaffected by skew.
    assert result["ordered"] > 0.8
    # The offset estimate lands within the one-way network delay.
    assert result["estimated_offset"] == pytest.approx(
        result["true_offset"], abs=30.0
    )
    if offset_ms >= 500:
        assert result["violations"] > 0  # raw clocks visibly lie


def test_perf_ordering_deduction_is_skew_invariant(benchmark):
    def compare():
        return _run(0), _run(5000)

    calm, wild = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert wild["ordered"] == pytest.approx(calm["ordered"], abs=0.05)


# -- scaling: the vector-clock engine must stay near-linear ------------


def _ring_trace(n_events, n_machines=6):
    """A synthetic trace of ``n_events`` records: a ring of stream
    connections (machine m talks to machine m+1) carrying steady
    traffic, with a datagram exchange mixed in every fourth pair.
    Built as raw records -- no simulation -- so trace size is exact."""
    records = []
    t = [0]

    def rec(event, machine, pid, **fields):
        t[0] += 1
        record = {
            "event": event,
            "size": 60,
            "machine": machine,
            "cpuTime": t[0],
            "procTime": 0,
            "pid": pid,
            "pc": len(records),
        }
        record.update(fields)
        records.append(record)

    for m in range(1, n_machines + 1):
        peer = m % n_machines + 1
        rec(
            "connect", m, 10, sock=400,
            sockName="inet:h%d:1024" % m, peerName="inet:h%d:5000" % peer,
            sockNameLen=8, peerNameLen=8,
        )
        rec(
            "accept", peer, 10, sock=500, newSock=510,
            sockName="inet:h%d:5000" % peer, peerName="inet:h%d:1024" % m,
            sockNameLen=8, peerNameLen=8,
        )
    pair_i = 0
    while len(records) < n_events - 1:
        m = pair_i % n_machines + 1
        peer = m % n_machines + 1
        if pair_i % 4 == 3:
            rec(
                "send", m, 10, sock=401, msgLength=32,
                destName="inet:h%d:6000" % peer, destNameLen=8,
            )
            rec(
                "receive", peer, 10, sock=600, msgLength=32,
                sourceName="inet:h%d:1025" % m, sourceNameLen=8,
            )
        else:
            rec("send", m, 10, sock=400, msgLength=64, destName="",
                destNameLen=0)
            rec("receive", peer, 10, sock=510, msgLength=64,
                sourceName="inet:h%d:1024" % m, sourceNameLen=8)
        pair_i += 1
    return Trace(records)


def test_perf_ordering_scales_near_linearly(benchmark):
    """Matching + vector clocks + the ordered-fraction study over 1k,
    5k and 20k events: a 20x bigger trace may not cost anything close
    to the 400x of the old transitive-closure engine."""
    import time as _time

    sizes = (1_000, 5_000, 20_000)

    def run():
        timings = {}
        for size in sizes:
            trace = _ring_trace(size)
            start = _time.perf_counter()
            hb = HappensBefore(trace)
            fraction = hb.ordered_fraction()
            events = trace.events
            step = max(1, len(events) // 100)
            probes = events[::step]
            for a, b in zip(probes, probes[1:]):
                hb.happens_before(a, b)
                hb.concurrent(a, b)
            elapsed = _time.perf_counter() - start
            timings[size] = elapsed
            # Sanity: the synthetic trace is fully analyzable.
            assert fraction > 0.5
            assert hb.matcher.matched_fraction() == 1.0
            # Hard wall per size: quadratic work fails here already at
            # 5k instead of timing out the whole job at 20k.
            assert elapsed < 30.0, "size %d took %.1fs" % (size, elapsed)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = timings[sizes[-1]] / max(timings[sizes[0]], 1e-3)
    print(
        "\n[P5 scaling] 1k: {0:.3f}s  5k: {1:.3f}s  20k: {2:.3f}s  "
        "(20x events -> {3:.1f}x time)".format(
            timings[1_000], timings[5_000], timings[20_000], ratio
        )
    )
    # 20x the events must cost far less than the ~400x a quadratic
    # engine would; allow generous constant-factor noise.
    assert ratio < 100.0
