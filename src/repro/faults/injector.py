"""FaultInjector: arm a FaultPlan on a cluster's event queue.

Faults fire as ordinary simulator events, so a run with a plan is just
as deterministic as a run without one: same cluster seed + same plan =>
the same fault firing order, the same packet losses, the same traces.
The injector keeps an applied-fault ``log`` so tests can assert that
two runs saw identical fault sequences.
"""

from repro.kernel import defs
from repro.kernel import errno


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to a cluster.

    ``session`` is optional; when given, :meth:`_do_reboot` can respawn
    a meterdaemon on the rebooted machine (standing in for init) and
    the session's ``daemons`` map is kept current.
    """

    def __init__(self, cluster, plan, session=None):
        self.cluster = cluster
        self.plan = plan
        self.session = session
        #: (sim time, human description) per applied fault, in order.
        self.log = []
        self.armed = False

    # ------------------------------------------------------------------

    def arm(self):
        """Schedule every planned fault on the simulator clock."""
        if self.armed:
            raise RuntimeError("fault plan already armed")
        self._check_machine_names()
        self.armed = True
        for __, event in self.plan.sorted_events():
            self.cluster.sim.schedule_at(
                event.at_ms, self._firer(event)
            )
        return self

    def _check_machine_names(self):
        """Reject unknown machine names now, not mid-run as a KeyError
        deep inside a scheduled event."""
        known = set(self.cluster.machines)
        for __, event in self.plan.sorted_events():
            named = []
            if "machine" in event.args:
                named.append(event.args["machine"])
            for group in event.args.get("groups", ()):
                named.extend(group)
            for name in named:
                if name not in known:
                    raise ValueError(
                        "fault plan names unknown machine {0!r} "
                        "(cluster has: {1})".format(
                            name, ", ".join(sorted(known))
                        )
                    )

    def _firer(self, event):
        def fire():
            handler = getattr(self, "_do_" + event.kind)
            detail = handler(**event.args)
            description = "{0}{1}".format(
                event.describe(), " ({0})".format(detail) if detail else ""
            )
            self.log.append((self.cluster.sim.now, description))

        return fire

    def describe_applied(self):
        """The applied-fault log as lines (for determinism checks)."""
        return [text for __, text in self.log]

    # ------------------------------------------------------------------
    # Machines
    # ------------------------------------------------------------------

    def _do_crash(self, machine):
        target = self.cluster.machine(machine)
        if target.crashed:
            # Randomized schedules crash machines that are already down;
            # record the no-op rather than double-crashing.
            return "no-op: already crashed"
        target.crash()

    def _do_reboot(self, machine, restart_daemon):
        target = self.cluster.machine(machine)
        if not target.crashed:
            return "no-op: not crashed"
        target.reboot()
        if restart_daemon and self.session is not None:
            from repro.daemon.meterdaemon import meterdaemon

            self.session.daemons[machine] = target.create_process(
                main=meterdaemon, uid=0, program_name="meterdaemon"
            )
            return "meterdaemon restarted"
        return None

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def _do_partition(self, groups):
        self.cluster.network.set_partition(groups)
        broken = self._sever_unreachable()
        return "severed {0} channels".format(broken) if broken else None

    def _do_heal(self):
        if not self.cluster.network.partition_active:
            return "no-op: no partition active"
        self.cluster.network.heal_partition()

    def _do_loss_burst(self, duration_ms, loss):
        network = self.cluster.network
        network.extra_loss += loss

        def restore():
            network.extra_loss = max(0.0, network.extra_loss - loss)

        self.cluster.sim.schedule(duration_ms, restore)

    def _do_latency_spike(self, duration_ms, extra_ms):
        network = self.cluster.network
        network.extra_latency_ms += extra_ms

        def restore():
            network.extra_latency_ms = max(
                0.0, network.extra_latency_ms - extra_ms
            )

        self.cluster.sim.schedule(duration_ms, restore)

    def _sever_unreachable(self):
        """Break every reliable channel and reset every stream socket
        whose endpoints can no longer reach each other."""
        network = self.cluster.network
        broken = 0
        for channel in network.severed_channels():
            network.break_channel(channel)
            broken += 1
        for source in self.cluster.machines.values():
            if source.crashed:
                continue
            for sock in list(source.endpoints.values()):
                if sock.peer is None:
                    continue
                peer_host, __ = sock.peer
                if not network.reachable(source.host, peer_host):
                    sock.reset(errno.ECONNRESET)
        return broken

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    def _do_storage_torn_write(self, machine, path_prefix, drop_bytes):
        from repro.faults import storage

        fs = self.cluster.machine(machine).fs
        return storage.truncate_tail(fs, path_prefix, drop_bytes) or "no matching files"

    def _do_storage_drop_flush(self, machine, path_prefix):
        from repro.faults import storage

        fs = self.cluster.machine(machine).fs
        return storage.arm_drop_next_write(fs, path_prefix)

    def _do_storage_bit_rot(self, machine, path_prefix, flips, seed):
        from repro.faults import storage

        fs = self.cluster.machine(machine).fs
        return storage.rot_bits(fs, path_prefix, flips, seed) or "no matching bytes"

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def _do_kill_process(self, machine, program):
        target = self.cluster.machine(machine)
        if target.crashed:
            return "no-op: machine crashed"
        victims = [
            proc
            for proc in target.active_procs()
            if proc.program_name == program
        ]
        if not victims:
            return "no-op: no live {0!r} process".format(program)
        for proc in victims:
            target.post_signal(proc, defs.SIGKILL)
        return "killed {0}".format(len(victims))

    def _do_restart_daemon(self, machine):
        if self.session is None:
            raise RuntimeError("restart_daemon needs a session on the injector")
        from repro.daemon.meterdaemon import meterdaemon

        target = self.cluster.machine(machine)
        if target.crashed:
            return "no-op: machine crashed"
        if any(
            proc.program_name == "meterdaemon"
            for proc in target.active_procs()
        ):
            return "no-op: meterdaemon already running"
        self.session.daemons[machine] = target.create_process(
            main=meterdaemon, uid=0, program_name="meterdaemon"
        )
        return "meterdaemon restarted"

    def _do_kill_controller(self):
        if self.session is None:
            raise RuntimeError("kill_controller needs a session on the injector")
        session = self.session
        if not session.controller_alive():
            return "controller already dead"
        machine = self.cluster.machine(session.control_machine)
        machine.post_signal(session.controller_proc, defs.SIGKILL)
        return None

    def _do_restart_controller(self):
        if self.session is None:
            raise RuntimeError(
                "restart_controller needs a session on the injector"
            )
        if self.cluster.machine(self.session.control_machine).crashed:
            return "no-op: control machine crashed"
        if self.session.controller_alive():
            # The recovery half of a kill/restart pair: with nothing to
            # recover from, restarting would just discard live session
            # state.
            return "no-op: controller alive"
        self.session.restart_controller(wait=False)
        return None
