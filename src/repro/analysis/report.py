"""One-shot measurement report.

Runs every analysis over a trace and renders a single readable report
-- what a user of the 1984 tool would have printed after getlog.  Used
by the examples and handy in interactive sessions::

    from repro.analysis.report import measurement_report
    print(measurement_report(trace))
"""

from repro.analysis.debugging import TraceAudit
from repro.analysis.delays import MessageDelays
from repro.analysis.ordering import HappensBefore, estimate_clock_skews
from repro.analysis.parallelism import ParallelismProfile
from repro.analysis.stats import CommunicationStatistics
from repro.analysis.structure import CommunicationGraph
from repro.analysis.timeline import Timeline

SEPARATOR = "=" * 64


def measurement_report(trace, timeline_rows=30, title="Measurement report"):
    """Render the full analysis suite over one trace."""
    if len(trace) == 0:
        return "{0}\n(empty trace)".format(title)
    matcher = trace.matcher()
    hb = HappensBefore(trace, matcher)
    sections = [title]

    stats = CommunicationStatistics(trace, matcher)
    sections.append(stats.report())

    profile = ParallelismProfile(trace, matcher=matcher)
    sections.append(profile.report())

    graph = CommunicationGraph(trace, matcher)
    sections.append(graph.report())

    sections.append(MessageDelays(trace, matcher).report())

    skews = estimate_clock_skews(trace, matcher)
    nonzero = {m: round(s, 1) for m, s in skews.items() if abs(s) > 1.0}
    sections.append(
        "Clock skew: {0}".format(
            "estimated relative offsets (ms): %s" % nonzero
            if nonzero
            else "no significant skew detected"
        )
    )
    sections.append(
        "Ordering: {0:.0%} of cross-machine event pairs deducible; "
        "{1} raw-timestamp causality violations".format(
            hb.ordered_fraction(), len(hb.violates_causality())
        )
    )

    audit = TraceAudit(trace, matcher)
    sections.append(audit.report())

    sections.append("Timeline (consistent global order)")
    sections.append(Timeline(trace, hb).render(max_rows=timeline_rows))
    return ("\n" + SEPARATOR + "\n").join(sections)
