"""Machine crash and reboot semantics."""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from repro.programs import install_all
from tests.conftest import run_guests


def _sleeper(sys, argv):
    yield sys.sleep(10_000.0)
    yield sys.exit(0)


def test_crash_kills_processes_with_crash_reason():
    cluster = Cluster(seed=5)
    proc = cluster.spawn("red", _sleeper)
    FaultInjector(cluster, FaultPlan().crash(50.0, "red")).arm()
    cluster.run(until_ms=100.0)
    assert proc.state == defs.PROC_ZOMBIE
    assert proc.exit_reason == defs.EXIT_CRASHED
    red = cluster.machine("red")
    assert red.crashed
    assert red.procs == {}
    assert red.endpoints == {}
    assert "panic" in red.console[-1]


def test_crash_resets_remote_peers():
    cluster = Cluster(seed=5)
    outcomes = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        while True:
            yield sys.read(conn, 4096)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        try:
            while True:
                yield sys.write(fd, b"ping")
                yield sys.sleep(10.0)
        except SyscallError as err:
            outcomes.append(err.errno)
        yield sys.exit(0)

    cluster.spawn("red", server)
    client_proc = cluster.spawn("green", client)
    FaultInjector(cluster, FaultPlan().crash(60.0, "red")).arm()
    cluster.run_until_exit([client_proc])
    assert outcomes in ([errno.ECONNRESET], [errno.EPIPE])


def test_crashed_machine_drops_inbound_packets():
    cluster = Cluster(seed=5)
    cluster.machine("red").crash()
    sent = cluster.network.datagrams_sent

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x" * 32, ("red", 6000))
        yield sys.exit(0)

    run_guests(cluster, ("green", sender, ()))
    net = cluster.network
    assert net.datagrams_sent - sent == 1
    assert net.datagrams_dropped >= 1


def test_reboot_gives_a_cold_kernel_with_surviving_disk():
    cluster = Cluster(seed=5)
    red = cluster.machine("red")
    red.fs.install("data.txt", data="precious", mode=0o644)
    red.crash()
    cluster.run(until_ms=10.0)
    red.reboot()
    assert not red.crashed
    # The disk survived; the process table did not.
    assert bytes(red.fs.node("data.txt").data) == b"precious"
    assert red.procs == {}

    results = []

    def reader(sys, argv):
        from repro import guestlib

        text = yield from guestlib.read_whole_file(sys, "data.txt")
        results.append(text)
        yield sys.exit(0)

    run_guests(cluster, ("red", reader, ()))
    assert results == ["precious"]


def test_reboot_with_session_restarts_the_meterdaemon():
    cluster = Cluster(seed=5)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    plan = FaultPlan().crash(5.0, "red").reboot(60.0, "red")
    injector = FaultInjector(cluster, plan, session=session).arm()
    session.settle(100)
    session.command("filter f1 blue")
    session.command("newjob j")
    out = session.command("addprocess j red dgramproducer green 6000 5 64 1")
    assert "created" in out
    assert any("meterdaemon restarted" in text for __, text in injector.log)


def test_crash_and_reboot_are_idempotent():
    cluster = Cluster(seed=5)
    red = cluster.machine("red")
    red.reboot()  # not crashed: no-op
    assert not red.crashed
    red.crash()
    red.crash()
    assert red.crash_count == 1
    red.reboot()
    red.reboot()
    assert not red.crashed
