"""The guest program registry.

Executable files carry a program *name* (their byte content); the
registry maps names to guest ``main(sys, argv)`` generator functions.
This is how a copied executable "runs" on the destination machine: rcp
copies the bytes, and exec resolves the name locally (DESIGN.md,
substitutions).
"""

from repro.kernel import errno
from repro.kernel.errno import SyscallError


class ProgramRegistry:
    """name -> guest main function."""

    def __init__(self):
        self._programs = {}

    def register(self, name, main):
        self._programs[name] = main
        return main

    def resolve(self, name):
        main = self._programs.get(name)
        if main is None:
            raise SyscallError(errno.ENOENT, "no program %r" % name)
        return main

    def __contains__(self, name):
        return name in self._programs

    def names(self):
        return sorted(self._programs)
