"""Kernel constants: socket types, signals, limits, scheduling.

Values follow 4.2BSD where the paper depends on them.
"""

from repro.net.addresses import AF_INET, AF_PAIR, AF_UNIX  # re-exported

# Socket types.
SOCK_STREAM = 1
SOCK_DGRAM = 2

# Signals (4.2BSD numbering).
SIGHUP = 1
SIGINT = 2
SIGKILL = 9
SIGPIPE = 13
SIGTERM = 15
SIGSTOP = 17
SIGCONT = 19
SIGCHLD = 20

# Kernel-level process states.
PROC_EMBRYO = "embryo"  # created, never yet run (suspended pre-exec)
PROC_RUNNABLE = "runnable"
PROC_RUNNING = "running"
PROC_SLEEPING = "sleeping"  # blocked in a syscall
PROC_STOPPED = "stopped"  # SIGSTOP'd
PROC_ZOMBIE = "zombie"  # terminated, not yet reaped

# Limits.
NOFILE = 64  # descriptors per process (generous vs the historical 20)
SOMAXCONN = 5  # default listen backlog cap
SOCK_BUFFER_BYTES = 4096  # per-direction stream buffer (flow control)
DGRAM_QUEUE_BYTES = 8192  # receive queue budget for datagram sockets
MAX_DGRAM_BYTES = 2048  # largest single datagram

# Scheduling / accounting.
QUANTUM_MS = 10.0  # round-robin time slice
CPU_TICK_MS = 10.0  # granularity of procTime accounting (Section 4.1)
SYSCALL_COST_MS = 0.05  # CPU charged per syscall trap
METER_EVENT_COST_MS = 0.02  # extra CPU to build one meter record

# Ephemeral port range (Internet domain autobind).
EPHEMERAL_PORT_FIRST = 1024
EPHEMERAL_PORT_LAST = 5000

# Exit / termination reasons reported to the parent (Section 3.5.1:
# the meterdaemon reports "reason: normal" in Appendix B).
EXIT_NORMAL = "normal"
EXIT_SIGNALED = "signaled"
EXIT_ERROR = "error"
EXIT_CRASHED = "machinecrash"  # the whole machine went down (fault injection)
