"""Garbage tolerance: the measurement system's network endpoints are
open to any process; junk input must never take them down."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.daemon.meterdaemon import METERDAEMON_PORT
from repro.kernel import defs
from repro.programs import install_all


@pytest.fixture
def session():
    cluster = Cluster(seed=97)
    sess = MeasurementSession(cluster, control_machine="yellow")
    install_all(sess)
    return sess


def _alive(machine, program_name):
    return any(
        p.program_name == program_name and p.state != defs.PROC_ZOMBIE
        for p in machine.procs.values()
    )


def _garbage_sender(target_host, target_port, payload):
    def guest(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, (target_host, target_port)
        )
        yield sys.write(fd, payload)
        yield sys.close(fd)
        yield sys.exit(0)

    return guest


def test_filter_survives_garbage_on_meter_port(session):
    session.command("filter f1 blue")
    info = None
    # Find the filter's meter port from the daemon's reply via a real
    # metered job (the controller knows it; we re-derive it).
    from repro.controller.control import ControllerState  # noqa: F401

    # Easier: attack the only listening stream port on blue owned by
    # the filter; enumerate blue's inet bindings.
    blue = session.cluster.machine("blue")
    meter_ports = [
        port
        for (stype, port), sock in blue.inet_ports.items()
        if stype == defs.SOCK_STREAM and port != METERDAEMON_PORT
    ]
    assert meter_ports
    attacker = session.cluster.spawn(
        "red",
        _garbage_sender("blue", meter_ports[0], b"\xde\xad\xbe\xef" * 10),
        uid=100,
    )
    session.cluster.run_until_exit([attacker])
    session.settle(100)
    assert _alive(blue, "filter")
    # The filter still does its job afterwards.
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 5 64 1")
    session.command("setflags j send")
    session.command("startjob j")
    session.settle()
    sends = [r for r in session.read_trace("f1") if r["event"] == "send"]
    assert len(sends) == 5


def test_filter_drops_malformed_but_framed_messages(session):
    """A well-framed message with a bogus traceType is dropped, and
    later valid messages still log."""
    session.command("filter f1 blue")
    blue = session.cluster.machine("blue")
    meter_ports = [
        port
        for (stype, port), sock in blue.inet_ports.items()
        if stype == defs.SOCK_STREAM and port != METERDAEMON_PORT
    ]
    bogus = bytearray(36)
    bogus[0:4] = (36).to_bytes(4, "big")
    bogus[20:24] = (99).to_bytes(4, "big")  # unknown traceType
    attacker = session.cluster.spawn(
        "red", _garbage_sender("blue", meter_ports[0], bytes(bogus)), uid=100
    )
    session.cluster.run_until_exit([attacker])
    session.settle(50)
    assert _alive(blue, "filter")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 3 64 1")
    session.command("setflags j send")
    session.command("startjob j")
    session.settle()
    assert len(session.read_trace("f1")) == 3


def test_daemon_survives_garbage_rpc(session):
    attacker = session.cluster.spawn(
        "green",
        _garbage_sender("red", METERDAEMON_PORT, b"\x00\x00\x00\x05notjs"),
        uid=100,
    )
    session.cluster.run_until_exit([attacker])
    session.settle(50)
    assert _alive(session.cluster.machine("red"), "meterdaemon")
    # Daemon still serves real requests.
    session.command("filter f1 blue")
    session.command("newjob j")
    out = session.command("addprocess j red nameserver 5353")
    assert "created" in out


def test_daemon_survives_absurd_frame_length(session):
    """A frame header claiming 4 GB must not wedge the daemon."""
    attacker = session.cluster.spawn(
        "green",
        _garbage_sender("red", METERDAEMON_PORT, b"\xff\xff\xff\xff"),
        uid=100,
    )
    session.cluster.run_until_exit([attacker])
    session.settle(100)
    assert _alive(session.cluster.machine("red"), "meterdaemon")
    session.command("filter f1 blue")
    session.command("newjob j")
    assert "created" in session.command("addprocess j red nameserver 5353")


def test_controller_survives_garbage_notifications(session):
    controller = session.controller_proc
    port = None
    # The controller's notification port: the only yellow stream
    # listener that is not the daemon.
    yellow = session.cluster.machine("yellow")
    ports = [
        p
        for (stype, p), sock in yellow.inet_ports.items()
        if stype == defs.SOCK_STREAM and p != METERDAEMON_PORT
    ]
    assert ports
    attacker = session.cluster.spawn(
        "red",
        _garbage_sender("yellow", ports[0], b"\x00\x00\x00\x04junk"),
        uid=100,
    )
    session.cluster.run_until_exit([attacker])
    session.settle(50)
    assert session.controller_alive()
    assert "no jobs" in session.command("jobs")
    del controller, port
