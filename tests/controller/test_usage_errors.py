"""Every command rejects bad arity/arguments with a usage message and
leaves the controller alive (no crash-on-typo)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession

USAGE_CASES = [
    ("newjob", "usage: newjob"),
    ("addprocess", "usage: addprocess"),
    ("addprocess onlyjob", "usage: addprocess"),
    ("acquire", "usage: acquire"),
    ("acquire j m", "usage: acquire"),
    ("setflags", "usage: setflags"),
    ("setflags onlyjob", "usage: setflags"),
    ("startjob", "usage: startjob"),
    ("stopjob", "usage: stopjob"),
    ("removejob", "usage: removejob"),
    ("removeprocess", "usage: removeprocess"),
    ("removeprocess onlyjob", "usage: removeprocess"),
    ("getlog", "usage: getlog"),
    ("getlog onlyfilter", "usage: getlog"),
    ("source", "usage: source"),
    ("source a b", "usage: source"),
    ("input", "usage: input"),
    ("input j p", "usage: input"),
    ("stdinfile", "usage: stdinfile"),
    ("stdinfile j p f extra", "usage: stdinfile"),
]


@pytest.fixture(scope="module")
def session():
    cluster = Cluster(seed=67)
    return MeasurementSession(cluster, control_machine="yellow")


@pytest.mark.parametrize("line,expected", USAGE_CASES)
def test_usage_message(session, line, expected):
    out = session.command(line)
    assert expected in out
    assert session.controller_alive()


def test_unknown_job_everywhere(session):
    session.command("filter f0 blue")
    for command in (
        "addprocess nojob red x",
        "acquire nojob red 1",
        "setflags nojob send",
        "startjob nojob",
        "stopjob nojob",
        "removejob nojob",
        "removeprocess nojob x",
        "jobs nojob",
        "input nojob x y",
        "stdinfile nojob x y",
    ):
        out = session.command(command)
        assert "no job 'nojob'" in out, command
    assert session.controller_alive()


def test_acquire_non_numeric_pid(session):
    session.command("newjob jj f0")
    out = session.command("acquire jj red notapid")
    assert "bad process identifier" in out
