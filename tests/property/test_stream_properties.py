"""Property tests on the stream socket layer: arbitrary write/read
chunkings deliver exactly the sent bytes, in order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster
from repro.kernel import defs


@st.composite
def _transfers(draw):
    writes = draw(
        st.lists(
            st.integers(min_value=1, max_value=6000),
            min_size=1,
            max_size=8,
        )
    )
    read_size = draw(st.integers(min_value=1, max_value=5000))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return writes, read_size, seed


@given(_transfers())
@settings(max_examples=30, deadline=None)
def test_stream_delivers_exact_bytes_in_order(transfer):
    writes, read_size, seed = transfer
    cluster = Cluster(seed=seed)
    payloads = [
        bytes((i + j) % 251 for j in range(size))
        for i, size in enumerate(writes)
    ]
    total = sum(len(p) for p in payloads)
    received = []

    def sink(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        got = b""
        while len(got) < total:
            data = yield sys.read(conn, read_size)
            if not data:
                break
            got += data
        received.append(got)
        yield sys.exit(0)

    def source(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        for payload in payloads:
            yield sys.write(fd, payload)
        yield sys.close(fd)
        yield sys.exit(0)

    a = cluster.spawn("red", sink, uid=100)
    b = cluster.spawn("green", source, uid=100)
    cluster.run_until_exit([a, b], max_events=3_000_000)
    assert received == [b"".join(payloads)]


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=200))
@settings(max_examples=30, deadline=None)
def test_datagram_payloads_arrive_intact(seed, size):
    cluster = Cluster(seed=seed)
    payload = bytes(i % 256 for i in range(size))
    got = []

    def receiver(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        data, __ = yield sys.recvfrom(fd, defs.MAX_DGRAM_BYTES)
        got.append(data)
        yield sys.exit(0)

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, payload, ("red", 6000))
        yield sys.exit(0)

    a = cluster.spawn("red", receiver, uid=100)
    b = cluster.spawn("green", sender, uid=100)
    cluster.run_until_exit([a, b])
    assert got == [payload]
