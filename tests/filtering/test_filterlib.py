"""The filter-side library: MeterInbox state handling."""

from repro.filtering.filterlib import MeterInbox


def test_last_child_events_defined_before_first_wait():
    """A filter may consult last_child_events before its first wait()
    (e.g. a startup path that polls for children): it must exist and
    be empty, not raise AttributeError."""
    inbox = MeterInbox()
    assert inbox.last_child_events == []


def test_fds_lists_listener_then_connections():
    inbox = MeterInbox(listen_fd=3)
    inbox.buffers[7] = b""
    inbox.buffers[9] = b""
    assert inbox.fds() == [3, 7, 9]


# ---------------------------------------------------------------------------
# Framing: _feed reassembles meter messages from arbitrary stream chunks.
# ---------------------------------------------------------------------------

import struct

from repro.filtering.filterlib import MAX_METER_MESSAGE
from repro.metering.messages import MessageCodec

_codec = MessageCodec({1: "red", 2: "green"})


def _message(i=0):
    return _codec.encode(
        "fork", machine=1, cpu_time=100 + i, proc_time=10, pid=500 + i, newPid=600 + i
    )


def _fed(inbox, fd, data):
    out = []
    corrupt = inbox._feed(fd, data, out)
    return out, corrupt


def test_feed_single_exact_message_passes_through():
    inbox = MeterInbox()
    inbox.buffers[4] = b""
    msg = _message()
    out, corrupt = _fed(inbox, 4, msg)
    assert not corrupt
    assert out == [msg]
    assert out[0] is msg  # exact reads are not re-copied
    assert inbox.buffers[4] == b""


def test_feed_batch_of_messages_in_one_read():
    inbox = MeterInbox()
    inbox.buffers[4] = b""
    msgs = [_message(i) for i in range(50)]
    out, corrupt = _fed(inbox, 4, b"".join(msgs))
    assert not corrupt
    assert out == msgs
    assert inbox.buffers[4] == b""


def test_feed_reassembles_across_chunk_boundaries():
    inbox = MeterInbox()
    inbox.buffers[4] = b""
    msgs = [_message(i) for i in range(7)]
    stream = b"".join(msgs)
    out = []
    # Feed in ugly 11-byte chunks: every message straddles a boundary.
    for start in range(0, len(stream), 11):
        chunk_out, corrupt = _fed(inbox, 4, stream[start : start + 11])
        assert not corrupt
        out.extend(chunk_out)
    assert out == msgs
    assert inbox.buffers[4] == b""


def test_feed_keeps_partial_tail_buffered():
    inbox = MeterInbox()
    inbox.buffers[4] = b""
    msg = _message()
    out, corrupt = _fed(inbox, 4, msg + msg[:10])
    assert not corrupt
    assert out == [msg]
    assert inbox.buffers[4] == msg[:10]
    out, corrupt = _fed(inbox, 4, msg[10:])
    assert not corrupt
    assert out == [msg]


def test_feed_flags_garbage_size_as_corrupt():
    inbox = MeterInbox()
    for bad_size in (0, 5, MAX_METER_MESSAGE + 1, -3):
        inbox.buffers[4] = b""
        data = struct.pack(">i", bad_size) + b"x" * 60
        out, corrupt = _fed(inbox, 4, data)
        assert corrupt
        assert out == []


def test_feed_short_prefix_waits_for_size_word():
    inbox = MeterInbox()
    inbox.buffers[4] = b""
    out, corrupt = _fed(inbox, 4, b"\x00\x00")
    assert not corrupt
    assert out == []
    assert inbox.buffers[4] == b"\x00\x00"
