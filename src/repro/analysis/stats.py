"""Communications statistics (one of the [Miller 84] analyses)."""

from collections import Counter, defaultdict


class ProcessStats:
    """Per-process counters."""

    def __init__(self, process):
        self.process = process
        self.event_counts = Counter()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.sockets_created = 0
        self.cpu_ms = 0

    def as_dict(self):
        return {
            "process": self.process,
            "events": dict(self.event_counts),
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "sockets_created": self.sockets_created,
            "cpu_ms": self.cpu_ms,
        }


class CommunicationStatistics:
    """Summarize a trace: volumes, counts, per-pair traffic."""

    def __init__(self, trace, matcher=None):
        self.trace = trace
        self.matcher = matcher or trace.matcher()
        self.per_process = {}
        for event in trace:
            stats = self.per_process.setdefault(
                event.process, ProcessStats(event.process)
            )
            stats.event_counts[event.event] += 1
            stats.cpu_ms = max(stats.cpu_ms, event.proc_time)
            if event.event == "send":
                stats.bytes_sent += event.msg_length
                stats.messages_sent += 1
            elif event.event == "receive":
                stats.bytes_received += event.msg_length
                stats.messages_received += 1
            elif event.event == "socket":
                stats.sockets_created += 1
        #: (sender process, receiver process) -> [message count, bytes]
        self.pair_traffic = defaultdict(lambda: [0, 0])
        for pair in self.matcher.pairs:
            entry = self.pair_traffic[(pair.send.process, pair.recv.process)]
            entry[0] += 1
            entry[1] += pair.nbytes

    # ------------------------------------------------------------------

    def totals(self):
        return {
            "events": len(self.trace),
            "processes": len(self.per_process),
            "machines": len(self.trace.machines()),
            "messages_sent": sum(
                s.messages_sent for s in self.per_process.values()
            ),
            "bytes_sent": sum(s.bytes_sent for s in self.per_process.values()),
            "matched_pairs": len(self.matcher.pairs),
        }

    def message_size_histogram(self, bucket_bytes=64):
        """Sent-message sizes, bucketed: {bucket start: count}."""
        histogram = {}
        for event in self.trace.by_type("send"):
            bucket = (event.msg_length // bucket_bytes) * bucket_bytes
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return dict(sorted(histogram.items()))

    def send_rates(self):
        """Messages per second of local-clock time, per process."""
        rates = {}
        for process in self.trace.processes():
            events = self.trace.events_for(process)
            sends = [e for e in events if e.event == "send"]
            if len(sends) < 2:
                continue
            span_ms = sends[-1].local_time - sends[0].local_time
            if span_ms > 0:
                rates[process] = 1000.0 * (len(sends) - 1) / span_ms
        return rates

    def busiest_processes(self, n=5):
        ranked = sorted(
            self.per_process.values(),
            key=lambda s: s.bytes_sent + s.bytes_received,
            reverse=True,
        )
        return ranked[:n]

    def report(self):
        """A human-readable multi-line summary."""
        lines = ["Communication statistics"]
        totals = self.totals()
        lines.append(
            "  {events} events, {processes} processes on {machines} "
            "machines".format(**totals)
        )
        lines.append(
            "  {messages_sent} messages sent, {bytes_sent} bytes, "
            "{matched_pairs} send/receive pairs matched".format(**totals)
        )
        for (src, dst), (count, nbytes) in sorted(self.pair_traffic.items()):
            lines.append(
                "  {0} -> {1}: {2} messages, {3} bytes".format(
                    src, dst, count, nbytes
                )
            )
        return "\n".join(lines)
