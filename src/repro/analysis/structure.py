"""Structural studies (one of the [Miller 84] analyses).

Who talks to whom: a weighted directed graph over the processes of a
computation, built from matched message pairs, plus fork edges (a
parent "creates" its child).  networkx supplies the graph algorithms.
"""

import networkx as nx


class CommunicationGraph:
    """The process-interaction structure of a computation."""

    def __init__(self, trace, matcher=None):
        self.trace = trace
        self.matcher = matcher or trace.matcher()
        self.graph = nx.DiGraph()
        for process in trace.processes():
            self.graph.add_node(process)
        for pair in self.matcher.pairs:
            src, dst = pair.send.process, pair.recv.process
            if self.graph.has_edge(src, dst):
                self.graph[src][dst]["messages"] += 1
                self.graph[src][dst]["bytes"] += pair.nbytes
            else:
                self.graph.add_edge(src, dst, messages=1, bytes=pair.nbytes, kind="message")
        for event in trace.by_type("fork"):
            child = (event.machine, event["newPid"])
            self.graph.add_node(child)
            if not self.graph.has_edge(event.process, child):
                self.graph.add_edge(
                    event.process, child, messages=0, bytes=0, kind="fork"
                )

    # ------------------------------------------------------------------

    def processes(self):
        return list(self.graph.nodes)

    def edges(self):
        return [
            (src, dst, data) for src, dst, data in self.graph.edges(data=True)
        ]

    def degree_of(self, process):
        return self.graph.degree(process)

    def hubs(self, n=3):
        """Most-connected processes (e.g. the master in master/worker)."""
        ranked = sorted(
            self.graph.nodes, key=lambda p: self.graph.degree(p), reverse=True
        )
        return ranked[:n]

    def is_connected(self):
        if self.graph.number_of_nodes() == 0:
            return True
        return nx.is_weakly_connected(self.graph)

    def components(self):
        return [sorted(c) for c in nx.weakly_connected_components(self.graph)]

    def shape(self):
        """A rough classification: "star", "ring", "pipeline", "pair",
        or "mesh" -- handy for tests of known workload topologies.

        Rings and pipelines are recognized from the *directed* edges
        (in/out degree at most 1 everywhere), since a 3-node path and a
        3-node star are the same undirected graph.
        """
        undirected = self.graph.to_undirected()
        n = undirected.number_of_nodes()
        if n <= 1:
            return "single"
        if n == 2:
            return "pair"
        if nx.is_weakly_connected(self.graph):
            in_degrees = dict(self.graph.in_degree())
            out_degrees = dict(self.graph.out_degree())
            if all(d <= 1 for d in in_degrees.values()) and all(
                d <= 1 for d in out_degrees.values()
            ):
                if all(d == 1 for d in in_degrees.values()) and all(
                    d == 1 for d in out_degrees.values()
                ):
                    return "ring"
                return "pipeline"
        degrees = sorted(dict(undirected.degree()).values())
        if degrees[-1] == n - 1 and all(d == 1 for d in degrees[:-1]):
            return "star"
        return "mesh"

    def report(self):
        lines = ["Communication structure"]
        lines.append(
            "  {0} processes, {1} edges, shape: {2}".format(
                self.graph.number_of_nodes(),
                self.graph.number_of_edges(),
                self.shape(),
            )
        )
        for src, dst, data in sorted(self.graph.edges(data=True)):
            lines.append(
                "  {0} -> {1}: {2} messages, {3} bytes ({4})".format(
                    src, dst, data["messages"], data["bytes"], data["kind"]
                )
            )
        return "\n".join(lines)
