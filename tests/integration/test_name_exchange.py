"""Socket-name exchange as (literal host name, port) -- Section 3.5.4.

"A socket name is composed of the host address and the port number ...
a socket name should not be exchanged between processes if this name
will be used to make an IPC connection.  Therefore, when communicating
an address, the literal name of the host and the number of the port
are exchanged.  The receiving process then constructs the socket name
using its own host address for the specified machine."
"""

import json

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.daemon import protocol
from repro.kernel import defs
from repro.programs import install_all


def test_filter_location_travels_as_literal_host_and_port():
    """Spy on the controller->daemon create request: the filter's
    location must be the literal machine name plus port, never a raw
    address/id."""
    captured = []
    original_decode = protocol.decode

    def spying_decode(payload):
        msg_type, body = original_decode(payload)
        if msg_type == protocol.CREATE_REQ:
            captured.append(body)
        return msg_type, body

    protocol.decode = spying_decode
    try:
        cluster = Cluster(seed=71)
        session = MeasurementSession(cluster, control_machine="yellow")
        install_all(session)
        session.command("filter f1 blue")
        session.command("newjob j")
        session.command("addprocess j red nameserver 5353")
    finally:
        protocol.decode = original_decode
    assert captured
    body = captured[0]
    assert body["filter_host"] == "blue"  # the literal name
    assert isinstance(body["filter_port"], int)
    assert body["control_host"] == "yellow"


def test_receiver_reconstructs_names_locally():
    """A guest that learns (host, port) over the wire can connect: the
    kernel resolves the literal name with its own host table."""
    cluster = Cluster(seed=72)
    results = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 0))  # ephemeral: port unknown a priori
        yield sys.listen(fd, 5)
        name = yield sys.getsockname(fd)
        # Advertise (literal host, port) over a datagram.
        ad = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        payload = json.dumps({"host": name.host, "port": name.port})
        yield sys.sendto(ad, payload.encode("ascii"), ("green", 6500))
        conn, __peer = yield sys.accept(fd)
        yield sys.write(conn, b"hello from the advertised socket")
        yield sys.exit(0)

    def client(sys, argv):
        ad = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(ad, ("", 6500))
        data, __src = yield sys.recvfrom(ad, 512)
        where = json.loads(data.decode("ascii"))
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.connect(fd, (where["host"], where["port"]))
        results.append((yield sys.read(fd, 100)))
        yield sys.exit(0)

    server_proc = cluster.spawn("red", server, uid=100)
    client_proc = cluster.spawn("green", client, uid=100)
    cluster.run_until_exit([server_proc, client_proc])
    assert results == [b"hello from the advertised socket"]
