"""Live-session behaviour of `stats` and `watch`: the controller ->
daemon -> filter-engine RPC chain, watch lifecycle, firings under
injected faults, and crash-recovery of the watch table."""

from repro.controller import journal
from repro.faults import FaultInjector, FaultPlan

from tests.streaming.conftest import (
    ALL_FLAGS,
    build_session,
    start_mixed_job,
    stats_digest,
)


def test_stats_renders_live_snapshot():
    session = build_session(seed=23)
    start_mixed_job(session, dgram_count=20, rounds=10)
    session.settle()
    out = session.command("stats")
    assert "live statistics" in out
    assert "pairs matched" in out
    assert "state:" in out
    out = session.command("stats f1")
    assert "live statistics" in out
    assert "no filter 'nope'" in session.command("stats nope")


def test_stats_digest_is_one_json_line():
    session = build_session(seed=23)
    start_mixed_job(session, dgram_count=20, rounds=10)
    session.settle()
    digest = stats_digest(session)
    assert digest["records"] > 100
    assert digest["pairs_digest"] != 0
    assert digest["clock_digest"] != 0


def test_watch_lifecycle_add_list_poll_rm():
    session = build_session(seed=24)
    session.command("filter f1 blue")
    assert "no watches" in session.command("watch list")
    assert "no watches" in session.command("watch poll")

    out = session.command("watch add quiet window=300")
    assert "watch W1 [quiet] registered on filter 'f1'" in out
    out = session.command("watch add f1 rate threshold=1000")
    assert "watch W2 [rate] registered on filter 'f1'" in out

    out = session.command("watch list")
    assert "W1 on 'f1'" in out and '"kind": "quiet"' in out
    assert "W2 on 'f1'" in out and '"threshold": 1000' in out

    # Nothing is running, so nothing fires.
    assert "no new firings" in session.command("watch poll")

    assert "watch W1 removed" in session.command("watch rm W1")
    assert "no watch W1" in session.command("watch rm 1")
    out = session.command("watch list")
    assert "W1" not in out and "W2 on 'f1'" in out

    # Bad inputs are rejected with usage text, not silence.
    assert "usage: watch add" in session.command("watch add bogus")
    assert "bad watch parameter" in session.command("watch add quiet oops")
    assert "usage: watch" in session.command("watch frob")


def test_undelivered_watch_fires_under_datagram_loss():
    session = build_session(seed=25)
    cluster = session.cluster
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramconsumer 6001 60 3000")
    session.command("addprocess j green dgramproducer red 6001 60 64 5")
    session.command("setflags j " + ALL_FLAGS)
    session.command("watch add undelivered window=250")
    now = cluster.sim.now
    # Kill every datagram on the wire for a stretch of the run: those
    # sends can never match a receive, so the watch must call them out.
    plan = FaultPlan().loss_burst(now + 60.0, 120.0, 1.0)
    FaultInjector(cluster, plan, session=session).arm()
    session.command("startjob j")
    session.settle()
    out = session.command("watch poll")
    assert "WATCH W1 [undelivered]" in out
    assert '"dest": "inet:red:6001"' in out
    # The poll cursor advances: a second poll reports nothing new.
    assert "no new firings" in session.command("watch poll")


def test_journal_replays_watch_table():
    text = "".join(
        [
            journal.encode_entry("cmd", line="watch add quiet window=300"),
            journal.encode_entry(
                "watch", wid=1, filtername="f1",
                spec={"kind": "quiet", "window": 300},
            ),
            journal.encode_entry(
                "watch", wid=2, filtername="f1",
                spec={"kind": "rate", "threshold": 5},
            ),
            journal.encode_entry("watch-rm", wid=1),
        ]
    )
    state = journal.replay(journal.parse_journal(text))
    assert sorted(state.watches) == [2]
    assert state.watches[2]["spec"]["kind"] == "rate"
    assert state.next_watch_id == 3

    # A clean shutdown resets the table like everything else.
    state = journal.replay(
        journal.parse_journal(text + journal.encode_entry("die"))
    )
    assert state.watches == {} and state.next_watch_id == 1
