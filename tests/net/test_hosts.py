"""Host table behaviour."""

import pytest

from repro.net.hosts import HostTable


def test_add_assigns_increasing_ids():
    table = HostTable()
    a = table.add("red")
    b = table.add("green")
    assert (a.host_id, b.host_id) == (1, 2)


def test_duplicate_name_rejected():
    table = HostTable()
    table.add("red")
    with pytest.raises(ValueError):
        table.add("red")


def test_lookup_by_name_and_id():
    table = HostTable()
    host = table.add("blue")
    assert table.lookup("blue") is host
    assert table.lookup_id(host.host_id) is host


def test_lookup_unknown_raises_keyerror():
    table = HostTable()
    with pytest.raises(KeyError):
        table.lookup("mars")


def test_names_by_id_map():
    table = HostTable()
    table.add("red")
    table.add("green")
    assert table.names_by_id() == {1: "red", 2: "green"}


def test_contains_iter_len():
    table = HostTable()
    table.add("red")
    assert "red" in table and "blue" not in table
    assert len(table) == 1
    assert [host.name for host in table] == ["red"]
