"""Happens-before deduction and clock-skew estimation (Section 4.1)."""

import pytest

from repro.analysis.matching import MessageMatcher
from repro.analysis.ordering import HappensBefore, estimate_clock_skews
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_program_order_within_a_process():
    trace = two_process_stream_trace()
    hb = HappensBefore(trace)
    client = trace.events_for((1, 10))
    assert hb.happens_before(client[0], client[1])
    assert hb.happens_before(client[0], client[2])
    assert not hb.happens_before(client[1], client[0])


def test_send_happens_before_matched_receive():
    trace = two_process_stream_trace()
    hb = HappensBefore(trace)
    send = trace.by_type("send")[0]
    recv = trace.by_type("receive")[0]
    assert hb.happens_before(send, recv)


def test_transitivity_across_machines():
    """client connect -> ... -> client's final receive passes through
    the server."""
    trace = two_process_stream_trace()
    hb = HappensBefore(trace)
    connect = trace.by_type("connect")[0]
    final_recv = trace.events_for((1, 10))[-1]
    server_send = trace.by_type("send")[1]
    assert hb.happens_before(connect, server_send)
    assert hb.happens_before(server_send, final_recv)


def test_concurrent_events_detected():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1")
    b.send(2, 20, 100, sock=1, nbytes=7, dest="inet:y:1")
    trace = b.build()
    hb = HappensBefore(trace)
    a, c = trace.events[0], trace.events[1]
    assert hb.concurrent(a, c)
    assert not hb.concurrent(a, a)


def test_ordered_fraction_high_for_pingpong():
    """All cross-machine pairs are deducible except connect-vs-accept
    (the two completions race the handshake and are truly concurrent):
    7 of 9 pairs ordered."""
    trace = two_process_stream_trace()
    hb = HappensBefore(trace)
    assert hb.ordered_fraction() == pytest.approx(7 / 9)


def test_ordered_fraction_zero_without_communication():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1")
    b.send(2, 20, 100, sock=2, nbytes=7, dest="inet:y:1")
    hb = HappensBefore(b.build())
    assert hb.ordered_fraction() == 0.0


def test_graph_is_acyclic():
    import networkx as nx

    trace = two_process_stream_trace()
    hb = HappensBefore(trace)
    assert nx.is_directed_acyclic_graph(hb.graph)


def test_consistent_global_order_respects_happens_before():
    trace = two_process_stream_trace()
    hb = HappensBefore(trace)
    order = hb.consistent_global_order()
    position = {event.index: i for i, event in enumerate(order)}
    for pair in hb.matcher.pairs:
        assert position[pair.send.index] < position[pair.recv.index]
    for process in trace.processes():
        events = trace.events_for(process)
        for earlier, later in zip(events, events[1:]):
            assert position[earlier.index] < position[later.index]


def _skewed_pingpong(offset_b=1000, rtt=4, rounds=4):
    """Messages bounce between machine 1 (true clock) and machine 2
    (clock ahead by offset_b); one-way delay rtt/2."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 0, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, offset_b + 1, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    t = 2
    for __ in range(rounds):
        b.send(1, 10, t, sock=400, nbytes=8)
        b.receive(2, 20, t + rtt // 2 + offset_b, sock=510, nbytes=8, source=cn)
        b.send(2, 20, t + rtt // 2 + offset_b, sock=510, nbytes=8)
        b.receive(1, 10, t + rtt, sock=400, nbytes=8, source=sn)
        t += rtt
    return b.build()


def test_causality_violations_detected_under_skew():
    trace = _skewed_pingpong(offset_b=-1000)  # B's clock behind
    hb = HappensBefore(trace)
    violations = hb.violates_causality()
    # Every A->B message appears received "before" it was sent.
    assert len(violations) >= 4


def test_no_causality_violations_with_true_clocks():
    trace = _skewed_pingpong(offset_b=0)
    hb = HappensBefore(trace)
    assert hb.violates_causality() == []


def test_skew_estimation_recovers_relative_offset():
    offset = 1000
    trace = _skewed_pingpong(offset_b=offset)
    skews = estimate_clock_skews(trace)
    assert skews[1] == 0.0  # reference machine
    assert skews[2] == pytest.approx(offset, abs=5)


def test_skew_estimation_with_no_bidirectional_traffic():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1")
    skews = estimate_clock_skews(b.build())
    assert skews == {1: 0.0}


def test_skew_corrected_order_interleaves_properly():
    trace = _skewed_pingpong(offset_b=5000)
    hb = HappensBefore(trace)
    order = hb.consistent_global_order()
    events = [e.event for e in order]
    # Sends and receives alternate rather than clustering by machine.
    first_half = events[: len(events) // 2]
    assert "send" in first_half and "receive" in first_half
