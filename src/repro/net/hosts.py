"""Host naming.

Each machine in the cluster is a host with a literal name ("red",
"green", ...) and a small-integer host id per attached network.  The
host table is the simulated analogue of /etc/hosts plus the Internet
Domain name service the paper cites (Su & Postel 82).
"""


class Host:
    """One machine's network identity."""

    def __init__(self, name, host_id):
        self.name = str(name)
        self.host_id = int(host_id)
        #: Set by the kernel bring-up; the Machine owning this host.
        self.machine = None
        #: Networks this host is attached to (names).
        self.networks = []

    def __repr__(self):
        return "Host({0!r}, id={1})".format(self.name, self.host_id)


class HostTable:
    """Cluster-wide mapping between literal host names and host ids."""

    def __init__(self):
        self._by_name = {}
        self._by_id = {}
        self._next_id = 1

    def add(self, name):
        """Register a host; returns the :class:`Host`."""
        if name in self._by_name:
            raise ValueError("duplicate host name %r" % name)
        host = Host(name, self._next_id)
        self._next_id += 1
        self._by_name[name] = host
        self._by_id[host.host_id] = host
        return host

    def lookup(self, name):
        """Resolve a literal host name; raises KeyError if unknown."""
        return self._by_name[name]

    def lookup_id(self, host_id):
        return self._by_id[host_id]

    def names_by_id(self):
        """host id -> name map, for decoding wire NAMEs."""
        return {host_id: host.name for host_id, host in self._by_id.items()}

    def __contains__(self, name):
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self):
        return len(self._by_name)
