"""Small-unit coverage: wait queues, packets, errno names, and the
controller's data model."""

import pytest

from repro.controller.model import FilterInfo, Job, ProcessRecord
from repro.controller import states
from repro.kernel.errno import SyscallError, errno_name
from repro.kernel.packets import Packet, packet_size
from repro.kernel.waitq import WaitQueue


class _FakeMachine:
    def __init__(self):
        self.woken = []

    def wake(self, proc):
        self.woken.append(proc)


class _FakeProc:
    def __init__(self, machine):
        self.machine = machine


def test_waitqueue_add_is_idempotent():
    queue = WaitQueue("test")
    machine = _FakeMachine()
    proc = _FakeProc(machine)
    queue.add(proc)
    queue.add(proc)
    assert len(queue) == 1
    assert proc in queue


def test_waitqueue_wake_all_calls_each_machine():
    queue = WaitQueue()
    machine = _FakeMachine()
    procs = [_FakeProc(machine) for __ in range(3)]
    for proc in procs:
        queue.add(proc)
    queue.wake_all()
    assert machine.woken == procs


def test_waitqueue_discard_missing_is_noop():
    queue = WaitQueue()
    queue.discard(_FakeProc(_FakeMachine()))
    assert len(queue) == 0


def test_packet_attribute_access():
    class _Host:
        name = "red"

    packet = Packet("dgram", _Host(), data=b"x", dst_name="y")
    assert packet.data == b"x"
    assert packet.dst_name == "y"
    with pytest.raises(AttributeError):
        packet.nonexistent


def test_packet_size_includes_header():
    assert packet_size(100) == 140


def test_errno_name_known_and_unknown():
    assert errno_name(1) == "EPERM"
    assert errno_name(3) == "ESRCH"
    assert errno_name(4242) == "E4242"


def test_syscall_error_message_includes_name_and_detail():
    err = SyscallError(2, "/missing/file")
    assert "ENOENT" in str(err)
    assert "/missing/file" in str(err)
    assert err.errno == 2


def test_job_find_process_and_active():
    job = Job("foo", "f1", number=1)
    a = ProcessRecord("A", "foo", "red", 2117, states.NEW)
    b = ProcessRecord("B", "foo", "green", 2118, states.KILLED)
    job.processes.extend([a, b])
    assert job.find_process("A") is a
    assert job.find_process("C") is None
    assert job.active_processes() == [a]


def test_filter_info_holds_meter_location():
    info = FilterInfo("f1", "blue", 2117, "blue", 4411, "/usr/tmp/f1.log")
    assert info.meter_host == "blue"
    assert info.meter_port == 4411


def test_process_record_repr_readable():
    record = ProcessRecord("A", "foo", "red", 2117, states.RUNNING)
    text = repr(record)
    assert "A" in text and "2117" in text and "running" in text
