"""Chaos search engine: seed-derived fault-schedule fuzzing with
invariant oracles and automatic shrinking.

Three PRs built the fault machinery (deterministic injection,
self-healing sessions, a durable store); this package turns them into
an automated bug-finding instrument:

- :mod:`repro.chaos.generator` derives a whole
  :class:`~repro.faults.plan.FaultPlan` from ``(seed, profile)``, every
  draw through one seeded ``random.Random`` -- the explored fault
  space is as large as the seed space, not a handful of hand-written
  schedules.
- :mod:`repro.chaos.oracles` judges each run against the invariants
  the earlier PRs proved one schedule at a time: record identity with
  the fault-free baseline, accounted storage loss, replay==batch
  streaming digests, fast-lane==interpreted scans, monotone vector
  clocks, at-most-once death reporting.
- :mod:`repro.chaos.shrink` delta-debugs any failing schedule down to
  a minimal repro, emitted by :mod:`repro.chaos.artifact` as a
  replayable JSON document (``python -m repro chaos replay``).
- :mod:`repro.chaos.search` is the soak driver: profiles x seeds,
  coverage counting, schedules/hour, verdicts.
"""

from repro.chaos.artifact import (
    build_artifact,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.chaos.generator import FaultSurface, generate_plan
from repro.chaos.oracles import (
    STANDARD_ORACLES,
    format_verdict,
    run_oracles,
    violated_names,
)
from repro.chaos.profiles import PROFILES, ChaosProfile, get_profile
from repro.chaos.scenario import (
    SCENARIOS,
    RunResult,
    Scenario,
    make_scenario,
    run_scenario,
)
from repro.chaos.search import format_report, search
from repro.chaos.shrink import ShrinkResult, is_subsequence, shrink_plan

__all__ = [
    "ChaosProfile",
    "FaultSurface",
    "PROFILES",
    "RunResult",
    "SCENARIOS",
    "STANDARD_ORACLES",
    "Scenario",
    "ShrinkResult",
    "build_artifact",
    "format_report",
    "format_verdict",
    "generate_plan",
    "get_profile",
    "is_subsequence",
    "load_artifact",
    "make_scenario",
    "replay_artifact",
    "run_oracles",
    "run_scenario",
    "save_artifact",
    "search",
    "shrink_plan",
    "violated_names",
]
