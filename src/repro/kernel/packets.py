"""Packets exchanged between machine kernels.

These are transport-internal; the monitor deliberately never exposes
them (Section 2.1, consistency: "Viewing the communications at this
more detailed level would obscure message delivery in unnecessary
detail").
"""

# Packet kinds.
CONN_REQ = "connreq"  # stream connection request (SYN)
CONN_ACK = "connack"  # connection accepted into the backlog
CONN_REFUSED = "connrefused"  # no listener / backlog full
STREAM_DATA = "stream_data"
STREAM_WINDOW = "stream_window"  # flow-control credit return
STREAM_CLOSE = "stream_close"
DGRAM = "dgram"


class Packet:
    """A transport packet: kind plus free-form fields."""

    __slots__ = ("kind", "src_host", "fields")

    def __init__(self, kind, src_host, **fields):
        self.kind = kind
        self.src_host = src_host
        self.fields = fields

    def __getattr__(self, name):
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name)

    def __repr__(self):
        return "Packet({0}, from={1}, {2})".format(
            self.kind, self.src_host.name, self.fields
        )


def packet_size(payload_len):
    """Approximate wire size: payload plus a 40-byte header."""
    return payload_len + 40
