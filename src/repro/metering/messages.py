"""``<metermsgs.h>``: the Appendix-A meter message formats.

Each meter message is a standard 24-byte header followed by a
type-specific body.  Layouts follow the paper's C definitions with
4-byte longs, a 2-byte short (padded), and 16-byte ``NAME`` fields
(``typedef struct sockaddr NAME``), big-endian:

    struct MeterHeader {
        long  size;      /* Size of message */
        short machine;   /* Machine on which process runs */
        long  cpuTime;   /* Local clock */
        long  Dummy;     /* Unused */
        long  procTime;  /* Time charged to process */
        long  traceType; /* Type of message */
    };

The declarative field tables below drive encoding, decoding, *and* the
generation of the event-record description file of Figure 3.2, so the
three can never drift apart.
"""

import struct

from repro.net.addresses import NO_NAME, InternetName, SocketName, decode_name, parse_name

HEADER_BYTES = 24
_HEADER_STRUCT = struct.Struct(">ih2xiiii")
_NAME_BYTES = 16

# Trace type numbers.  Figure 3.2 shows SEND as type 1; the Figure 3.4
# rule "type=8, sockName=peerName" is an accept-shaped record, so ACCEPT
# is 8.  The rest are assigned in Appendix-A declaration order.
EVENT_TYPES = {
    "send": 1,
    "receive": 2,
    "receivecall": 3,
    "socket": 4,
    "dup": 5,
    "destsocket": 6,
    "fork": 7,
    "accept": 8,
    "connect": 9,
    "termproc": 10,
}
EVENT_NAMES = {value: name for name, value in EVENT_TYPES.items()}

#: Trace type of a batch marker: a control message the kernel meter
#: appends after each flushed batch so a filter can commit batches
#: durably and dedup retransmissions by ``(machine, pid, seq)``.  The
#: number is far outside the Appendix-A event range so old readers that
#: only know types 1-10 can recognise and skip it.
BATCH_MARKER_TYPE = 99

#: Trace type of a live-analysis query frame: a request sent *to* a
#: filter's meter port (standard header framing, JSON body) asking its
#: streaming engine for stats, a digest, or a continuous-query change.
#: Like the batch marker it sits outside the Appendix-A event range;
#: framing carries it, old consumers can skip it.
STREAM_QUERY_TYPE = 98

#: Body field tables: (field name, kind) where kind is "long" or "name".
#: Order matches the Appendix-A struct declarations.
BODY_FIELDS = {
    "accept": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
        ("newSock", "long"),
        ("sockNameLen", "long"),
        ("peerNameLen", "long"),
        ("sockName", "name"),
        ("peerName", "name"),
    ],
    "connect": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
        ("sockNameLen", "long"),
        ("peerNameLen", "long"),
        ("sockName", "name"),
        ("peerName", "name"),
    ],
    "dup": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
        ("newSock", "long"),
    ],
    "fork": [
        ("pid", "long"),
        ("pc", "long"),
        ("newPid", "long"),
    ],
    "receivecall": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
    ],
    "receive": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
        ("msgLength", "long"),
        ("sourceNameLen", "long"),
        ("sourceName", "name"),
    ],
    "send": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
        ("msgLength", "long"),
        ("destNameLen", "long"),
        ("destName", "name"),
    ],
    "socket": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
        ("domain", "long"),
        ("type", "long"),
        ("protocol", "long"),
    ],
    # The paper's Section 4.3 flag list includes destsocket and termproc
    # events; Appendix A omits their structs, so these two bodies are
    # our (documented) completion of the format family.
    "destsocket": [
        ("pid", "long"),
        ("pc", "long"),
        ("sock", "long"),
    ],
    "termproc": [
        ("pid", "long"),
        ("pc", "long"),
        ("status", "long"),
    ],
}

_KIND_BYTES = {"long": 4, "name": _NAME_BYTES}

HEADER_FIELDS = ["size", "machine", "cpuTime", "procTime", "traceType"]

# Precompiled whole-message structs: one ``struct.Struct`` per
# Appendix-A format so encode/decode are single pack/unpack calls on
# the hot path instead of per-field loops.  The header's Dummy word is
# the ``4x`` pad (pack writes it as zeros, matching the per-field
# encoder); body longs are ``i`` and NAME fields ``16s``.
_HEADER_FMT = ">ih2xi4xii"
_EVENT_STRUCTS = {
    event: struct.Struct(
        _HEADER_FMT
        + "".join("i" if kind == "long" else "16s" for __, kind in fields)
    )
    for event, fields in BODY_FIELDS.items()
}
_HEADER_DECODE = struct.Struct(_HEADER_FMT)

# Batch marker: header + pid + seq.  Shares the standard header so the
# filter's size-based framing carries it like any meter message.
_MARKER_STRUCT = struct.Struct(_HEADER_FMT + "ii")
MARKER_BYTES = _MARKER_STRUCT.size


def encode_batch_marker(machine, pid, seq, cpu_time=0, proc_time=0):
    """One batch-marker message: stamps the batch that *precedes* it on
    the wire with the per-process flush sequence number ``seq``."""
    return _MARKER_STRUCT.pack(
        MARKER_BYTES,
        int(machine),
        int(cpu_time),
        int(proc_time),
        BATCH_MARKER_TYPE,
        int(pid),
        int(seq),
    )


def parse_batch_marker(raw, offset=0):
    """(machine, pid, seq) of a batch marker, or None if the bytes at
    ``offset`` are not a marker message."""
    if len(raw) - offset < MARKER_BYTES:
        return None
    values = _MARKER_STRUCT.unpack_from(raw, offset)
    if values[4] != BATCH_MARKER_TYPE or values[0] != MARKER_BYTES:
        return None
    return values[1], values[5], values[6]


def is_batch_marker(raw, offset=0):
    """True when the message at ``offset`` is a batch marker (checked
    from the header's traceType without a full decode)."""
    if len(raw) - offset < HEADER_BYTES:
        return False
    return struct.unpack_from(">i", raw, offset + 20)[0] == BATCH_MARKER_TYPE


def body_length(event):
    return sum(_KIND_BYTES[kind] for __, kind in BODY_FIELDS[event])


def message_length(event):
    return _EVENT_STRUCTS[event].size


def record_fields(event):
    """The canonical field list of a decoded record: header fields
    first, then the body fields in Appendix-A declaration order.  The
    trace store's per-record discard mask is a bitmap over this list."""
    return list(HEADER_FIELDS) + [name for name, __ in BODY_FIELDS[event]]


def field_layout(event):
    """(name, offset-from-body-start, length, display base) per field,
    the tuple format of the Figure 3.2 description file."""
    layout = []
    offset = 0
    for name, kind in BODY_FIELDS[event]:
        nbytes = _KIND_BYTES[kind]
        base = 16 if kind == "name" else 10
        layout.append((name, offset, nbytes, base))
        offset += nbytes
    return layout


class MessageCodec:
    """Encode and decode meter messages.

    ``host_names`` (host id -> literal name) lets decoded NAME fields
    render as the display strings of Section 4.1.
    """

    def __init__(self, host_names=None):
        self.host_names = dict(host_names or {})
        self._host_ids = None  # reverse map, built on first encode_record

    # -- encoding -------------------------------------------------------

    def encode(self, event, machine, cpu_time, proc_time, **body):
        """Build one wire message.  NAME-kind fields take SocketName
        objects (or None for "name not available", length zero)."""
        packer = _EVENT_STRUCTS[event]
        values = [
            packer.size,
            int(machine),
            int(cpu_time),
            int(proc_time),
            EVENT_TYPES[event],
        ]
        for name, kind in BODY_FIELDS[event]:
            value = body.get(name)
            if kind == "long":
                values.append(int(value or 0))
            else:
                values.append(value.wire_bytes() if value is not None else NO_NAME)
        return packer.pack(*values)

    def name_lengths(self, **names):
        """Helper: wire_len of each given name (0 when unavailable)."""
        return {
            key + "Len": (value.wire_len() if value is not None else 0)
            for key, value in names.items()
        }

    def encode_record(self, record):
        """Re-encode a decoded record dict back to its wire message.

        The inverse of :meth:`decode`: NAME fields may be SocketName
        objects or display strings ("inet:red:5100"); missing fields
        encode as zero (the trace store marks them in its discard
        mask).  ``encode(decode(raw)) == raw`` holds for every
        Appendix-A message, which is what lets the trace store keep
        records in the wire encoding without loss.
        """
        event = record.get("event") or EVENT_NAMES[record["traceType"]]
        packer = _EVENT_STRUCTS[event]
        values = [
            packer.size,
            int(record.get("machine") or 0),
            int(record.get("cpuTime") or 0),
            int(record.get("procTime") or 0),
            EVENT_TYPES[event],
        ]
        for name, kind in BODY_FIELDS[event]:
            if kind == "long":
                values.append(int(record.get(name) or 0))
            else:
                values.append(self._name_wire_bytes(record.get(name)))
        return packer.pack(*values)

    def _name_wire_bytes(self, value):
        """Wire form of a NAME field value that may be a SocketName, a
        display string, or missing.  Display strings drop the wire host
        id, so Internet names recover it from the host-name map (or the
        literal digits when the decoder had no map either)."""
        if value is None or value == "":
            return NO_NAME
        if isinstance(value, SocketName):
            return value.wire_bytes()
        name = parse_name(str(value))
        if name is None:
            return NO_NAME
        if isinstance(name, InternetName) and name.host_id == 0:
            if self._host_ids is None:
                self._host_ids = {
                    host: host_id for host_id, host in self.host_names.items()
                }
            host_id = self._host_ids.get(name.host)
            if host_id is None and name.host.isdigit():
                host_id = int(name.host)
            name.host_id = host_id or 0
        return name.wire_bytes()

    # -- decoding -------------------------------------------------------

    def decode(self, raw):
        """Decode one full message into a flat dict (header + body).

        NAME fields decode to display strings; an all-zero NAME decodes
        to the empty string.
        """
        if len(raw) < HEADER_BYTES:
            raise ValueError("short meter message: %d bytes" % len(raw))
        size, machine, cpu_time, proc_time, trace_type = _HEADER_DECODE.unpack_from(
            raw
        )
        if len(raw) < size:
            raise ValueError("truncated meter message")
        if trace_type == BATCH_MARKER_TYPE:
            pid, seq = struct.unpack_from(">ii", raw, HEADER_BYTES)
            return {
                "size": size,
                "machine": machine,
                "cpuTime": cpu_time,
                "procTime": proc_time,
                "traceType": trace_type,
                "event": "batchmark",
                "pid": pid,
                "seq": seq,
            }
        event = EVENT_NAMES.get(trace_type)
        if event is None:
            raise ValueError("unknown traceType %d" % trace_type)
        unpacker = _EVENT_STRUCTS[event]
        if len(raw) < unpacker.size:
            raise ValueError("truncated meter message")
        values = unpacker.unpack_from(raw)
        record = {
            "size": size,
            "machine": machine,
            "cpuTime": cpu_time,
            "procTime": proc_time,
            "traceType": trace_type,
            "event": event,
        }
        host_names = self.host_names
        fields = BODY_FIELDS[event]
        for index, (name, kind) in enumerate(fields, 5):
            if kind == "long":
                record[name] = values[index]
            else:
                decoded = decode_name(values[index], host_names)
                record[name] = decoded.display() if decoded is not None else ""
        return record


def peek_size(raw, offset=0):
    """Read the ``size`` header field of the message at ``offset``."""
    if len(raw) - offset < 4:
        return None
    return struct.unpack_from(">i", raw, offset)[0]


def peek_trace_type(raw, offset=0):
    """Read the ``traceType`` header field of the message at ``offset``
    without a full decode, or None if the header is incomplete."""
    if len(raw) - offset < HEADER_BYTES:
        return None
    return struct.unpack_from(">i", raw, offset + 20)[0]


def decode_stream(raw, codec):
    """Split a byte stream into messages; returns (records, leftover).

    The meter connection is a stream, so several buffered messages
    arrive concatenated; the size header delimits them (Section 3.4's
    filter relies on this framing).  A size below the header length
    can never occur in a real meter stream; it means the bytes are not
    meter messages at all, and raises ValueError rather than looping.
    """
    records = []
    offset = 0
    while True:
        size = peek_size(raw, offset)
        if size is None:
            break
        if size < HEADER_BYTES:
            raise ValueError("corrupt meter stream: size %d" % size)
        if len(raw) - offset < size:
            break
        record = codec.decode(raw[offset : offset + size])
        # Batch markers are delivery-protocol control traffic, not
        # events; stream consumers (collectors, analyses) never see
        # them.
        if record["traceType"] != BATCH_MARKER_TYPE:
            records.append(record)
        offset += size
    return records, raw[offset:]
