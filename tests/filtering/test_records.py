"""Log record serialization round-trips."""

from repro.filtering.records import format_record, parse_record_line, parse_trace


def test_round_trip_preserves_values():
    record = {"event": "send", "machine": 2, "pid": 2117, "destName": "inet:red:5"}
    line = format_record(record)
    assert parse_record_line(line) == record


def test_field_order_is_respected():
    record = {"b": 2, "a": 1, "c": 3}
    line = format_record(record, field_order=["a", "b", "c"])
    assert line == "a=1 b=2 c=3"


def test_extra_fields_appended_after_ordered_ones():
    record = {"z": 26, "a": 1}
    line = format_record(record, field_order=["a", "missing"])
    assert line == "a=1 z=26"


def test_parse_coerces_integers_only():
    record = parse_record_line("pid=7 name=inet:red:5 flag=0x10")
    assert record["pid"] == 7
    assert record["name"] == "inet:red:5"
    assert record["flag"] == "0x10"  # not a plain int


def test_parse_trace_skips_blank_lines():
    text = "a=1\n\nb=2\n"
    assert parse_trace(text) == [{"a": 1}, {"b": 2}]


def test_empty_value_field():
    line = format_record({"destName": "", "pid": 1}, field_order=["pid", "destName"])
    parsed = parse_record_line(line)
    assert parsed["destName"] == ""
    assert parsed["pid"] == 1
