"""Store-backed filtering, end to end through the measurement system."""

import pytest

from repro.analysis import HappensBefore, Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.filtering.records import format_record
from repro.kernel import defs


def _talker(port_base, count=6):
    def main(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", port_base))
        for i in range(count):
            yield sys.sendto(fd, b"x" * (100 * (i + 1)), ("green", port_base + 1))
        yield sys.exit(0)

    return main


def _session(log_format, seed=21, log_directory=None):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(
        cluster,
        control_machine="yellow",
        log_format=log_format,
        log_directory=log_directory,
    )
    session.install_program("talker", _talker(6100))
    return session


def _run_job(session, templates="templates"):
    session.command("filter f1 blue filter descriptions {0}".format(templates))
    session.command("newjob j")
    session.command("addprocess j red talker")
    session.command("setflags j send socket termproc")
    session.command("startjob j")
    session.settle()


def test_store_mode_produces_identical_records():
    text_session = _session("text")
    store_session = _session("store")
    _run_job(text_session)
    _run_job(store_session)
    assert store_session.read_trace("f1") == text_session.read_trace("f1")
    blue = store_session.cluster.machine("blue")
    assert blue.fs.exists("/usr/tmp/f1.store.seg00000")
    assert not blue.fs.exists("/usr/tmp/f1.log")


def test_store_mode_applies_selection_and_reduction():
    session = _session("store")
    session.cluster.machine("blue").fs.install(
        "reduced", "type=send, msgLength>=400, pc=#*, destName=#*\n", mode=0o644
    )
    _run_job(session, templates="reduced")
    records = session.read_trace("f1")
    assert len(records) == 3  # the 400/500/600 byte sends
    for record in records:
        assert record["event"] == "send"
        assert "pc" not in record and "destName" not in record
        assert record["msgLength"] >= 400


def test_trace_from_store_matches_from_text_analyses():
    text_session = _session("text")
    store_session = _session("store")
    _run_job(text_session)
    _run_job(store_session)
    __, text = text_session.find_filter_log("f1")
    trace_text = Trace.from_text(text)
    trace_store = Trace.from_store(store_session.store_reader("f1"))
    assert [e.record for e in trace_text] == [e.record for e in trace_store]
    hb_text = HappensBefore(trace_text)
    hb_store = HappensBefore(trace_store)
    assert hb_text.ordered_fraction() == hb_store.ordered_fraction()
    assert len(trace_text.matcher().pairs) == len(trace_store.matcher().pairs)


def test_from_store_pushdown_selects_without_full_scan():
    session = _session("store")
    _run_job(session)
    reader = session.store_reader("f1")
    full = reader.records()
    sends = Trace.from_store(reader, events=["send"])
    assert len(sends) == sum(1 for r in full if r["event"] == "send")
    assert all(event.event == "send" for event in sends)


def test_store_filter_restart_appends_new_segments():
    """A relaunched store filter continues into fresh segments; the
    records an earlier incarnation flushed stay readable."""
    session = _session("store")
    _run_job(session)
    first = session.read_trace("f1")
    assert first
    now = session.cluster.sim.now
    plan = FaultPlan().kill_process(now + 5.0, "blue", "filter")
    FaultInjector(session.cluster, plan).arm()
    session.settle(ms=200.0)  # the kill lands, the DONE report arrives
    session.command("filter f1 blue")  # same name, same store base
    session.command("newjob j2")
    session.command("addprocess j2 red talker")
    session.command("setflags j2 send socket termproc")
    session.command("startjob j2")
    session.settle()
    combined = session.read_trace("f1")
    assert combined[: len(first)] == first
    assert len(combined) == 2 * len(first)
    reader = session.store_reader("f1")
    assert len(reader.segments) >= 2


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_unsealed_tail_relaunch_keeps_records_exactly_once(seed):
    """Property, across seeds: a filter killed mid-stream leaves an
    *unsealed* tail segment; the supervised relaunch recovers committed
    batch sequences from that tail by frame scan, so the kernel's
    window resend closes the gap without duplicating anything.  Every
    metered send appears in the final store exactly once."""
    from repro.programs import install_all

    session = _session("store", seed=seed)
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 40 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(100)  # mid-stream: the tail segment is unsealed
    now = session.cluster.sim.now
    FaultInjector(
        session.cluster, FaultPlan().kill_process(now + 1.0, "blue", "filter")
    ).arm()
    session.settle()
    assert (
        "WARNING: filter 'f1' on blue was relaunched" in session.transcript()
    )
    records = session.read_trace("f1")
    sends = [r for r in records if r["event"] == "send"]
    assert len(sends) == 40
    keys = [(r["machine"], r["pid"], r["pc"]) for r in sends]
    assert len(set(keys)) == 40  # exactly once, no resend duplicates


def test_concurrent_sessions_use_separate_log_directories():
    cluster = Cluster(seed=21)
    one = MeasurementSession(
        cluster, control_machine="yellow", log_directory="/usr/tmp/s1"
    )
    two = MeasurementSession(
        cluster, control_machine="green", uid=101, log_directory="/usr/tmp/s2"
    )
    one.install_program("talker", _talker(6100))
    two.install_program("talker2", _talker(6300))
    _run_job(one)
    two.command("filter f1 blue")
    two.command("newjob j")
    two.command("addprocess j red talker2")
    two.command("setflags j send socket termproc")
    two.command("startjob j")
    two.settle()
    blue = cluster.machine("blue")
    assert blue.fs.exists("/usr/tmp/s1/f1.log")
    assert blue.fs.exists("/usr/tmp/s2/f1.log")
    # Both sessions named their filter f1, yet neither sees the other's.
    ports = {r.get("destName") for r in one.read_trace("f1") if r["event"] == "send"}
    assert all("6101" in (p or "") for p in ports)
