"""The in-kernel meter.

Implements the paper's kernel changes (Section 3.2):

- event detection hooks called from the syscall layer;
- per-process meter-message buffering ("The default is to buffer
  several messages so that the number of meter messages is considerably
  smaller than the number of messages sent by the metered process");
- flush of unsent messages at process termination;
- the ``setmeter(2)`` system call (Appendix C);
- meter-state inheritance across fork.

The meter socket's descriptor "is not stored in the process's
descriptor table and is, therefore, not directly accessible by the
process" -- here it lives in ``proc.meter_entry``.
"""

from repro.kernel import defs as kdefs
from repro.kernel import errno
from repro.kernel.errno import SyscallError
from repro.metering import flags as mflags
from repro.metering.messages import MessageCodec

#: Event name -> the flag bit that enables it.
_EVENT_FLAG = {
    "send": mflags.METERSEND,
    "receivecall": mflags.METERRECEIVECALL,
    "receive": mflags.METERRECEIVE,
    "accept": mflags.METERACCEPT,
    "connect": mflags.METERCONNECT,
    "fork": mflags.METERFORK,
    "socket": mflags.METERSOCKET,
    "dup": mflags.METERDUP,
    "destsocket": mflags.METERDESTSOCKET,
    "termproc": mflags.METERTERMPROC,
}

#: Messages buffered before the kernel ships a batch to the filter.
DEFAULT_BUFFER_LIMIT = 8

#: Upper bound on messages retained across failed flushes (transient
#: backpressure, e.g. a meter socket that is not yet connected): past
#: this the oldest messages are dropped and counted, so a never-ready
#: socket cannot grow the kernel buffer without bound.
DEFAULT_REQUEUE_LIMIT = 64


class MeterSubsystem:
    """Per-machine metering state and hooks."""

    def __init__(
        self,
        machine,
        buffer_limit=DEFAULT_BUFFER_LIMIT,
        requeue_limit=DEFAULT_REQUEUE_LIMIT,
    ):
        self.machine = machine
        self.buffer_limit = buffer_limit
        self.requeue_limit = requeue_limit
        self.codec = MessageCodec()
        # Statistics for the perturbation / buffering studies.
        self.events_recorded = 0
        self.wire_sends = 0
        self.wire_bytes = 0
        #: Meter messages lost for any reason (broken or never-ready
        #: meter connection, re-queue overflow, process termination
        #: with an unsendable buffer) -- loss is observable, not silent.
        self.events_dropped = 0

    # ------------------------------------------------------------------
    # setmeter(2)
    # ------------------------------------------------------------------

    def sys_setmeter(self, proc, request):
        """Appendix C semantics.

        ``setmeter(proc, flags, socket)``: -1 for proc means the caller;
        -1 for flags/socket means no change; flags 0 (NONE) clears all;
        socket SOCK_NONE (or None) closes the meter connection.
        """
        target_pid, new_flags, socket_fd = request.args

        if target_pid == mflags.SELF:
            target = proc
        else:
            target = self.machine.procs.get(target_pid)
            if target is None or target.state == kdefs.PROC_ZOMBIE:
                raise SyscallError(errno.ESRCH, "pid %r" % target_pid)
        # "A user can request metering only for processes belonging to
        # that user ... A superuser process can set metering for any
        # process."
        if proc.uid != 0 and proc.uid != target.uid:
            raise SyscallError(errno.EPERM, "pid %r" % target_pid)

        if new_flags != mflags.NO_CHANGE:
            target.meter_flags = int(new_flags)

        if socket_fd is None:
            socket_fd = mflags.SOCK_NONE
        if socket_fd == mflags.SOCK_NONE:
            self._drop_meter_socket(target)
        elif socket_fd != mflags.NO_CHANGE:
            entry = proc.fds.get(socket_fd)
            if entry is None:
                # Appendix C prints ESRCH for "the socket does not
                # exist", but a descriptor that names no open file is
                # EBADF in 4.2BSD; ESRCH stays reserved for the process
                # lookup above.
                raise SyscallError(errno.EBADF, "socket fd %r" % socket_fd)
            if entry.kind != "socket":
                raise SyscallError(errno.ENOTSOCK, "fd %r" % socket_fd)
            sock = entry.obj
            # "The socket provided must be a stream socket in the
            # Internet domain."  (It "must be connected to be used,
            # though this is not checked.")
            if not sock.is_stream or sock.domain != kdefs.AF_INET:
                raise SyscallError(
                    errno.EINVAL, "meter socket must be an Internet stream socket"
                )
            # "If setmeter() is called specifying a new meter socket for
            # a process already having one, the old socket is closed."
            self._drop_meter_socket(target)
            target.meter_entry = self.machine.file_table.ref(entry)
        return 0

    def _drop_meter_socket(self, proc):
        if proc.meter_entry is not None:
            self.machine.file_table.unref(proc.meter_entry)
            proc.meter_entry = None

    def inherit(self, parent, child):
        """fork(): "the child process inherits the meter socket and the
        meter flags of the parent"."""
        child.meter_flags = parent.meter_flags
        if parent.meter_entry is not None:
            child.meter_entry = self.machine.file_table.ref(parent.meter_entry)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _metered(self, proc, event):
        return (
            proc.meter_entry is not None
            and proc.meter_flags & _EVENT_FLAG[event] != 0
        )

    def _record(self, proc, event, **body):
        """Build, buffer, and maybe ship one meter message."""
        raw = self.codec.encode(
            event,
            machine=self.machine.host.host_id,
            cpu_time=int(self.machine.clock.local_time(self.machine.sim.now)),
            proc_time=int(proc.proc_time()),
            pc=proc.step_count,
            **body
        )
        proc.meter_buffer.append(raw)
        self.events_recorded += 1
        proc.charge_cpu(kdefs.METER_EVENT_COST_MS)
        if (
            proc.meter_flags & mflags.M_IMMEDIATE
            or len(proc.meter_buffer) >= self.buffer_limit
        ):
            self.flush(proc)

    def flush(self, proc):
        """Ship any buffered messages over the meter connection."""
        if not proc.meter_buffer:
            return
        if proc.meter_entry is None:
            # "Meter messages are lost if ... unconnected."
            self.events_dropped += len(proc.meter_buffer)
            proc.meter_buffer = []
            return
        pending = proc.meter_buffer
        proc.meter_buffer = []
        # Single-message batches (M_IMMEDIATE, buffer_limit=1) ship the
        # encoded bytes from _record as-is; only real batches pay a join.
        data = pending[0] if len(pending) == 1 else b"".join(pending)
        sock = proc.meter_entry.obj
        if self.machine.kernel_stream_send(sock, data):
            self.wire_sends += 1
            self.wire_bytes += len(data)
        elif sock.closed or sock.peer_gone or sock.error is not None:
            # The meter connection broke (filter died, path severed):
            # transparency under failure (Section 2) -- quietly un-meter
            # the process and let it keep computing, never perturb it.
            self.events_dropped += len(pending)
            self._drop_meter_socket(proc)
        else:
            # Transient refusal while the socket itself is healthy
            # (e.g. a meter socket set before it finished connecting):
            # keep the batch for the next flush instead of silently
            # discarding it, bounded by the re-queue limit.
            requeued = pending + proc.meter_buffer
            overflow = len(requeued) - self.requeue_limit
            if overflow > 0:
                self.events_dropped += overflow
                requeued = requeued[overflow:]
            proc.meter_buffer = requeued

    # ------------------------------------------------------------------
    # Hooks called by the syscall layer
    # ------------------------------------------------------------------

    def on_socket(self, proc, entry, sock):
        if self._metered(proc, "socket"):
            self._record(
                proc,
                "socket",
                pid=proc.pid,
                sock=entry.addr,
                domain=sock.domain,
                type=sock.type,
                protocol=sock.protocol,
            )

    def on_connect(self, proc, entry, sock, peer_name):
        if self._metered(proc, "connect"):
            self._record(
                proc,
                "connect",
                pid=proc.pid,
                sock=entry.addr,
                sockName=sock.name,
                peerName=peer_name,
                **self.codec.name_lengths(sockName=sock.name, peerName=peer_name)
            )

    def on_accept(self, proc, listener_entry, conn_entry, listener, conn):
        if self._metered(proc, "accept"):
            self._record(
                proc,
                "accept",
                pid=proc.pid,
                sock=listener_entry.addr,
                newSock=conn_entry.addr,
                sockName=listener.name,
                peerName=conn.peer_name,
                **self.codec.name_lengths(
                    sockName=listener.name, peerName=conn.peer_name
                )
            )

    def on_send(self, proc, entry, sock, msg_length, dest_name):
        if self._metered(proc, "send"):
            self._record(
                proc,
                "send",
                pid=proc.pid,
                sock=entry.addr,
                msgLength=msg_length,
                destName=dest_name,
                **self.codec.name_lengths(destName=dest_name)
            )

    def on_recvcall(self, proc, entry, sock):
        if self._metered(proc, "receivecall"):
            self._record(proc, "receivecall", pid=proc.pid, sock=entry.addr)

    def on_recv(self, proc, entry, sock, msg_length, source_name):
        if self._metered(proc, "receive"):
            self._record(
                proc,
                "receive",
                pid=proc.pid,
                sock=entry.addr,
                msgLength=msg_length,
                sourceName=source_name,
                **self.codec.name_lengths(sourceName=source_name)
            )

    def on_dup(self, proc, entry, newfd):
        if self._metered(proc, "dup"):
            self._record(
                proc, "dup", pid=proc.pid, sock=entry.addr, newSock=newfd
            )

    def on_destsocket(self, proc, entry):
        if self._metered(proc, "destsocket"):
            self._record(proc, "destsocket", pid=proc.pid, sock=entry.addr)

    def on_fork(self, parent, child):
        if self._metered(parent, "fork"):
            self._record(parent, "fork", pid=parent.pid, newPid=child.pid)

    def on_termproc(self, proc):
        """Called from proc_exit: final event, flush, close the socket."""
        if self._metered(proc, "termproc"):
            self._record(
                proc,
                "termproc",
                pid=proc.pid,
                status=proc.exit_status if proc.exit_status is not None else 0,
            )
        self.flush(proc)
        if proc.meter_buffer:
            # The process is gone; whatever could not be shipped is lost.
            self.events_dropped += len(proc.meter_buffer)
            proc.meter_buffer = []
        self._drop_meter_socket(proc)
