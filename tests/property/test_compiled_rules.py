"""Compiled rule engine vs the interpreted reference.

The filter compiles rule files into closures and a traceType dispatch
table; the interpreted walk (:meth:`Rule.matches` per condition) stays
as the semantic reference.  These properties pin them together over
randomized records and rule files covering the Figures 3.3-3.4 forms:
every operator, the ``*`` wildcard, the ``#`` discard prefix,
cross-field references, and event-name values for ``type``.

Records mirror the live invariant: the five header fields (and the
``event`` tag) are always present -- :meth:`decode_message` emits them
for every message -- while body fields vary by event and so are
optional here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.rules import parse_rules
from repro.metering.messages import EVENT_NAMES, EVENT_TYPES

_HEADER_FIELDS = ["size", "machine", "cpuTime", "procTime", "traceType"]
_BODY_FIELDS = [
    "pid",
    "pc",
    "sock",
    "newSock",
    "msgLength",
    "destName",
    "sockName",
    "peerName",
    "status",
]
_ALL_FIELDS = _HEADER_FIELDS + _BODY_FIELDS + ["type"]

_STRING_VALUES = ["inet:red:5100", "inet:blue:4000", "unix:/tmp/s", "send", ""]

_ops = st.sampled_from(["=", "!=", "<", ">", "<=", ">="])

_field_values = st.one_of(
    st.integers(min_value=-50, max_value=10_000),
    st.sampled_from(_STRING_VALUES),
)


@st.composite
def _records(draw):
    trace_type = draw(
        st.one_of(
            st.integers(min_value=0, max_value=12),
            st.sampled_from(["1", "8", "send"]),  # degenerate but legal dicts
        )
    )
    record = {
        "size": draw(st.integers(min_value=24, max_value=100)),
        "machine": draw(st.integers(min_value=0, max_value=6)),
        "cpuTime": draw(st.integers(min_value=0, max_value=100_000)),
        "procTime": draw(st.integers(min_value=0, max_value=10_000)),
        "traceType": trace_type,
        "event": EVENT_NAMES.get(trace_type, "unknown"),
    }
    body = draw(
        st.dictionaries(st.sampled_from(_BODY_FIELDS), _field_values, max_size=6)
    )
    record.update(body)
    return record


@st.composite
def _rule_texts(draw):
    n_conditions = draw(st.integers(min_value=1, max_value=4))
    conditions = []
    for __ in range(n_conditions):
        field = draw(st.sampled_from(_ALL_FIELDS))
        op = draw(_ops)
        discard = draw(st.booleans())
        kind = draw(
            st.sampled_from(["int", "wildcard", "fieldref", "string", "event"])
        )
        if kind == "wildcard":
            value = "*"
        elif kind == "int":
            value = str(draw(st.integers(min_value=-50, max_value=10_000)))
        elif kind == "fieldref":
            value = draw(st.sampled_from(_ALL_FIELDS))
        elif kind == "event":
            value = draw(st.sampled_from(sorted(EVENT_TYPES)))
        else:
            value = draw(st.sampled_from([v for v in _STRING_VALUES if v]))
        conditions.append(
            "{0}{1}{2}{3}".format(field, op, "#" if discard else "", value)
        )
    return ", ".join(conditions)


_rule_files = st.lists(_rule_texts(), min_size=0, max_size=6).map("\n".join)


@given(_records(), _rule_files)
@settings(max_examples=400)
def test_compiled_equals_interpreted(record, rules_text):
    """Same accept/reject decision, same saved record, same discard
    mask, for every record and rule file."""
    compiled = parse_rules(rules_text)
    interpreted = parse_rules(rules_text, compiled=False)
    got = compiled.apply(dict(record))
    want = interpreted.apply(dict(record))
    assert got == want
    if got is not None:
        assert set(record) - set(got) == set(record) - set(want)


@given(_records(), _rule_files)
@settings(max_examples=200)
def test_apply_interpreted_is_the_reference_on_one_set(record, rules_text):
    """A single compiled RuleSet agrees with its own interpreted walk
    (no reliance on parse order or separate parsing)."""
    rules = parse_rules(rules_text)
    assert rules.apply(dict(record)) == rules.apply_interpreted(dict(record))


@given(_records())
@settings(max_examples=100)
def test_default_wildcard_template_accepts_everything(record):
    rules = parse_rules("machine=*\n")
    assert rules.apply(dict(record)) == record
