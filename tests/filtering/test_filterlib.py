"""The filter-side library: MeterInbox state handling."""

from repro.filtering.filterlib import MeterInbox


def test_last_child_events_defined_before_first_wait():
    """A filter may consult last_child_events before its first wait()
    (e.g. a startup path that polls for children): it must exist and
    be empty, not raise AttributeError."""
    inbox = MeterInbox()
    assert inbox.last_child_events == []


def test_fds_lists_listener_then_connections():
    inbox = MeterInbox(listen_fd=3)
    inbox.buffers[7] = b""
    inbox.buffers[9] = b""
    assert inbox.fds() == [3, 7, 9]
