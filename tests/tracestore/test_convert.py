"""Packing legacy text logs into stores, and the trace CLI."""

import pytest

from repro.__main__ import main
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.filtering.records import format_record, parse_trace
from repro.kernel import defs
from repro.tracestore import StoreReader, pack_text
from repro.tracestore.convert import host_names_from_records


def _talker(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", 6100))
    for i in range(6):
        yield sys.sendto(fd, b"x" * (100 * (i + 1)), ("green", 6101))
    yield sys.exit(0)


@pytest.fixture(scope="module")
def log_text():
    cluster = Cluster(seed=21)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("talker", _talker)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red talker")
    session.command("setflags j send socket termproc fork")
    session.command("startjob j")
    session.settle()
    __, text = session.find_filter_log("f1")
    return text


def test_pack_text_round_trips_every_record(log_text):
    records = parse_trace(log_text)
    store, writer = pack_text(log_text, "/t/f1.store")
    assert writer.records_appended == len(records)
    assert StoreReader.from_bytes(store).records() == records


def test_pack_preserves_reduced_records():
    text = (
        "event=send size=60 machine=1 cpuTime=30 procTime=10 traceType=1 "
        "pid=77 sock=3 msgLength=512 destNameLen=0 destName=\n"  # pc discarded
        "event=fork size=36 machine=2 cpuTime=31 procTime=0 traceType=7 "
        "pid=80 pc=9 newPid=81\n"
    )
    store, __ = pack_text(text, "/t/red.store")
    out = StoreReader.from_bytes(store).records()
    assert out == parse_trace(text)
    assert "pc" not in out[0]


def test_host_names_recovered_from_display_strings(log_text):
    records = parse_trace(log_text)
    hosts = host_names_from_records(records)
    assert "green" in hosts.values()
    assert all(not name.isdigit() for name in hosts.values())


def test_cli_pack_inspect_cat(tmp_path, capsys, log_text):
    logfile = tmp_path / "f1.log"
    logfile.write_text(log_text, encoding="ascii")
    base = str(tmp_path / "f1.store")

    assert main(["trace", "pack", str(logfile), base,
                 "--segment-bytes", "256"]) == 0
    packed = capsys.readouterr().out
    assert "packed" in packed and "segment(s)" in packed

    assert main(["trace", "inspect", base]) == 0
    inspected = capsys.readouterr().out
    assert "records" in inspected
    assert "total records: {0}".format(len(parse_trace(log_text))) in inspected

    assert main(["trace", "cat", base]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert [dict_ for dict_ in parse_trace("\n".join(lines))] == parse_trace(log_text)

    assert main(["trace", "cat", base, "--event", "send"]) == 0
    sends = parse_trace(capsys.readouterr().out)
    assert sends == [r for r in parse_trace(log_text) if r["event"] == "send"]

    assert main(["trace", "cat", base, "--machine", "999"]) == 0
    assert capsys.readouterr().out.strip() == ""


def test_cli_cat_text_lines_match_original(tmp_path, capsys, log_text):
    """cat reproduces the original record lines byte for byte (the
    log's #batch commit-marker lines are metadata, not records)."""
    logfile = tmp_path / "f1.log"
    logfile.write_text(log_text, encoding="ascii")
    base = str(tmp_path / "f1.store")
    main(["trace", "pack", str(logfile), base])
    capsys.readouterr()
    main(["trace", "cat", base])
    record_lines = "\n".join(
        line for line in log_text.splitlines() if not line.startswith("#")
    )
    assert capsys.readouterr().out.strip("\n") == record_lines.strip("\n")


def _damage_first_segment(tmp_path):
    """Flip one byte inside the first segment's sealed data region."""
    from repro.tracestore import format as sformat

    seg = sorted(tmp_path.glob("f1.store.seg*"))[0]
    data = bytearray(seg.read_bytes())
    footer = sformat.parse_footer(data)
    data[(footer["data_start"] + footer["data_end"]) // 2] ^= 0x20
    seg.write_bytes(bytes(data))


def test_cli_fsck_verify_damage_and_repair(tmp_path, capsys, log_text):
    logfile = tmp_path / "f1.log"
    logfile.write_text(log_text, encoding="ascii")
    base = str(tmp_path / "f1.store")
    main(["trace", "pack", str(logfile), base, "--segment-bytes", "256"])
    capsys.readouterr()

    assert main(["trace", "fsck", base]) == 0
    out = capsys.readouterr().out
    assert "clean" in out and "sealed-clean" in out

    _damage_first_segment(tmp_path)
    assert main(["trace", "fsck", base]) == 1
    out = capsys.readouterr().out
    assert "DAMAGED" in out and "corrupt-frame" in out and "lost" in out

    # inspect surfaces the same integrity verdict without failing.
    assert main(["trace", "inspect", base]) == 0
    assert "quarantined" in capsys.readouterr().out

    # Strict cat refuses the damaged store; salvage degrades with a
    # quantified loss ledger on stderr (corrupt frames, quarantined
    # bytes, AND how many records survived the damaged segments).
    assert main(["trace", "cat", base]) == 1
    assert "trace cat" in capsys.readouterr().out
    assert main(["trace", "cat", base, "--salvage", "yes"]) == 0
    err = capsys.readouterr().err
    assert "# salvage:" in err and "quarantined" in err
    assert "1 corrupt frame(s)" in err
    assert "record(s) salvaged" in err

    # Repair writes a clean copy; the source stays damaged (offline tool).
    assert main(["trace", "fsck", base, "--repair", "yes"]) == 1
    assert "repaired copy" in capsys.readouterr().out
    assert main(["trace", "fsck", base + ".repaired"]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["trace", "fsck", base]) == 1
    capsys.readouterr()


def test_cli_inspect_skips_foreign_segment_file(tmp_path, capsys, log_text):
    logfile = tmp_path / "f1.log"
    logfile.write_text(log_text, encoding="ascii")
    base = str(tmp_path / "f1.store")
    main(["trace", "pack", str(logfile), base])
    capsys.readouterr()
    (tmp_path / "f1.store.seg99999").write_bytes(b"not a segment")
    assert main(["trace", "inspect", base]) == 0
    out = capsys.readouterr().out
    assert "UNREADABLE" in out and "foreign" in out
    assert "total records: {0}".format(len(parse_trace(log_text))) in out


def test_cli_trace_usage_and_errors(tmp_path, capsys):
    assert main(["trace"]) == 1
    assert "usage" in capsys.readouterr().out
    assert main(["trace", "nope"]) == 1
    capsys.readouterr()
    assert main(["trace", "inspect", str(tmp_path / "missing.store")]) == 1
    assert "inspect" in capsys.readouterr().out
    assert main(["trace", "cat", str(tmp_path / "x"), "--bogus", "1"]) == 1
