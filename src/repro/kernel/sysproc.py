"""Syscall handlers: processes, signals, time, select, rcp.

Mixin for :class:`repro.kernel.machine.Machine`.
"""

from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError


class ProcessCalls:
    """fork/execv/exit/kill/select/sleep and friends."""

    # ------------------------------------------------------------------

    def sys_fork(self, proc, request):
        child_main, argv = request.args
        child = self.create_process(
            main=child_main,
            argv=argv,
            uid=proc.uid,
            ppid=proc.pid,
            program_name=proc.program_name,
            start=True,
        )
        # Inherit descriptors (shared file-table entries, as in UNIX).
        for fd, entry in proc.fds.items():
            child.fds[fd] = self.file_table.ref(entry)
        # "When a process forks, the child process inherits the meter
        # socket and the meter flags of the parent." (Section 3.2)
        self.meter.inherit(proc, child)
        proc.children.add(child.pid)
        self.meter.on_fork(proc, child)
        return child.pid

    def sys_forkexec(self, proc, request):
        path, argv, stdio_fd, start, uid = request.args
        if uid is None:
            uid = proc.uid
        elif proc.uid != 0 and uid != proc.uid:
            raise SyscallError(errno.EPERM, "cannot setuid to %r" % uid)
        # Access check runs with the effective user's rights.
        node = self.fs.lookup(path, uid, want="exec")
        program_name = node.program or bytes(node.data).decode("ascii").strip()
        main = self.registry.resolve(program_name)
        child = self.create_process(
            main=main,
            argv=argv,
            uid=uid,
            ppid=proc.pid,
            program_name=program_name,
            start=start,
        )
        if stdio_fd is not None:
            entry = proc.lookup_fd(stdio_fd)
            for fd in (0, 1, 2):
                child.fds[fd] = self.file_table.ref(entry)
        # Like fork: the child inherits metering state (so a metered
        # rexec-style server's children are metered, Section 3.2).
        self.meter.inherit(proc, child)
        self.meter.on_fork(proc, child)
        return child.pid

    def sys_procstat(self, proc, request):
        (pid,) = request.args
        target = self.procs.get(pid)
        if target is None:
            raise SyscallError(errno.ESRCH, "pid %r" % pid)
        return {
            "pid": target.pid,
            "uid": target.uid,
            "state": target.state,
            "stopped": target.stopped,
            "program": target.program_name,
            "meter_flags": target.meter_flags,
        }

    def sys_hasaccount(self, proc, request):
        (uid,) = request.args
        return uid == 0 or uid in self.accounts

    def sys_reparent(self, proc, request):
        """Adopt a running process: its termination report will go to
        the caller (init-style adoption; lets a restarted meterdaemon
        hear the SIGCHLD of children its predecessor forked)."""
        (pid,) = request.args
        if proc.uid != 0:
            raise SyscallError(errno.EPERM, "reparent is root-only")
        target = self.procs.get(pid)
        if target is None or target.state == defs.PROC_ZOMBIE:
            raise SyscallError(errno.ESRCH, "pid %r" % pid)
        old_parent = self.procs.get(target.ppid)
        if old_parent is not None:
            old_parent.children.discard(pid)
        target.ppid = proc.pid
        proc.children.add(pid)
        return 0

    def sys_execv(self, proc, request):
        path, argv = request.args
        node = self.fs.lookup(path, proc.uid, want="exec")
        program_name = node.program or bytes(node.data).decode("ascii").strip()
        main = self.registry.resolve(program_name)
        if proc.gen is not None:
            proc.gen.close()
        proc.gen = None
        proc.main = main
        proc.program_name = program_name
        proc.argv = list(argv)
        # The metering state survives exec: an acquired rexec-style
        # server stays metered across the images it runs (Section 3.2).
        return self.EXECED

    def sys_exit(self, proc, request):
        (status,) = request.args
        self.proc_exit(proc, status=status, reason=defs.EXIT_NORMAL)
        return self.EXITED

    def sys_getpid(self, proc, request):
        return proc.pid

    def sys_getuid(self, proc, request):
        return proc.uid

    def sys_kill(self, proc, request):
        pid, sig = request.args
        target = self.procs.get(pid)
        if target is None or target.state == defs.PROC_ZOMBIE:
            raise SyscallError(errno.ESRCH, "pid %r" % pid)
        if proc.uid != 0 and proc.uid != target.uid:
            raise SyscallError(errno.EPERM, "pid %r" % pid)
        self.post_signal(target, sig)
        return 0

    def sys_gettimeofday(self, proc, request):
        return self.clock.local_time(self.sim.now)

    def sys_random(self, proc, request):
        return self.sim.rng.random()

    def sys_log(self, proc, request):
        (message,) = request.args
        self.console_log(proc, message)
        return 0

    def sys_setmeter(self, proc, request):
        return self.meter.sys_setmeter(proc, request)

    def sys_meterstat(self, proc, request):
        return self.meter.sys_meterstat(proc, request)

    def sys_meterdrain(self, proc, request):
        return self.meter.sys_meterdrain(proc, request)

    def sys_hosttable(self, proc, request):
        return self.host_table.names_by_id()

    def sys_hostname(self, proc, request):
        return self.host.name

    # ------------------------------------------------------------------
    # Blocking waits
    # ------------------------------------------------------------------

    def sys_sleep(self, proc, request):
        (ms,) = request.args
        state = proc.syscall_state
        if "deadline" not in state:
            state["deadline"] = self.sim.now + ms
            self._schedule_timeout_wake(proc, ms)
        if self.sim.now + 1e-9 >= state["deadline"]:
            return 0
        return self.block(proc, request, [])

    def sys_select(self, proc, request):
        read_fds, timeout_ms, want_children, want_meter_loss = request.args
        if want_meter_loss and proc.uid != 0:
            raise SyscallError(
                errno.EPERM, "select(want_meter_loss) is root-only"
            )
        state = proc.syscall_state
        if timeout_ms is not None and "deadline" not in state:
            state["deadline"] = self.sim.now + timeout_ms
            self._schedule_timeout_wake(proc, timeout_ms)

        entries = [(fd, proc.lookup_fd(fd)) for fd in read_fds]
        ready = [
            fd for fd, entry in entries if self._entry_readable(entry)
        ]
        events = []
        if want_children:
            while proc.child_events:
                events.append(proc.child_events.popleft())
        if want_meter_loss:
            while self.meter.lost_meters:
                events.append(self.meter.lost_meters.popleft())
        if ready or events:
            return (ready, events)
        if timeout_ms is not None and self.sim.now + 1e-9 >= state["deadline"]:
            return ([], [])

        queues = [self._entry_read_queue(entry) for __, entry in entries]
        queues = [queue for queue in queues if queue is not None]
        if want_children:
            queues.append(proc.child_wait)
        if want_meter_loss:
            queues.append(self.meter.lost_wait)
        return self.block(proc, request, queues)

    @staticmethod
    def _entry_readable(entry):
        obj = entry.obj
        if entry.kind in ("socket", "tty"):
            return obj.readable()
        return True  # plain files never block

    @staticmethod
    def _entry_read_queue(entry):
        if entry.kind in ("socket", "tty"):
            return entry.obj.rd_wait
        return None

    def _schedule_timeout_wake(self, proc, delay_ms):
        """Arrange a retry at the deadline; stale wakes are harmless
        because the handler re-checks its own state."""
        state = proc.syscall_state
        token = object()
        state["timeout_token"] = token

        def fire():
            if proc.syscall_state.get("timeout_token") is token:
                self.wake(proc)

        self.sim.schedule(delay_ms, fire)

    # ------------------------------------------------------------------
    # Remote file copy (the controller's system("rcp ...") stand-in)
    # ------------------------------------------------------------------

    def sys_rcp(self, proc, request):
        src_host_name, src_path, dst_host_name, dst_path = request.args
        state = proc.syscall_state
        if "deadline" not in state:
            src_machine = self.machine_for(src_host_name)
            node = src_machine.fs.lookup(src_path, proc.uid, want="read")
            state["payload"] = (
                bytes(node.data),
                node.program,
                node.mode,
            )
            transfer_ms = self.network.params.base_latency_ms * 2 + (
                len(node.data) / max(self.network.params.bandwidth_bytes_per_ms, 1.0)
            )
            state["deadline"] = self.sim.now + transfer_ms
            self._schedule_timeout_wake(proc, transfer_ms)
        if self.sim.now + 1e-9 < state["deadline"]:
            return self.block(proc, request, [])
        dst_machine = self.machine_for(dst_host_name)
        data, program, mode = state["payload"]
        dst_machine.fs.install(
            dst_path, data=data, owner=proc.uid, mode=mode, program=program
        )
        return 0
