"""Event ordering and clock-skew estimation (Section 4.1).

"The separate machines' times ... only roughly correspond to a global
time.  Statements regarding the global ordering of events can only be
made on the basis of evidence within the trace.  For example, since a
message must be sent before it may be received, the times of sending
and receiving a message can always be ordered relative to one another.
Given these constraints, much of the global ordering can be deduced."

:class:`HappensBefore` deduces the Lamport partial order (program
order per process plus matched send->receive edges) with per-process
**vector clocks**, computed in one linear pass over the trace.  A
clock comparison answers ordering queries in O(1) and the whole
ordered-fraction study in O(events x processes) -- no transitive
closure is ever materialized, so memory stays linear in the trace.
The happens-before DAG itself is still available (built lazily) for
:meth:`HappensBefore.consistent_global_order`'s topological sort and
for callers that want graph algorithms.

:func:`estimate_clock_skews` recovers approximate relative clock
offsets from the send/receive pairs, in the spirit of TEMPO (Gusella
& Zatti 83).
"""

from collections import Counter, deque

import networkx as nx


class HappensBefore:
    """The happens-before partial order over a trace."""

    def __init__(self, trace, matcher=None):
        self.trace = trace
        self.matcher = matcher or trace.matcher()
        self._graph = None
        self._clock_state = None

    # -- the vector-clock engine ---------------------------------------

    def _predecessors(self):
        """Immediate-predecessor lists by event index: the previous
        event of the same process plus any matched sends.  O(N + E)."""
        preds = [[] for __ in self.trace.events]
        for process in self.trace.processes():
            events = self.trace.events_for(process)
            for earlier, later in zip(events, events[1:]):
                preds[later.index].append(earlier.index)
        for pair in self.matcher.pairs:
            if pair.send.index != pair.recv.index:
                preds[pair.recv.index].append(pair.send.index)
        return preds

    def _merge_clock(self, clock, preds, clocks, nproc):
        for earlier in preds:
            other = clocks[earlier]
            if other is None:
                continue
            for i in range(nproc):
                if other[i] > clock[i]:
                    clock[i] = other[i]

    def _clocks(self):
        """(clocks by event index, process -> clock component index).

        An event's clock component for process p counts the events of
        p that happen before it (or at it, for its own process), so
        ``a -> b`` iff b's component for a's process has reached a's
        own value.  Computed with one Kahn pass over the edges.
        """
        if self._clock_state is None:
            events = self.trace.events
            processes = self.trace.processes()
            proc_index = {p: i for i, p in enumerate(processes)}
            nproc = len(processes)
            preds = self._predecessors()
            succs = [[] for __ in events]
            indegree = [0] * len(events)
            for later, earlier_list in enumerate(preds):
                indegree[later] = len(earlier_list)
                for earlier in earlier_list:
                    succs[earlier].append(later)
            clocks = [None] * len(events)
            ready = deque(i for i, d in enumerate(indegree) if d == 0)
            done = 0
            while ready:
                index = ready.popleft()
                clock = [0] * nproc
                self._merge_clock(clock, preds[index], clocks, nproc)
                event = events[index]
                clock[proc_index[event.process]] = event.proc_seq + 1
                clocks[index] = clock
                done += 1
                for later in succs[index]:
                    indegree[later] -= 1
                    if indegree[later] == 0:
                        ready.append(later)
            if done < len(events):
                # Cyclic "evidence" (a garbage or corrupted trace):
                # finish best-effort in file order so queries stay
                # answerable instead of crashing.
                for index, clock in enumerate(clocks):
                    if clock is not None:
                        continue
                    clock = [0] * nproc
                    self._merge_clock(clock, preds[index], clocks, nproc)
                    event = events[index]
                    clock[proc_index[event.process]] = event.proc_seq + 1
                    clocks[index] = clock
            self._clock_state = (clocks, proc_index)
        return self._clock_state

    def vector_clock(self, event):
        """The event's vector clock as a tuple: component i counts the
        events of the i-th process (in ``trace.processes()`` order)
        that happen before (or at) this event."""
        clocks, __ = self._clocks()
        return tuple(clocks[event.index])

    @property
    def graph(self):
        """The happens-before DAG (program order + message edges),
        built on first use; ordering queries never need it."""
        if self._graph is None:
            graph = nx.DiGraph()
            for event in self.trace:
                graph.add_node(event.index)
            for later, earlier_list in enumerate(self._predecessors()):
                for earlier in earlier_list:
                    graph.add_edge(earlier, later)
            self._graph = graph
        return self._graph

    # -- queries -------------------------------------------------------

    def happens_before(self, event_a, event_b):
        """Whether ``event_a`` -> ``event_b`` is deducible.  O(1): one
        clock-component comparison."""
        if event_a.index == event_b.index:
            return False
        clocks, proc_index = self._clocks()
        component = proc_index[event_a.process]
        return (
            clocks[event_b.index][component]
            >= clocks[event_a.index][component]
        )

    def concurrent(self, event_a, event_b):
        """Neither ordered before the other: truly concurrent (or the
        trace lacks the evidence)."""
        return (
            event_a.index != event_b.index
            and not self.happens_before(event_a, event_b)
            and not self.happens_before(event_b, event_a)
        )

    def ordered_fraction(self):
        """Fraction of cross-machine event pairs the trace can order.

        This is the paper's "much of the global ordering can be
        deduced" made quantitative (bench P5).  O(N x P): summing an
        event's clock components over other-machine processes counts
        every ordered cross-machine pair exactly once, at its later
        event.
        """
        clocks, __ = self._clocks()
        events = self.trace.events
        per_machine = Counter(event.machine for event in events)
        n = len(events)
        total = n * (n - 1) // 2 - sum(
            count * (count - 1) // 2 for count in per_machine.values()
        )
        if total == 0:
            return 1.0
        machine_of = [machine for machine, __pid in self.trace.processes()]
        ordered = 0
        for event in events:
            clock = clocks[event.index]
            machine = event.machine
            for component, count in enumerate(clock):
                if machine_of[component] != machine:
                    ordered += count
        return ordered / total

    def consistent_global_order(self):
        """One total order consistent with happens-before, breaking
        ties by (skew-corrected) local timestamps."""
        skews = estimate_clock_skews(self.trace, self.matcher)

        def key(index):
            event = self.trace.events[index]
            return (event.local_time - skews.get(event.machine, 0.0), index)

        return [
            self.trace.events[index]
            for index in nx.lexicographical_topological_sort(self.graph, key=key)
        ]

    def violates_causality(self):
        """Send/receive pairs whose raw local timestamps run backwards:
        direct evidence of clock skew (receive stamped before send)."""
        return [
            pair
            for pair in self.matcher.pairs
            if pair.recv.local_time < pair.send.local_time
        ]


def estimate_clock_models(trace, matcher=None, reference=None):
    """Full linear clock models per machine: local ~ offset + rate * ref.

    Where :func:`estimate_clock_skews` recovers constant offsets, this
    also recovers *drift*: for each machine B with two-way traffic to
    the reference A, matched pairs constrain B's clock from both sides
    (a message's receive stamp is at least its send stamp plus zero
    delay, in both directions).  Fitting a line through the forward
    pairs and another through the reverse pairs and averaging them
    splits the (assumed symmetric) network delay out -- the TEMPO idea
    extended to rates.

    Returns {machine id: (offset_ms, rate)} with the reference machine
    mapped to (0.0, 1.0).  Machines without two-way traffic to the
    reference fall back to offset-only estimates.
    """
    import numpy as np

    matcher = matcher or trace.matcher()
    machines = trace.machines()
    if not machines:
        return {}
    if reference is None:
        reference = machines[0]
    models = {reference: (0.0, 1.0)}

    by_pair = {}
    for pair in matcher.pairs:
        key = (pair.send.machine, pair.recv.machine)
        by_pair.setdefault(key, []).append(
            (pair.send.local_time, pair.recv.local_time)
        )

    fallback = estimate_clock_skews(trace, matcher, reference=reference)
    for machine in machines:
        if machine == reference:
            continue
        forward = by_pair.get((reference, machine), [])  # (ref t, b t)
        reverse = [
            (a, b) for b, a in by_pair.get((machine, reference), [])
        ]  # -> (ref t, b t)
        if len(forward) >= 2 and len(reverse) >= 2:
            m1, c1 = np.polyfit(*zip(*forward), 1)
            m2, c2 = np.polyfit(*zip(*reverse), 1)
            rate = (m1 + m2) / 2.0
            offset = (c1 + c2) / 2.0
            models[machine] = (float(offset), float(rate))
        else:
            models[machine] = (fallback.get(machine, 0.0), 1.0)
    return models


def estimate_clock_skews(trace, matcher=None, reference=None):
    """Relative clock offsets per machine, from message pairs.

    For machines A, B with matched messages in both directions, the
    minimum observed (recv_local - send_local) in each direction bounds
    the offset: offset ~ (min_fwd - min_rev) / 2, assuming roughly
    symmetric network delay (the TEMPO assumption).  Offsets are
    reported relative to ``reference`` (default: lowest machine id);
    machines connected only indirectly are resolved transitively.

    Returns {machine id: offset_ms}; subtract the offset from a
    machine's local timestamps to align them.
    """
    matcher = matcher or trace.matcher()
    deltas = {}
    for pair in matcher.pairs:
        key = (pair.send.machine, pair.recv.machine)
        if key[0] == key[1]:
            continue
        delta = pair.recv.local_time - pair.send.local_time
        if key not in deltas or delta < deltas[key]:
            deltas[key] = delta

    graph = nx.Graph()
    for (a, b), fwd in deltas.items():
        rev = deltas.get((b, a))
        if rev is None:
            continue
        # local_B - local_A ~ (fwd - rev) / 2
        offset = (fwd - rev) / 2.0
        graph.add_edge(a, b, offset_ab=offset, a=a)

    machines = trace.machines()
    if reference is None:
        reference = machines[0] if machines else None
    skews = {machine: 0.0 for machine in machines}
    if reference is None or reference not in graph:
        return skews
    seen = {reference}
    frontier = [reference]
    while frontier:
        current = frontier.pop()
        for neighbor in graph.neighbors(current):
            if neighbor in seen:
                continue
            data = graph.edges[current, neighbor]
            offset = data["offset_ab"]
            if data["a"] != current:
                offset = -offset
            skews[neighbor] = skews[current] + offset
            seen.add(neighbor)
            frontier.append(neighbor)
    return skews
