"""Daemon liveness: heartbeats, degradation, bounded recovery probes.

The controller holds one :class:`HealthMonitor`; every outcome that
says anything about a meterdaemon -- a user command's RPC, a liveness
ping -- flows through the same two transitions (:meth:`note_success`,
:meth:`note_failure`), so a machine cannot be half-degraded depending
on who last talked to it.

Schedule shape (all simulator milliseconds):

- While the user is active (a command or RPC within the last
  ``HEARTBEAT_MS * IDLE_ROUNDS``), every machine hosting part of the
  session -- a job process or a filter -- is pinged every
  ``HEARTBEAT_MS``.
- A machine that stops answering is *degraded* (one warning, visible
  in ``jobs``) and re-probed with exponential backoff from
  ``PROBE_MIN_MS`` to ``PROBE_CAP_MS``, at most ``PROBES_PER_EPISODE``
  probes, then the monitor goes dormant for it.
- Any activity re-arms the dormant probes; any successful exchange
  clears the degradation (one "responding again" warning).

Dormancy is load-bearing: the controller idles in a select with no
timeout when nothing is scheduled, so a finished session quiesces and
``settle()`` terminates.  Probes are single-attempt and silent except
for state transitions.
"""

HEARTBEAT_MS = 400.0
IDLE_ROUNDS = 5
PROBE_MIN_MS = 300.0
PROBE_CAP_MS = 4000.0
PROBES_PER_EPISODE = 8

#: Per-probe connect/receive deadline.  Shorter than the RPC deadline:
#: a probe asks one cheap question and gives up fast.
PROBE_DEADLINE_MS = 800.0


class MachineHealth:
    """What the controller believes about one machine's meterdaemon."""

    __slots__ = (
        "failures",
        "degraded",
        "last_probe_ms",
        "next_probe_ms",
        "backoff_ms",
        "probes_left",
    )

    def __init__(self):
        self.failures = 0
        self.degraded = False
        self.last_probe_ms = None
        self.next_probe_ms = None
        self.backoff_ms = PROBE_MIN_MS
        self.probes_left = 0


class HealthMonitor:
    """Single transition path for daemon health, plus the probe clock."""

    def __init__(self):
        self.machines = {}  # name -> MachineHealth
        self.active_until = 0.0

    def entry(self, machine):
        return self.machines.setdefault(machine, MachineHealth())

    # -- activity and scheduling ----------------------------------------

    def note_activity(self, now):
        """A user command or RPC happened: keep heartbeats running for
        another idle window, and re-arm dormant recovery probes."""
        self.active_until = now + HEARTBEAT_MS * IDLE_ROUNDS
        for health in self.machines.values():
            if health.degraded and health.probes_left <= 0:
                health.probes_left = PROBES_PER_EPISODE
                health.backoff_ms = PROBE_MIN_MS
                health.next_probe_ms = now + health.backoff_ms

    def watch(self, machine, now):
        """Ensure a machine hosting session state is on the heartbeat
        schedule."""
        health = self.entry(machine)
        if health.next_probe_ms is None and not health.degraded:
            health.next_probe_ms = now + HEARTBEAT_MS

    def _armed(self, health):
        if health.next_probe_ms is None:
            return False
        if health.degraded:
            return health.probes_left > 0
        return health.next_probe_ms <= self.active_until

    def next_wakeup(self, watched):
        """Earliest scheduled probe among ``watched`` machines, or None
        when every machine is dormant (the select blocks indefinitely)."""
        deadline = None
        for name in watched:
            health = self.machines.get(name)
            if health is None or not self._armed(health):
                continue
            if deadline is None or health.next_probe_ms < deadline:
                deadline = health.next_probe_ms
        return deadline

    def due(self, now, watched):
        """Machines whose probe deadline has arrived, in name order."""
        ready = []
        for name in watched:
            health = self.machines.get(name)
            if health is None or not self._armed(health):
                continue
            if health.next_probe_ms <= now + 1e-9:
                ready.append(name)
        return sorted(ready)

    # -- the shared transitions -----------------------------------------

    def note_success(self, machine, now):
        """Any successful exchange with the machine's daemon.  Returns
        True when this cleared a degraded state (emit the recovery
        warning and reconcile)."""
        health = self.entry(machine)
        recovered = health.degraded
        health.failures = 0
        health.degraded = False
        health.last_probe_ms = now
        health.backoff_ms = PROBE_MIN_MS
        health.probes_left = 0
        health.next_probe_ms = now + HEARTBEAT_MS
        return recovered

    def note_failure(self, machine, now):
        """Any failed exchange (retry budget already spent by the
        caller).  Returns True when this marked the machine degraded
        (emit the degradation warning)."""
        health = self.entry(machine)
        health.failures += 1
        health.last_probe_ms = now
        if not health.degraded:
            health.degraded = True
            health.backoff_ms = PROBE_MIN_MS
            health.probes_left = PROBES_PER_EPISODE
            health.next_probe_ms = now + health.backoff_ms
            return True
        if health.probes_left > 0:
            health.probes_left -= 1
        if health.probes_left <= 0:
            health.next_probe_ms = None  # dormant until activity
        else:
            health.backoff_ms = min(health.backoff_ms * 2.0, PROBE_CAP_MS)
            health.next_probe_ms = now + health.backoff_ms
        return False

    # -- queries ---------------------------------------------------------

    def is_degraded(self, machine):
        health = self.machines.get(machine)
        return health is not None and health.degraded

    def degraded_machines(self):
        return sorted(
            name for name, health in self.machines.items() if health.degraded
        )
