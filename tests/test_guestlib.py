"""Guest-side helper library."""

import pytest

from repro import guestlib
from repro.kernel import defs
from repro.kernel.errno import SyscallError
from tests.conftest import run_guests


def test_read_whole_file(cluster):
    cluster.machine("red").fs.install("/etc/data", b"abc\ndef\n", mode=0o644)
    out = []

    def guest(sys, argv):
        out.append((yield from guestlib.read_whole_file(sys, "/etc/data")))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert out == ["abc\ndef\n"]


def test_read_optional_file_absent_returns_none(cluster):
    out = []

    def guest(sys, argv):
        out.append((yield from guestlib.read_optional_file(sys, "/nope")))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert out == [None]


def test_write_text_creates_and_appends(cluster):
    def guest(sys, argv):
        yield from guestlib.write_text(sys, "/tmp/t", "one\n")
        yield from guestlib.write_text(sys, "/tmp/t", "two\n", mode="a")
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    node = cluster.machine("red").fs.node("/tmp/t")
    assert bytes(node.data) == b"one\ntwo\n"


def test_read_line_buffers_across_calls(cluster):
    lines = []

    def writer(sys, argv):
        yield sys.write(int(argv[0]), b"first\nsec")
        yield sys.sleep(10)
        yield sys.write(int(argv[0]), b"ond\nlast")
        yield sys.close(int(argv[0]))
        yield sys.exit(0)

    def reader(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.fork(writer, [str(b)])
        yield sys.close(b)
        buffered = [b""]
        while True:
            line = yield from guestlib.read_line(sys, a, buffered)
            if line is None:
                break
            lines.append(line)
        yield sys.exit(0)

    run_guests(cluster, ("red", reader, ()))
    assert lines == ["first", "second", "last"]


def test_frames_round_trip(cluster):
    got = []

    def peer(sys, argv):
        fd = int(argv[0])
        payload = yield from guestlib.recv_frame(sys, fd)
        yield from guestlib.send_frame(sys, fd, b"re:" + payload)
        yield sys.exit(0)

    def main(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.fork(peer, [str(b)])
        yield sys.close(b)
        yield from guestlib.send_frame(sys, a, b"hello")
        got.append((yield from guestlib.recv_frame(sys, a)))
        yield sys.exit(0)

    run_guests(cluster, ("red", main, ()))
    assert got == [b"re:hello"]


def test_recv_frame_eof_returns_none(cluster):
    got = []

    def main(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.close(b)
        got.append((yield from guestlib.recv_frame(sys, a)))
        yield sys.exit(0)

    run_guests(cluster, ("red", main, ()))
    assert got == [None]


def test_json_frames(cluster):
    got = []

    def main(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield from guestlib.send_json(sys, a, {"x": [1, 2], "y": "z"})
        got.append((yield from guestlib.recv_json(sys, b)))
        yield sys.exit(0)

    run_guests(cluster, ("red", main, ()))
    assert got == [{"x": [1, 2], "y": "z"}]


def test_connect_retry_eventually_succeeds(cluster):
    def late_server(sys, argv):
        yield sys.sleep(100)  # listen late
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        yield sys.exit(0)

    def client(sys, argv):
        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.exit(0)

    server, client_proc = run_guests(
        cluster, ("red", late_server, ()), ("green", client, ())
    )
    assert client_proc.exit_reason == defs.EXIT_NORMAL


def test_connect_retry_gives_up(cluster):
    errors = []

    def client(sys, argv):
        try:
            yield from guestlib.connect_retry(
                sys,
                defs.AF_INET,
                defs.SOCK_STREAM,
                ("red", 5999),
                attempts=3,
                backoff_ms=5,
            )
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("green", client, ()))
    from repro.kernel import errno

    assert errors == [errno.ECONNREFUSED]


def test_read_exactly(cluster):
    got = []

    def main(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.write(a, b"0123456789")
        got.append((yield from guestlib.read_exactly(sys, b, 4)))
        got.append((yield from guestlib.read_exactly(sys, b, 6)))
        yield sys.close(a)
        got.append((yield from guestlib.read_exactly(sys, b, 5)))  # EOF
        yield sys.exit(0)

    run_guests(cluster, ("red", main, ()))
    assert got == [b"0123", b"456789", None]
