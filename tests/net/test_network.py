"""Unit tests for the internetwork delivery services."""

from repro.net.hosts import HostTable
from repro.net.network import Network, NetworkParams
from repro.sim.simulator import Simulator


def _net(seed=1, **params):
    sim = Simulator(seed=seed)
    table = HostTable()
    a = table.add("a")
    b = table.add("b")
    return sim, Network(sim, NetworkParams(**params)), a, b


def test_datagram_delivery_takes_latency():
    sim, net, a, b = _net(base_latency_ms=2.0, jitter_ms=0.0, bandwidth_bytes_per_ms=0)
    arrivals = []
    net.send_datagram(a, b, 100, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [2.0]


def test_local_delivery_is_faster_than_remote():
    sim, net, a, b = _net(jitter_ms=0.0)
    times = {}
    net.send_datagram(a, a, 10, lambda: times.setdefault("local", sim.now))
    net.send_datagram(a, b, 10, lambda: times.setdefault("remote", sim.now))
    sim.run()
    assert times["local"] < times["remote"]


def test_bandwidth_adds_transfer_time():
    sim, net, a, b = _net(base_latency_ms=1.0, jitter_ms=0.0, bandwidth_bytes_per_ms=100.0)
    arrivals = []
    net.send_datagram(a, b, 1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [1.0 + 10.0]


def test_datagram_loss_drops_some_remote_packets():
    sim, net, a, b = _net(seed=3, datagram_loss=0.5)
    delivered = []
    for __ in range(200):
        net.send_datagram(a, b, 10, lambda: delivered.append(1))
    sim.run()
    assert 0 < len(delivered) < 200
    assert net.datagrams_dropped == 200 - len(delivered)


def test_datagram_loss_never_applies_locally():
    sim, net, a, b = _net(seed=3, datagram_loss=1.0)
    delivered = []
    for __ in range(50):
        net.send_datagram(a, a, 10, lambda: delivered.append(1))
    sim.run()
    assert len(delivered) == 50


def test_datagrams_can_reorder_under_jitter():
    sim, net, a, b = _net(seed=5, jitter_ms=5.0, bandwidth_bytes_per_ms=0)
    order = []
    for i in range(50):
        net.send_datagram(a, b, 10, lambda i=i: order.append(i))
    sim.run()
    assert sorted(order) == list(range(50))
    assert order != list(range(50))  # at least one overtake


def test_reliable_channel_preserves_fifo_despite_jitter():
    sim, net, a, b = _net(seed=5, jitter_ms=5.0, bandwidth_bytes_per_ms=0)
    order = []
    for i in range(50):
        net.send_reliable("chan", a, b, 10, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(50))


def test_reliable_channels_are_independent():
    sim, net, a, b = _net(seed=9, jitter_ms=0.0)
    order = []
    net.send_reliable("one", a, b, 10_000_000, lambda: order.append("big"))
    net.send_reliable("two", a, b, 10, lambda: order.append("small"))
    sim.run()
    assert order == ["small", "big"]


def test_reliable_never_drops():
    sim, net, a, b = _net(seed=1, datagram_loss=1.0)
    count = []
    for __ in range(20):
        net.send_reliable("c", a, b, 10, lambda: count.append(1))
    sim.run()
    assert len(count) == 20


def test_close_channel_forgets_fifo_state():
    sim, net, a, b = _net()
    net.send_reliable("c", a, b, 10, lambda: None)
    assert ("c" in net._channel_clearance)
    net.close_channel("c")
    assert "c" not in net._channel_clearance


def test_statistics_counters():
    sim, net, a, b = _net(seed=2, datagram_loss=0.0)
    net.send_datagram(a, b, 100, lambda: None)
    net.send_reliable("c", a, b, 50, lambda: None)
    assert net.datagrams_sent == 1
    assert net.reliable_packets_sent == 1
    assert net.bytes_sent == 150
