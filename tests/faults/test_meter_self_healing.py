"""Regression tests for self-healing paths the chaos engine exposed.

Two bugs found by schedule fuzzing (PR 10), each pinned here with the
narrowest deterministic repro:

* A meterdaemon killed *and* restarted between two controller
  heartbeats never looks down -- every probe that runs succeeds.  The
  controller must notice the boot-epoch change stamped on daemon
  replies and reconcile anyway, or the replacement daemon never adopts
  the machine's records and process deaths go unreported.

* A REMETER that fails because the target daemon is down must be
  remembered as a debt.  Without it, a machine whose processes have all
  been killed drops out of the probe watch set with meter batches still
  spooled under the filter's retired port, and they are stranded there
  forever once its replacement daemon sweeps.
"""

from repro.chaos.generator import generate_plan
from repro.chaos.oracles import run_oracles, violated_names
from repro.chaos.scenario import DgramPairScenario, run_scenario
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.programs import install_all

DONE_LINE = "DONE: process dgramproducer in job 'j' terminated"


def _dgram_pair_run(plan_events, seed=7):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 40 64 5")
    session.command("addprocess j green dgramproducer red 6001 40 64 5")
    session.command("setflags j send termproc immediate")
    session.command("startjob j")
    plan = plan_events(cluster.sim.now)
    injector = FaultInjector(cluster, plan, session=session).arm()
    session.settle()
    session.command("stopjob j")
    session.settle()
    return cluster, session, injector


def test_restart_between_heartbeats_is_detected_and_reconciled():
    """Kill + restart the daemon inside one heartbeat interval: no
    probe ever fails, so only the boot-epoch check can notice."""

    def plan(now):
        return (
            FaultPlan()
            .kill_daemon(now + 20.0, "green")
            .restart_daemon(now + 50.0, "green")
        )

    cluster, session, injector = _dgram_pair_run(plan)
    transcript = session.transcript()
    # The controller never saw green down...
    assert "is not responding" not in transcript
    # ...but spotted the epoch change and reconciled,
    assert (
        "WARNING: meterdaemon on 'green' was restarted between "
        "heartbeats; reconciling" in transcript
    )
    # so both producer deaths were reported, each exactly once.
    assert transcript.count(DONE_LINE) == 2


def test_restart_detection_does_not_fire_on_a_healthy_daemon():
    def plan(now):
        return FaultPlan().heal(now + 20.0)

    __, session, __ = _dgram_pair_run(plan)
    assert "restarted between heartbeats" not in session.transcript()


def test_failed_remeter_debt_is_paid_on_daemon_recovery():
    """The generated schedule that found the bug: the filter dies
    twice, and its second relaunch REMETERs red while red's daemon is
    down.  Red's producer is already dead, so without the owed-remeter
    debt nothing would ever probe red again, and the batches spooled
    under the filter's retired port would never reach the store."""
    scenario = DgramPairScenario()
    plan = generate_plan(0, "processes", scenario.surface(None))
    assert plan.has_kind("kill_process")
    baseline = run_scenario(scenario, 7)
    run = run_scenario(scenario, 7, plan)
    verdict = run_oracles(run, baseline)
    assert verdict["ok"], violated_names(verdict)
    # Record-identity is the load-bearing oracle here: every meter
    # record from the killed machines made it to the store.
    assert verdict["oracles"]["baseline_identical"]["applied"]


def test_recovered_cluster_leaves_no_orphan_batches_parked():
    """After daemons return and debts settle, no kernel may still hold
    undelivered meter batches spooled for a retired destination."""

    def plan(now):
        return (
            FaultPlan()
            .kill_daemon(now + 140.0, "red")
            .kill_filter(now + 160.0, "blue")
            .restart_daemon(now + 400.0, "red")
        )

    cluster, session, __ = _dgram_pair_run(plan)
    parked = {
        name: sum(
            1
            for spool in machine.meter.orphans.values()
            for entry in spool
            if not entry[3]
        )
        for name, machine in cluster.machines.items()
    }
    assert all(count == 0 for count in parked.values()), parked
    assert session.transcript().count(DONE_LINE) == 2
