"""Trace-driven debugging checks.

The paper's motivation is that distributed programs are hard to debug;
its tool was used for "program debugging" as well as measurement
(Section 5).  This module packages the checks a programmer runs over a
trace when a computation misbehaves:

- messages sent but never received (lost datagrams, crashed readers);
- receive calls that never completed (a process blocked forever --
  the classic distributed hang);
- processes that terminated with a non-zero status or never terminated
  inside the trace;
- connections accepted but never used.
"""


class Finding:
    """One diagnostic finding."""

    def __init__(self, kind, event, detail):
        self.kind = kind
        self.event = event
        self.detail = detail

    def __repr__(self):
        return "Finding({0}: {1})".format(self.kind, self.detail)


class TraceAudit:
    """Run all debugging checks over a trace."""

    def __init__(self, trace, matcher=None):
        self.trace = trace
        self.matcher = matcher or trace.matcher()
        self.findings = []
        self._check_lost_messages()
        self._check_stuck_receives()
        self._check_terminations()
        self._check_idle_connections()

    def _add(self, kind, event, detail):
        self.findings.append(Finding(kind, event, detail))

    def by_kind(self, kind):
        return [f for f in self.findings if f.kind == kind]

    # ------------------------------------------------------------------

    def _check_lost_messages(self):
        for event in self.matcher.unmatched_sends:
            dest = event.name("destName") or "connection peer"
            self._add(
                "lost-message",
                event,
                "pid {0} on machine {1} sent {2} bytes to {3}; no "
                "matching receive in the trace".format(
                    event.pid, event.machine, event.msg_length, dest
                ),
            )

    def _check_stuck_receives(self):
        """A receivecall without a following receive on the same
        (process, socket) means the process was still blocked when the
        trace ended."""
        for process in self.trace.processes():
            events = self.trace.events_for(process)
            pending = {}  # sock -> receivecall event
            for event in events:
                if event.event == "receivecall":
                    pending[event.sock] = event
                elif event.event == "receive":
                    pending.pop(event.sock, None)
            for sock, call in pending.items():
                self._add(
                    "stuck-receive",
                    call,
                    "pid {0} on machine {1} called receive on socket "
                    "{2} and never got a message".format(
                        call.pid, call.machine, sock
                    ),
                )

    def _check_terminations(self):
        terminated = {}
        for event in self.trace.by_type("termproc"):
            terminated[event.process] = event
            if event.get("status", 0) != 0:
                self._add(
                    "abnormal-exit",
                    event,
                    "pid {0} on machine {1} exited with status {2}".format(
                        event.pid, event.machine, event["status"]
                    ),
                )
        # Only meaningful if termination was being metered at all.
        if terminated:
            for process in self.trace.processes():
                if process not in terminated:
                    machine, pid = process
                    self._add(
                        "no-termination",
                        None,
                        "pid {0} on machine {1} never terminated within "
                        "the trace".format(pid, machine),
                    )

    def _check_idle_connections(self):
        used = set()
        for event in self.trace.events:
            if event.event in ("send", "receive"):
                used.add((event.machine, event.sock))
        for event in self.trace.by_type("accept"):
            endpoint = (event.machine, event["newSock"])
            if endpoint not in used:
                self._add(
                    "idle-connection",
                    event,
                    "connection accepted on machine {0} (socket {1}) "
                    "carried no traffic".format(event.machine, event["newSock"]),
                )

    # ------------------------------------------------------------------

    def healthy(self):
        return not self.findings

    def report(self):
        if not self.findings:
            return "Trace audit: no anomalies found"
        lines = ["Trace audit: {0} finding(s)".format(len(self.findings))]
        for finding in self.findings:
            lines.append("  [{0}] {1}".format(finding.kind, finding.detail))
        return "\n".join(lines)
