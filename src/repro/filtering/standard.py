"""The standard filter (Section 3.4).

"After receiving a message from standard input, the default filter
performs selection and reduction operations on the event records
received.  It uses event record descriptions and selection rules to
specify the criteria for data selection and reduction."

Guest program arguments::

    argv = [filtername, log_path, descriptions_path, templates_path]

Accepted records go to the filter's log file ("A filter sends its
output to a log file located in the /usr/tmp directory.  Each filter
has its own log file.").  Two output modes, chosen by the log path's
suffix:

- ``<name>.log`` -- the paper's text mode: one line per record,
  opened in *append* mode so a filter relaunched after a daemon
  restart extends the log instead of erasing it;
- ``<name>.store`` -- the binary trace store: accepted records are
  appended in their Appendix-A wire encoding to segmented, indexed
  files (see :mod:`repro.tracestore`), which is what the streaming
  analyses and large computations want.

The log directory defaults to the paper's ``/usr/tmp`` but is a per-
session setting (carried here through the log path argument), so
concurrent sessions on one machine keep separate logs.
"""

from repro import guestlib
from repro.filtering.descriptions import parse_descriptions
from repro.filtering.filterlib import MeterInbox
from repro.filtering.records import format_record
from repro.filtering.rules import RuleSet, parse_rules
from repro.metering.messages import record_fields
from repro.tracestore import (
    StoreWriter,
    discard_mask,
    flush_to_guest,
    next_segment_index,
    zero_masked_bytes,
)

PROGRAM_NAME = "filter"
DEFAULT_LOG_DIRECTORY = "/usr/tmp"
#: Backward-compatible module alias (prefer the per-session setting).
LOG_DIRECTORY = DEFAULT_LOG_DIRECTORY

TEXT_SUFFIX = ".log"
STORE_SUFFIX = ".store"

LOG_FORMAT_TEXT = "text"
LOG_FORMAT_STORE = "store"

#: Text-mode log buffering: accepted lines accumulate across wait
#: batches and hit the file in one write when the buffer reaches this
#: many bytes or the meter stream goes idle for the flush interval.
LOG_FLUSH_BYTES = 32 * 1024
LOG_IDLE_FLUSH_MS = 5.0


def log_path_for(filtername, directory=None, log_format=LOG_FORMAT_TEXT):
    suffix = STORE_SUFFIX if log_format == LOG_FORMAT_STORE else TEXT_SUFFIX
    return "{0}/{1}{2}".format(directory or LOG_DIRECTORY, filtername, suffix)


def standard_filter(sys, argv):
    """Guest main for the standard filter."""
    filtername = argv[0] if len(argv) > 0 else "filter"
    log_path = argv[1] if len(argv) > 1 else log_path_for(filtername)
    descriptions_path = argv[2] if len(argv) > 2 else "descriptions"
    templates_path = argv[3] if len(argv) > 3 else "templates"

    descriptions_text = yield from guestlib.read_whole_file(sys, descriptions_path)
    descriptions = parse_descriptions(descriptions_text)
    templates_text = yield from guestlib.read_optional_file(sys, templates_path)
    rules = parse_rules(templates_text) if templates_text is not None else RuleSet([])
    host_names = yield sys.hosttable()

    store_mode = log_path.endswith(STORE_SUFFIX)
    if store_mode:
        # A relaunched filter continues after the segments an earlier
        # incarnation flushed; it never rewrites them.
        start = yield from next_segment_index(sys, log_path)
        writer = StoreWriter(log_path, start_index=start, host_names=host_names)
        log_fd = None
    else:
        writer = None
        log_fd = yield sys.open(log_path, "a")

    inbox = MeterInbox()
    pending = []  # accepted text lines buffered across wait batches
    pending_bytes = 0
    while True:
        # While lines are buffered, wake after a short idle gap so the
        # log never lags the stream by more than the flush interval.
        timeout_ms = LOG_IDLE_FLUSH_MS if pending else None
        raw_messages = yield from inbox.wait(sys, timeout_ms=timeout_ms)
        lines = []
        for raw in raw_messages:
            try:
                record = descriptions.decode_message(raw, host_names)
            except (ValueError, KeyError):
                # Anything may connect to the meter port; a malformed
                # message must not take the filter down -- drop it.
                continue
            saved = rules.apply(record)
            if saved is None:
                continue
            if store_mode:
                event = record["event"]
                mask = discard_mask(
                    event,
                    {name for name in record_fields(event) if name not in saved},
                )
                writer.append(zero_masked_bytes(raw, event, mask), mask)
            else:
                order = descriptions.field_order(record["event"])
                lines.append(format_record(saved, order))
        if store_mode:
            # Bounded buffering: whatever this batch left in the
            # writer's buffer goes to disk before we block again.
            writer.sync()
            yield from flush_to_guest(sys, writer)
            continue
        if lines:
            pending.extend(lines)
            pending_bytes += sum(len(line) + 1 for line in lines)
        # One write per accepted batch train: flush when the stream
        # pauses (idle timeout, connection close) or the buffer fills.
        if pending and (not raw_messages or pending_bytes >= LOG_FLUSH_BYTES):
            data = ("\n".join(pending) + "\n").encode("ascii")
            pending = []
            pending_bytes = 0
            yield sys.write(log_fd, data)
        # The filter runs until the controller removes it (die).
