"""Meterdaemons: remote process control (Section 3.5).

One meterdaemon runs (as root) on every machine that supports the
measurement system.  "The sole purpose of the meterdaemons is to carry
out control functions for the controller": create/acquire/start/stop/
kill processes, wire meter connections to filters, create filter
processes, return log files, forward process standard I/O, and report
process terminations back to the controller.
"""

from repro.daemon import protocol
from repro.daemon.meterdaemon import METERDAEMON_PORT, meterdaemon

__all__ = ["protocol", "METERDAEMON_PORT", "meterdaemon"]
