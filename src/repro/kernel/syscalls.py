"""The guest/kernel interface.

A guest program is written as a generator::

    def main(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        ...
        yield sys.exit(0)

Each ``sys.<call>`` builds a small :class:`Request`; the kernel executes
it and resumes the generator with the result, or throws
:class:`~repro.kernel.errno.SyscallError` into it.  ``sys.compute(ms)``
is the one non-syscall request: it charges CPU time, modelling the
"internal events" (computation) of the paper's model.

The namespace is stateless; a single shared :data:`SYS` instance is
passed to every guest.
"""


class Request:
    """One syscall (or compute) request yielded by a guest."""

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = args

    def __repr__(self):
        return "Request({0}, {1!r})".format(self.name, self.args)


class Sys:
    """Constructors for every guest-visible request."""

    # -- computation (internal events) ---------------------------------

    def compute(self, ms):
        """Execute instructions for ``ms`` milliseconds of CPU time."""
        return Request("compute", (float(ms),))

    def sleep(self, ms):
        """Block without using CPU (e.g. a server between requests)."""
        return Request("sleep", (float(ms),))

    # -- sockets ---------------------------------------------------------

    def socket(self, domain, type_, protocol=0):
        return Request("socket", (domain, type_, protocol))

    def bind(self, fd, name):
        """``name``: (host, port) tuple, a path string, or a SocketName."""
        return Request("bind", (fd, name))

    def listen(self, fd, backlog):
        return Request("listen", (fd, backlog))

    def connect(self, fd, name, timeout_ms=None):
        """Stream: block until established, refused, or -- when
        ``timeout_ms`` is given -- the deadline passes (ETIMEDOUT).
        Datagram: predefine the recipient (never blocks)."""
        return Request("connect", (fd, name, timeout_ms))

    def accept(self, fd):
        """Returns (new fd, peer SocketName)."""
        return Request("accept", (fd,))

    def send(self, fd, data):
        return Request("send", (fd, bytes(data)))

    def sendto(self, fd, data, name):
        return Request("sendto", (fd, bytes(data), name))

    def recv(self, fd, nbytes):
        return Request("read", (fd, int(nbytes)))

    def recvfrom(self, fd, nbytes):
        """Returns (data, source SocketName or None)."""
        return Request("recvfrom", (fd, int(nbytes)))

    def socketpair(self, domain, type_, protocol=0):
        """Returns (fd1, fd2), already connected."""
        return Request("socketpair", (domain, type_, protocol))

    def shutdown(self, fd, how="w"):
        """Half-close a stream's sending side (peer reads EOF)."""
        return Request("shutdown", (fd, how))

    def getsockname(self, fd):
        return Request("getsockname", (fd,))

    def getpeername(self, fd):
        return Request("getpeername", (fd,))

    # -- descriptors and files -------------------------------------------

    def read(self, fd, nbytes):
        return Request("read", (fd, int(nbytes)))

    def write(self, fd, data):
        return Request("write", (fd, bytes(data)))

    def close(self, fd):
        return Request("close", (fd,))

    def dup(self, fd):
        return Request("dup", (fd,))

    def dup2(self, fd, newfd):
        return Request("dup2", (fd, newfd))

    def open(self, path, mode="r"):
        """``mode``: "r", "w" (create/truncate) or "a" (append)."""
        return Request("open", (path, mode))

    def unlink(self, path):
        return Request("unlink", (path,))

    def select(
        self,
        read_fds,
        timeout_ms=None,
        want_children=False,
        want_meter_loss=False,
    ):
        """Block until a descriptor is readable, a child changes state
        (if requested), a meter connection on this machine breaks (if
        requested; root only), or the timeout expires.

        Returns ``(ready_fds, events)``: child events are dicts with
        keys pid/status/reason; meter-loss events carry
        ``meter_lost=True`` plus pid/host/port.
        """
        return Request(
            "select",
            (tuple(read_fds), timeout_ms, want_children, want_meter_loss),
        )

    # -- processes ---------------------------------------------------------

    def forkexec(self, path, argv=(), stdio_fd=None, start=True, uid=None):
        """fork + exec of the executable at ``path`` in one step (the
        meterdaemon's process-creation sequence).

        The child gets ONLY the caller's ``stdio_fd`` entry, installed
        as its descriptors 0/1/2 (the daemon's I/O gateway socket,
        Section 3.5.2) -- no other descriptors leak.  With
        ``start=False`` the child is left "suspended prior to the start
        of its execution" (Section 3.5.1).  A root caller may pass
        ``uid`` to run the child under a user's account (the daemon
        acting on the user's behalf, with the user's access rights --
        Section 3.5.5).  Returns the child pid.
        """
        return Request("forkexec", (path, tuple(argv), stdio_fd, start, uid))

    def procstat(self, pid):
        """uid/state/program of a process (daemon permission checks)."""
        return Request("procstat", (pid,))

    def hasaccount(self, uid):
        """Whether ``uid`` has an account on this machine (3.5.5)."""
        return Request("hasaccount", (uid,))

    def reparent(self, pid):
        """Adopt a running process (root only): its termination report
        goes to the caller from now on."""
        return Request("reparent", (pid,))

    def fork(self, child_main, argv=()):
        """Create a child process running ``child_main(sys, argv)``.

        The child inherits the descriptor table, uid, and -- per the
        paper -- the meter socket and meter flags.  Returns the child's
        pid to the parent.  (Generator state cannot be cloned, so the
        child starts in a function of the caller's choosing; see
        DESIGN.md, substitutions.)
        """
        return Request("fork", (child_main, tuple(argv)))

    def execv(self, path, argv=()):
        """Replace the process image with the executable at ``path``."""
        return Request("execv", (path, tuple(argv)))

    def exit(self, status=0):
        return Request("exit", (status,))

    def getpid(self):
        return Request("getpid", ())

    def getuid(self):
        return Request("getuid", ())

    def kill(self, pid, sig):
        return Request("kill", (pid, sig))

    def gettimeofday(self):
        """The machine's local clock in milliseconds (drifts!)."""
        return Request("gettimeofday", ())

    def random(self):
        """A uniform float in [0, 1) from the (seeded, deterministic)
        simulator RNG -- the guest-visible rand(3) for backoff jitter."""
        return Request("random", ())

    # -- metering (the paper's new syscall) --------------------------------

    def setmeter(self, proc, flags, socket_fd):
        """setmeter(2): mark a process for metering (Appendix C).

        Any of the three arguments may be -1 / SELF / NO_CHANGE; see
        :mod:`repro.metering.setmeter` for full semantics.
        """
        return Request("setmeter", (proc, flags, socket_fd))

    def meterstat(self):
        """Machine-wide metering statistics (root only): recorded and
        dropped totals, the per-pid dropped split, orphan batch count."""
        return Request("meterstat", ())

    def meterdrain(self, fd, ports):
        """Redeliver orphaned meter batches over ``fd`` (root only):
        batches spooled for the peer host at any of the filter ``ports``
        are shipped on this connection.  Returns batches shipped."""
        return Request("meterdrain", (fd, list(ports)))

    # -- misc ----------------------------------------------------------------

    def rcp(self, src_host, src_path, dst_host, dst_path):
        """Remote file copy; the simulated analogue of the controller's
        ``system("rcp ...")`` call (Section 3.5.3)."""
        return Request("rcp", (src_host, src_path, dst_host, dst_path))

    def log(self, message):
        """Write a line to the machine console (debugging; unmetered)."""
        return Request("log", (str(message),))

    def hosttable(self):
        """The /etc/hosts view: host id -> literal host name."""
        return Request("hosttable", ())

    def hostname(self):
        """This machine's literal host name."""
        return Request("hostname", ())


#: The shared stateless instance handed to every guest.
SYS = Sys()
