"""Unit tests for the system open-file table."""

from repro.kernel.file_table import FileTable


class _FakeObj:
    kind = "file"

    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def test_allocate_gives_unique_increasing_addrs():
    table = FileTable()
    entries = [table.allocate(_FakeObj()) for __ in range(5)]
    addrs = [entry.addr for entry in entries]
    assert len(set(addrs)) == 5
    assert addrs == sorted(addrs)


def test_refcount_zero_closes_object():
    table = FileTable()
    obj = _FakeObj()
    entry = table.allocate(obj)
    table.ref(entry)
    table.ref(entry)
    assert not table.unref(entry)
    assert not obj.closed
    assert table.unref(entry)
    assert obj.closed


def test_entry_removed_from_table_on_release():
    table = FileTable()
    entry = table.allocate(_FakeObj())
    table.ref(entry)
    assert table.live_count() == 1
    table.unref(entry)
    assert table.live_count() == 0


def test_kind_reflects_object():
    table = FileTable()
    entry = table.allocate(_FakeObj())
    assert entry.kind == "file"
