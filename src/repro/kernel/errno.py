"""Error numbers and the guest-visible error exception.

Numbers match 4.2BSD <errno.h> where the paper mentions them: the
``setmeter(2)`` manual page (Appendix C) documents EPERM and ESRCH.
"""

EPERM = 1  # The process specified does not belong to the caller.
ENOENT = 2  # No such file or directory.
ESRCH = 3  # No such process / the socket does not exist (setmeter(2)).
EINTR = 4
EBADF = 9  # Bad file descriptor.
ECHILD = 10  # No children to wait for.
EACCES = 13  # Permission denied.
EEXIST = 17
ENOTDIR = 20
EINVAL = 22  # Invalid argument.
EMFILE = 24  # Too many open files.
ENOTSOCK = 38  # Socket operation on non-socket.
EMSGSIZE = 40
EPROTONOSUPPORT = 43
EOPNOTSUPP = 45
EADDRINUSE = 48
EADDRNOTAVAIL = 49
ENETUNREACH = 51
ECONNRESET = 54
EISCONN = 56
ENOTCONN = 57
ECONNREFUSED = 61
ETIMEDOUT = 60  # Connection (or kernel-enforced deadline) timed out.
EPIPE = 32
ESOCKTNOSUPPORT = 44

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.isupper() and isinstance(value, int)
}


def errno_name(code):
    """Symbolic name for an errno value, e.g. 1 -> "EPERM"."""
    return _NAMES.get(code, "E%d" % code)


class SyscallError(Exception):
    """Raised (thrown into the guest generator) when a syscall fails.

    Mirrors the C convention of a -1 return plus errno: the guest either
    catches it or dies with the error, just as an unchecked C error
    usually cascades into a crash.
    """

    def __init__(self, errno, message=""):
        self.errno = errno
        text = errno_name(errno)
        if message:
            text = "{0}: {1}".format(text, message)
        super().__init__(text)
