"""Trace debugging audit."""

from repro.analysis.debugging import TraceAudit
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_healthy_trace_has_no_findings():
    audit = TraceAudit(two_process_stream_trace())
    assert audit.healthy()
    assert "no anomalies" in audit.report()


def test_lost_datagram_detected():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=64, dest="inet:green:6000")
    audit = TraceAudit(b.build())
    findings = audit.by_kind("lost-message")
    assert len(findings) == 1
    assert "64 bytes" in findings[0].detail


def test_stuck_receive_detected():
    b = TraceBuilder()
    b._base("receivecall", 1, 10, 100, sock=7)
    audit = TraceAudit(b.build())
    findings = audit.by_kind("stuck-receive")
    assert len(findings) == 1
    assert "socket 7" in findings[0].detail


def test_completed_receive_not_reported():
    b = TraceBuilder()
    b._base("receivecall", 1, 10, 100, sock=7)
    b.receive(1, 10, 105, sock=7, nbytes=10, source="inet:x:1")
    audit = TraceAudit(b.build())
    assert audit.by_kind("stuck-receive") == []


def test_abnormal_exit_detected():
    b = TraceBuilder()
    b.termproc(1, 10, 100, status=9)
    audit = TraceAudit(b.build())
    findings = audit.by_kind("abnormal-exit")
    assert len(findings) == 1
    assert "status 9" in findings[0].detail


def test_missing_termination_detected_when_termproc_metered():
    b = TraceBuilder()
    b.termproc(1, 10, 100, status=0)
    b.send(2, 20, 50, sock=1, nbytes=5, dest="inet:m1:1")
    audit = TraceAudit(b.build())
    findings = audit.by_kind("no-termination")
    assert len(findings) >= 1
    assert any("pid 20" in f.detail for f in findings)


def test_no_termination_check_skipped_without_termproc_events():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1")
    audit = TraceAudit(b.build())
    assert audit.by_kind("no-termination") == []


def test_idle_connection_detected():
    b = TraceBuilder()
    b.accept(2, 20, 100, sock=5, new_sock=6, sock_name="inet:g:1",
             peer_name="inet:r:2")
    audit = TraceAudit(b.build())
    assert len(audit.by_kind("idle-connection")) == 1


def test_report_lists_each_finding():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=64, dest="inet:green:6000")
    b.termproc(1, 10, 200, status=3)
    report = TraceAudit(b.build()).report()
    assert "lost-message" in report
    assert "abnormal-exit" in report


def test_live_hung_computation_audit():
    """A receiver whose sender dies early: the audit names the hang."""
    from repro.core.cluster import Cluster
    from repro.core.session import MeasurementSession
    from repro.analysis import Trace
    from repro.kernel import defs

    def dead_sender(sys, argv):
        yield sys.compute(5)
        yield sys.exit(1)  # crashes before sending anything

    def waiter(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        yield sys.recvfrom(fd, 100)  # waits forever
        yield sys.exit(0)

    cluster = Cluster(seed=23)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("deadsender", dead_sender)
    session.install_program("waiter", waiter)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red waiter")
    session.command("addprocess j green deadsender")
    # 'immediate' matters here: a hung process never flushes its meter
    # buffer, so buffered mode would hide the very event that shows the
    # hang -- the debugging use-case of M_IMMEDIATE (Appendix C).
    session.command("setflags j all immediate")
    session.command("startjob j")
    session.settle(500)
    audit = TraceAudit(Trace(session.read_trace("f1")))
    assert not audit.healthy()
    kinds = {f.kind for f in audit.findings}
    assert "stuck-receive" in kinds  # the waiter is hung
    assert "abnormal-exit" in kinds  # the sender died with status 1
