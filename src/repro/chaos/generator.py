"""Seed-derived FaultPlan generation.

``generate_plan(seed, profile, surface)`` turns an integer seed, a
:class:`~repro.chaos.profiles.ChaosProfile`, and a
:class:`FaultSurface` (what there is to break) into a concrete
:class:`~repro.faults.plan.FaultPlan` whose times are *relative* to the
moment the workload starts (the run harness shifts them onto the
simulator clock).

Determinism contract: every draw flows through one
``random.Random("<profile>:<seed>")`` -- string seeding hashes through
SHA-512, so the stream is identical across processes and platforms.
Same ``(seed, profile, surface)`` => a byte-identical
``plan.to_json()``.  Times are quantized to 0.1 ms so serialized plans
are stable and human-readable.

Recovery pairing: moves that take a component away always schedule the
matching recovery inside the horizon (heal after partition, init's
daemon restart after a daemon kill, reboot after crash, a fresh
controller after a controller kill).  Unrecovered outages would change
what the *workload* computes, drowning every oracle in false alarms;
leaving a component down is a scenario choice, not a generator draw.
"""

import random

from repro.chaos import profiles as prof
from repro.faults.plan import FaultPlan


class FaultSurface:
    """What a scenario exposes to the fault generator.

    ``daemon_kill_machines`` excludes the filter machine by default: a
    filter with no live daemon has no supervisor, and a schedule that
    kills both in the wrong order would lose records by design rather
    than by bug.  ``crash_machines`` likewise excludes the control and
    filter machines -- crashing the machine the monitor itself lives on
    is a scenario decision, not something a weighted draw should do.
    """

    def __init__(
        self,
        machines,
        control_machine,
        filter_machine,
        store_prefix,
        daemon_kill_machines=None,
        crash_machines=None,
    ):
        self.machines = tuple(machines)
        self.control_machine = str(control_machine)
        self.filter_machine = str(filter_machine)
        self.store_prefix = str(store_prefix)
        default_targets = tuple(
            name
            for name in self.machines
            if name not in (self.control_machine, self.filter_machine)
        )
        self.daemon_kill_machines = tuple(
            daemon_kill_machines
            if daemon_kill_machines is not None
            else default_targets
        )
        self.crash_machines = tuple(
            crash_machines if crash_machines is not None else default_targets
        )
        if not self.daemon_kill_machines:
            raise ValueError("surface has no daemon-kill targets")


def generate_plan(seed, profile, surface):
    """One seed-derived schedule; times relative to workload start."""
    if isinstance(profile, str):
        profile = prof.get_profile(profile)
    rng = random.Random("{0}:{1}".format(profile.name, int(seed)))
    plan = FaultPlan(machines=surface.machines)
    moves = rng.randint(*profile.moves)
    move_names = list(profile.weights)
    move_weights = [profile.weights[name] for name in move_names]
    controller_outages = 0
    for __ in range(moves):
        move = rng.choices(move_names, weights=move_weights, k=1)[0]
        if move == prof.CONTROLLER_OUTAGE:
            if controller_outages >= profile.controller_outage_limit:
                # Redraw deterministically: burn the move on a loss
                # burst instead of skewing the stream with a retry loop.
                move = prof.LOSS_BURST
            else:
                controller_outages += 1
        _MOVES[move](rng, profile, surface, plan)
    return plan


def _quantize(value):
    return round(value, 1)


def _inject_time(rng, profile):
    """When a one-shot fault fires: anywhere in the first 80% of the
    horizon (leaving room for the system to re-settle)."""
    return _quantize(rng.uniform(0.0, profile.horizon_ms * 0.8))


def _outage_window(rng, profile):
    """(down_at, back_at) for a paired move, both inside the horizon."""
    down = _quantize(rng.uniform(0.0, profile.horizon_ms * 0.6))
    back = _quantize(
        down
        + rng.uniform(
            profile.min_gap_ms,
            max(profile.min_gap_ms + 0.1, profile.horizon_ms - down),
        )
    )
    return down, min(back, profile.horizon_ms)


def _move_kill_filter(rng, profile, surface, plan):
    plan.kill_filter(_inject_time(rng, profile), surface.filter_machine)


def _move_daemon_outage(rng, profile, surface, plan):
    machine = rng.choice(surface.daemon_kill_machines)
    down, back = _outage_window(rng, profile)
    plan.kill_daemon(down, machine)
    plan.restart_daemon(back, machine)


def _move_partition(rng, profile, surface, plan):
    machines = list(surface.machines)
    cut = rng.randint(1, len(machines) - 1)
    island = rng.sample(machines, cut)
    mainland = [name for name in machines if name not in island]
    down, back = _outage_window(rng, profile)
    plan.partition(down, [island, mainland])
    plan.heal(back)


def _move_loss_burst(rng, profile, surface, plan):
    plan.loss_burst(
        _inject_time(rng, profile),
        duration_ms=_quantize(rng.uniform(*profile.burst_duration_ms)),
        loss=round(rng.uniform(*profile.loss_range), 3),
    )


def _move_latency_spike(rng, profile, surface, plan):
    plan.latency_spike(
        _inject_time(rng, profile),
        duration_ms=_quantize(rng.uniform(*profile.burst_duration_ms)),
        extra_ms=_quantize(rng.uniform(*profile.latency_extra_ms)),
    )


def _move_controller_outage(rng, profile, surface, plan):
    down, back = _outage_window(rng, profile)
    plan.kill_controller(down)
    plan.restart_controller(back)


def _move_storage_bit_rot(rng, profile, surface, plan):
    plan.storage_bit_rot(
        _inject_time(rng, profile),
        surface.filter_machine,
        surface.store_prefix,
        flips=rng.randint(*profile.flips_range),
        seed=rng.randrange(1 << 16),
    )


def _move_storage_drop_flush(rng, profile, surface, plan):
    plan.storage_drop_flush(
        _inject_time(rng, profile),
        surface.filter_machine,
        surface.store_prefix,
    )


def _move_storage_torn_write(rng, profile, surface, plan):
    plan.storage_torn_write(
        _inject_time(rng, profile),
        surface.filter_machine,
        surface.store_prefix,
        drop_bytes=rng.randint(*profile.torn_bytes_range),
    )


def _move_machine_outage(rng, profile, surface, plan):
    if not surface.crash_machines:
        raise ValueError(
            "profile {0!r} crashes machines but the surface exposes no "
            "crash targets".format(profile.name)
        )
    machine = rng.choice(surface.crash_machines)
    down, back = _outage_window(rng, profile)
    plan.crash(down, machine)
    plan.reboot(back, machine, restart_daemon=True)


_MOVES = {
    prof.KILL_FILTER: _move_kill_filter,
    prof.DAEMON_OUTAGE: _move_daemon_outage,
    prof.PARTITION: _move_partition,
    prof.LOSS_BURST: _move_loss_burst,
    prof.LATENCY_SPIKE: _move_latency_spike,
    prof.CONTROLLER_OUTAGE: _move_controller_outage,
    prof.STORAGE_BIT_ROT: _move_storage_bit_rot,
    prof.STORAGE_DROP_FLUSH: _move_storage_drop_flush,
    prof.STORAGE_TORN_WRITE: _move_storage_torn_write,
    prof.MACHINE_OUTAGE: _move_machine_outage,
}
