"""The rexec-server case (Section 3.2).

"If an outside agent is used to create a process, such as the system
rexec server, the new process will be monitored only if the server is
being monitored or if monitoring is explicitly set for the new process
after it is created."
"""

from repro.kernel import defs
from repro.metering import flags as mf
from tests.metering.harness import metered_spawn, start_collector


def _payload(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.sendto(fd, b"work", ("green", 6000))
    yield sys.exit(0)


def _rexec_server(sys, argv):
    """Creates one child via fork+exec on request (simplified)."""
    pid = yield sys.forkexec("/bin/payload", [], start=True)
    __, events = yield sys.select([], want_children=True)
    yield sys.exit(0)


def test_children_of_metered_server_are_metered(cluster):
    records, __ = start_collector(cluster)
    cluster.install_program("payload", _payload)
    server = metered_spawn(
        cluster, "red", _rexec_server, flags=mf.METERSEND | mf.M_IMMEDIATE, uid=100
    )
    cluster.run_until_exit([server])
    cluster.run(until_ms=cluster.sim.now + 30)
    sends = [r for r in records if r["event"] == "send"]
    assert sends, "the exec'd child inherited the meter connection"
    assert sends[0]["pid"] != server.pid  # it is the child's event


def test_children_of_unmetered_server_are_not_metered(cluster):
    records, __ = start_collector(cluster)
    cluster.install_program("payload", _payload)
    server = cluster.spawn("red", _rexec_server, uid=100)
    cluster.run_until_exit([server])
    cluster.run(until_ms=cluster.sim.now + 30)
    assert records == []


def test_monitoring_can_be_set_explicitly_after_creation(cluster):
    """The other half of the sentence: an unmetered agent's child can
    be acquired afterwards."""
    from tests.metering.harness import rig_meter

    records, __ = start_collector(cluster)

    def slow_payload(sys, argv):
        yield sys.sleep(100)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"late work", ("green", 6000))
        yield sys.exit(0)

    cluster.install_program("slowpayload", slow_payload)

    def server(sys, argv):
        yield sys.forkexec("/bin/slowpayload", [], start=True)
        yield sys.select([], want_children=True)
        yield sys.exit(0)

    server_proc = cluster.spawn("red", server, uid=100)
    cluster.run(until_ms=cluster.sim.now + 30)
    child = next(
        p for p in cluster.machine("red").procs.values()
        if p.program_name == "slowpayload"
    )
    rig_meter(cluster, "red", child.pid, mf.METERSEND | mf.M_IMMEDIATE)
    cluster.run_until_exit([server_proc])
    cluster.run(until_ms=cluster.sim.now + 30)
    sends = [r for r in records if r["event"] == "send"]
    assert len(sends) == 1
    assert sends[0]["pid"] == child.pid
