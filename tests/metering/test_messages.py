"""Unit tests for the Appendix-A meter message codecs."""

import pytest

from repro.metering import messages
from repro.metering.messages import (
    EVENT_TYPES,
    HEADER_BYTES,
    MessageCodec,
    decode_stream,
    message_length,
    peek_size,
)
from repro.net.addresses import InternetName, PairName, UnixName


@pytest.fixture
def codec():
    return MessageCodec({1: "red", 2: "green"})


def test_header_is_24_bytes():
    assert HEADER_BYTES == 24


def test_struct_sizes_match_the_c_layouts():
    """4-byte longs, 16-byte NAMEs, as in the Appendix-A structs."""
    assert message_length("send") == 24 + 5 * 4 + 16  # 60
    assert message_length("receive") == 60
    assert message_length("accept") == 24 + 6 * 4 + 32  # 80
    assert message_length("connect") == 24 + 5 * 4 + 32  # 76
    assert message_length("dup") == 24 + 16
    assert message_length("fork") == 24 + 12
    assert message_length("receivecall") == 24 + 12
    assert message_length("socket") == 24 + 24
    assert message_length("termproc") == 24 + 12
    assert message_length("destsocket") == 24 + 12


def test_send_is_trace_type_1_accept_is_8():
    """Figure 3.2 shows SEND as type 1; the Figure 3.4 rule
    "type=8, sockName=peerName" is accept-shaped."""
    assert EVENT_TYPES["send"] == 1
    assert EVENT_TYPES["accept"] == 8


def test_send_round_trip(codec):
    dest = InternetName("green", 7777, 2)
    raw = codec.encode(
        "send",
        machine=1,
        cpu_time=1234,
        proc_time=50,
        pid=2117,
        pc=42,
        sock=0x1010,
        msgLength=100,
        destName=dest,
        **codec.name_lengths(destName=dest)
    )
    assert len(raw) == message_length("send")
    record = codec.decode(raw)
    assert record["event"] == "send"
    assert record["machine"] == 1
    assert record["cpuTime"] == 1234
    assert record["procTime"] == 50
    assert record["pid"] == 2117
    assert record["pc"] == 42
    assert record["sock"] == 0x1010
    assert record["msgLength"] == 100
    assert record["destNameLen"] == 8
    assert record["destName"] == "inet:green:7777"


def test_accept_round_trip_with_two_names(codec):
    sock_name = InternetName("red", 5000, 1)
    peer_name = InternetName("green", 1024, 2)
    raw = codec.encode(
        "accept",
        machine=1,
        cpu_time=10,
        proc_time=0,
        pid=2117,
        pc=3,
        sock=0x1000,
        newSock=0x1010,
        sockName=sock_name,
        peerName=peer_name,
        **codec.name_lengths(sockName=sock_name, peerName=peer_name)
    )
    record = codec.decode(raw)
    assert record["sockName"] == "inet:red:5000"
    assert record["peerName"] == "inet:green:1024"
    assert record["newSock"] == 0x1010


def test_missing_name_encodes_zero_length(codec):
    """A stream write has no recipient name: "the length of the name is
    specified as zero" (Section 4.1)."""
    raw = codec.encode(
        "send",
        machine=1,
        cpu_time=0,
        proc_time=0,
        pid=1,
        pc=1,
        sock=1,
        msgLength=10,
        destName=None,
        **codec.name_lengths(destName=None)
    )
    record = codec.decode(raw)
    assert record["destNameLen"] == 0
    assert record["destName"] == ""


def test_unix_and_pair_names_survive(codec):
    for name, expect in (
        (UnixName("/usr/tmp/a"), "unix:/usr/tmp/a"),
        (PairName(7), "pair:7"),
    ):
        raw = codec.encode(
            "connect",
            machine=1,
            cpu_time=0,
            proc_time=0,
            pid=1,
            pc=1,
            sock=1,
            sockName=name,
            peerName=None,
            **codec.name_lengths(sockName=name, peerName=None)
        )
        assert codec.decode(raw)["sockName"] == expect


def test_all_event_types_round_trip(codec):
    for event in EVENT_TYPES:
        body = {
            name: 3 for name, kind in messages.BODY_FIELDS[event] if kind == "long"
        }
        raw = codec.encode(event, machine=2, cpu_time=9, proc_time=0, **body)
        record = codec.decode(raw)
        assert record["event"] == event
        assert record["size"] == message_length(event) == len(raw)


def test_decode_rejects_short_and_truncated(codec):
    raw = codec.encode(
        "fork", machine=1, cpu_time=0, proc_time=0, pid=1, pc=1, newPid=2
    )
    with pytest.raises(ValueError):
        codec.decode(raw[:10])
    with pytest.raises(ValueError):
        codec.decode(raw[:-2])


def test_decode_rejects_unknown_trace_type(codec):
    raw = bytearray(
        codec.encode(
            "fork", machine=1, cpu_time=0, proc_time=0, pid=1, pc=1, newPid=2
        )
    )
    raw[20:24] = (77).to_bytes(4, "big")
    with pytest.raises(ValueError):
        codec.decode(bytes(raw))


def test_batch_marker_roundtrip(codec):
    raw = messages.encode_batch_marker(3, 2117, 9)
    assert len(raw) == messages.MARKER_BYTES
    assert messages.is_batch_marker(raw)
    assert messages.parse_batch_marker(raw) == (3, 2117, 9)
    record = codec.decode(raw)
    assert record["event"] == "batchmark"
    assert record["pid"] == 2117
    assert record["seq"] == 9
    assert record["traceType"] == messages.BATCH_MARKER_TYPE


def test_decode_stream_skips_batch_markers(codec):
    event = codec.encode(
        "fork", machine=1, cpu_time=0, proc_time=0, pid=1, pc=1, newPid=2
    )
    raw = messages.encode_batch_marker(1, 1, 0) + event
    records, leftover = messages.decode_stream(raw, codec)
    assert leftover == b""
    assert [r["event"] for r in records] == ["fork"]


def test_peek_size(codec):
    raw = codec.encode(
        "fork", machine=1, cpu_time=0, proc_time=0, pid=1, pc=1, newPid=2
    )
    assert peek_size(raw) == len(raw)
    assert peek_size(b"\x00\x00") is None


def test_decode_stream_splits_concatenated_messages(codec):
    one = codec.encode(
        "fork", machine=1, cpu_time=0, proc_time=0, pid=1, pc=1, newPid=2
    )
    two = codec.encode(
        "receivecall", machine=1, cpu_time=1, proc_time=0, pid=1, pc=2, sock=5
    )
    records, leftover = decode_stream(one + two, codec)
    assert [r["event"] for r in records] == ["fork", "receivecall"]
    assert leftover == b""


def test_decode_stream_keeps_partial_tail(codec):
    one = codec.encode(
        "fork", machine=1, cpu_time=0, proc_time=0, pid=1, pc=1, newPid=2
    )
    records, leftover = decode_stream(one + one[:7], codec)
    assert len(records) == 1
    assert leftover == one[:7]


def test_field_layout_matches_figure_3_2_send_line():
    """Figure 3.2: pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10
    destNameLen,16,4,10 destName,20,16,16."""
    layout = messages.field_layout("send")
    assert layout == [
        ("pid", 0, 4, 10),
        ("pc", 4, 4, 10),
        ("sock", 8, 4, 10),
        ("msgLength", 12, 4, 10),
        ("destNameLen", 16, 4, 10),
        ("destName", 20, 16, 16),
    ]


def test_precompiled_structs_agree_with_field_tables():
    """The whole-message struct per event must be exactly header +
    body as declared in BODY_FIELDS, or encode/decode silently shift."""
    from repro.metering.messages import (
        _EVENT_STRUCTS,
        HEADER_BYTES,
        body_length,
        message_length,
    )

    for event in EVENT_TYPES:
        assert _EVENT_STRUCTS[event].size == HEADER_BYTES + body_length(event)
        assert message_length(event) == _EVENT_STRUCTS[event].size
