"""Trace model unit tests."""

from repro.analysis.trace import Trace
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_events_keep_trace_order():
    trace = two_process_stream_trace()
    assert [e.index for e in trace] == list(range(len(trace)))


def test_process_identity_is_machine_pid():
    trace = two_process_stream_trace()
    assert set(trace.processes()) == {(1, 10), (2, 20)}


def test_events_for_process_in_order_with_proc_seq():
    trace = two_process_stream_trace()
    events = trace.events_for((1, 10))
    assert [e.event for e in events] == ["connect", "send", "receive"]
    assert [e.proc_seq for e in events] == [0, 1, 2]


def test_by_type():
    trace = two_process_stream_trace()
    assert len(trace.by_type("send")) == 2
    assert len(trace.by_type("accept")) == 1


def test_machines():
    trace = two_process_stream_trace()
    assert trace.machines() == [1, 2]


def test_from_text_round_trip():
    from repro.filtering.records import format_record

    trace = two_process_stream_trace()
    text = "\n".join(format_record(e.record) for e in trace)
    reloaded = Trace.from_text(text)
    assert len(reloaded) == len(trace)
    assert [e.event for e in reloaded] == [e.event for e in trace]


def test_event_accessors():
    trace = two_process_stream_trace()
    send = trace.by_type("send")[0]
    assert send.machine == 1
    assert send.pid == 10
    assert send.local_time == 102
    assert send.msg_length == 100
    assert send.name("destName") is None  # empty -> None
    recv = trace.by_type("receive")[0]
    assert recv.name("sourceName") == "inet:red:1024"


def test_same_pid_on_two_machines_are_distinct_processes():
    b = TraceBuilder()
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:b:1")
    b.send(2, 10, 100, sock=1, nbytes=5, dest="inet:b:1")
    trace = b.build()
    assert len(trace.processes()) == 2
