"""Trace log record serialization.

Accepted event records are stored in the filter's log file as one text
line per record: space-separated ``key=value`` pairs, header fields
first, body fields in description order.  (The paper does not pin the
log format; a line-oriented text trace keeps getlog and the analysis
programs simple and the traces human-readable.)
"""


def format_record(record, field_order=None):
    """Render a record dict to its log line."""
    if field_order is None:
        keys = list(record)
    else:
        keys = [key for key in field_order if key in record]
        keys += [key for key in record if key not in keys]
    return " ".join("{0}={1}".format(key, record[key]) for key in keys)


def parse_record_line(line):
    """Parse a log line back into a record dict (ints where possible)."""
    record = {}
    for chunk in line.split():
        key, sep, value = chunk.partition("=")
        if not sep:
            continue
        try:
            record[key] = int(value)
        except ValueError:
            record[key] = value
    return record


def parse_trace(text):
    """Parse a whole log file into a list of records.

    Lines starting with ``#`` are filter metadata (batch-commit
    markers such as ``#batch <machine> <pid> <seq>``), not records.
    """
    return [
        parse_record_line(line)
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
