"""Recovering message recipients: send/receive matching.

Section 4.1: a send over a connection does not carry the recipient's
name -- "By examining the sockets that were paired when the connection
was created, the recipient information can be recovered.  This is one
of the tasks of the analysis programs."

Two mechanisms:

- **Connections** (streams): accept and connect events carry both end
  names, which pairs ``(machine, sock)`` endpoints into connections.
  Stream bytes are then matched by cumulative byte offsets, since the
  stream may coalesce or split messages ("As many bytes as possible are
  delivered for each read...").
- **Datagrams**: the send's ``destName`` names the receiving socket and
  the receive's ``sourceName`` names the sender's host; whole datagrams
  are matched FIFO with equal lengths.
"""

from collections import defaultdict


def _host_of(display_name):
    """Literal host of an "inet:host:port" display name, else None."""
    if display_name and display_name.startswith("inet:"):
        return display_name.split(":")[1]
    return None


class Connection:
    """One stream connection between two trace endpoints."""

    __slots__ = ("initiator", "acceptor", "initiator_name", "acceptor_name")

    def __init__(self, initiator, acceptor, initiator_name, acceptor_name):
        self.initiator = initiator  # (machine, sock)
        self.acceptor = acceptor  # (machine, newSock)
        self.initiator_name = initiator_name
        self.acceptor_name = acceptor_name

    def other_end(self, endpoint):
        if endpoint == self.initiator:
            return self.acceptor
        if endpoint == self.acceptor:
            return self.initiator
        return None

    def __repr__(self):
        return "Connection({0} <-> {1})".format(self.initiator, self.acceptor)


class MessagePair:
    """A matched (send event, receive event) with the byte overlap."""

    __slots__ = ("send", "recv", "nbytes")

    def __init__(self, send, recv, nbytes):
        self.send = send
        self.recv = recv
        self.nbytes = nbytes

    def __repr__(self):
        return "MessagePair({0} -> {1}, {2}B)".format(
            self.send.process, self.recv.process, self.nbytes
        )


class MessageMatcher:
    """Pairs sends with receives across a whole trace."""

    def __init__(self, trace):
        self.trace = trace
        self.connections = self._find_connections()
        self._endpoint_conn = {}
        for conn in self.connections:
            self._endpoint_conn[conn.initiator] = conn
            self._endpoint_conn[conn.acceptor] = conn
        self.pairs = []
        self.unmatched_sends = []
        self.unmatched_recvs = []
        self._match_streams()
        self._match_datagrams()

    # -- connection discovery -------------------------------------------

    def _find_connections(self):
        accepts = self.trace.by_type("accept")
        connects = self.trace.by_type("connect")
        connections = []
        used = set()
        for acc in accepts:
            acc_name = acc.name("sockName")
            acc_peer = acc.name("peerName")
            for conn in connects:
                if conn.index in used:
                    continue
                if (
                    conn.name("sockName") == acc_peer
                    and conn.name("peerName") == acc_name
                ):
                    used.add(conn.index)
                    connections.append(
                        Connection(
                            initiator=(conn.machine, conn.sock),
                            acceptor=(acc.machine, acc["newSock"]),
                            initiator_name=acc_peer,
                            acceptor_name=acc_name,
                        )
                    )
                    break
            else:
                # One-sided trace (e.g. only the server was metered):
                # still record the acceptor end so its traffic groups.
                connections.append(
                    Connection(
                        initiator=None,
                        acceptor=(acc.machine, acc["newSock"]),
                        initiator_name=acc_peer,
                        acceptor_name=acc_name,
                    )
                )
        return connections

    # -- stream matching -------------------------------------------------

    def _match_streams(self):
        # Cumulative byte ranges per direction of each connection.
        sends_by_endpoint = defaultdict(list)
        recvs_by_endpoint = defaultdict(list)
        for event in self.trace:
            endpoint = (event.machine, event.sock)
            conn = self._endpoint_conn.get(endpoint)
            if conn is None:
                continue
            if event.event == "send" and not event.name("destName"):
                sends_by_endpoint[endpoint].append(event)
            elif event.event == "receive":
                recvs_by_endpoint[endpoint].append(event)
        for conn in self.connections:
            if conn.initiator is None:
                continue
            for src, dst in (
                (conn.initiator, conn.acceptor),
                (conn.acceptor, conn.initiator),
            ):
                self._match_byte_ranges(
                    sends_by_endpoint.get(src, []), recvs_by_endpoint.get(dst, [])
                )

    def _match_byte_ranges(self, sends, recvs):
        """Overlap cumulative byte ranges of sends and receives."""
        send_spans = []
        offset = 0
        for event in sends:
            send_spans.append((offset, offset + event.msg_length, event))
            offset += event.msg_length
        recv_spans = []
        offset = 0
        for event in recvs:
            recv_spans.append((offset, offset + event.msg_length, event))
            offset += event.msg_length
        si = 0
        matched_sends = set()
        matched_recvs = set()
        for rstart, rend, recv in recv_spans:
            while si < len(send_spans) and send_spans[si][1] <= rstart:
                si += 1
            sj = si
            while sj < len(send_spans) and send_spans[sj][0] < rend:
                sstart, send_end, send = send_spans[sj]
                overlap = min(send_end, rend) - max(sstart, rstart)
                if overlap > 0:
                    self.pairs.append(MessagePair(send, recv, overlap))
                    matched_sends.add(send.index)
                    matched_recvs.add(recv.index)
                sj += 1
        for __, __, event in send_spans:
            if event.index not in matched_sends:
                self.unmatched_sends.append(event)
        for __, __, event in recv_spans:
            if event.index not in matched_recvs:
                self.unmatched_recvs.append(event)

    # -- datagram matching -------------------------------------------------

    def _match_datagrams(self):
        """FIFO-match datagram sends (which carry a destName) against
        datagram receives (which carry a sourceName).

        The trace's ``machine`` header is a numeric host id while names
        display literal host names, so a literal->id map is first built
        from events whose ``sockName`` is the recording machine's own
        bound name (connect/accept), then refined as matches are made.
        """
        host_ids = {}  # literal host name -> machine id
        for event in self.trace:
            if event.event in ("connect", "accept"):
                host = _host_of(event.name("sockName"))
                if host is not None:
                    host_ids[host] = event.machine

        dgram_recvs = [
            event
            for event in self.trace.by_type("receive")
            if (event.machine, event.sock) not in self._endpoint_conn
        ]
        consumed = set()
        for send in self.trace.by_type("send"):
            dest = send.name("destName")
            if not dest:
                continue  # stream send, handled by _match_streams
            dest_host = _host_of(dest)
            recv = self._claim_datagram(
                dgram_recvs, consumed, send, dest_host, host_ids
            )
            if recv is None:
                self.unmatched_sends.append(send)
                continue
            consumed.add(recv.index)
            src_host = _host_of(recv.name("sourceName"))
            if src_host is not None:
                host_ids.setdefault(src_host, send.machine)
            self.pairs.append(
                MessagePair(send, recv, min(send.msg_length, recv.msg_length))
            )
        for recv in dgram_recvs:
            if recv.index not in consumed:
                self.unmatched_recvs.append(recv)

    def _claim_datagram(self, dgram_recvs, consumed, send, dest_host, host_ids):
        """First unconsumed receive consistent with this send (FIFO)."""
        dest_id = host_ids.get(dest_host)
        for recv in dgram_recvs:
            if recv.index in consumed:
                continue
            if recv.msg_length != send.msg_length:
                continue
            if dest_id is not None and recv.machine != dest_id:
                continue
            src_host = _host_of(recv.name("sourceName"))
            src_id = host_ids.get(src_host) if src_host else None
            if src_id is not None and src_id != send.machine:
                continue
            return recv
        return None

    # ------------------------------------------------------------------

    def matched_fraction(self):
        sends = [e for e in self.trace.by_type("send")]
        if not sends:
            return 1.0
        matched = {pair.send.index for pair in self.pairs}
        return len(matched) / len(sends)
