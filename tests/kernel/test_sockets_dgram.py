"""Datagram socket semantics (Section 3.1): connectionless, whole
messages, unguaranteed and unordered delivery."""

import pytest

from repro.core.cluster import Cluster
from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from repro.net.network import NetworkParams
from tests.conftest import run_guests


def _receiver(port, count, out, nbytes=2048):
    def main(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", port))
        for __ in range(count):
            data, src = yield sys.recvfrom(fd, nbytes)
            out.append((data, src))
        yield sys.exit(0)

    return main


def test_sendto_recvfrom_roundtrip(cluster):
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"datagram!", ("red", 6000))
        yield sys.exit(0)

    run_guests(cluster, ("red", _receiver(6000, 1, got), ()), ("green", sender, ()))
    assert got[0][0] == b"datagram!"
    assert got[0][1].host == "green"  # autobound source name


def test_each_read_returns_one_whole_message(cluster):
    """"A datagram is read as a complete message.  Each new read will
    obtain bytes from a new message."""
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"first", ("red", 6000))
        yield sys.sendto(fd, b"second", ("red", 6000))
        yield sys.exit(0)

    run_guests(cluster, ("red", _receiver(6000, 2, got), ()), ("green", sender, ()))
    payloads = sorted(data for data, __ in got)
    assert payloads == [b"first", b"second"]


def test_oversized_read_truncates_single_datagram(cluster):
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"abcdefgh", ("red", 6000))
        yield sys.exit(0)

    run_guests(
        cluster,
        ("red", _receiver(6000, 1, got, nbytes=4), ()),
        ("green", sender, ()),
    )
    assert got[0][0] == b"abcd"


def test_connected_datagram_socket_predefines_recipient(cluster):
    """connect() on a datagram socket then plain send() (Section 3.1)."""
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.connect(fd, ("red", 6000))
        yield sys.send(fd, b"via-default")
        yield sys.exit(0)

    run_guests(cluster, ("red", _receiver(6000, 1, got), ()), ("green", sender, ()))
    assert got[0][0] == b"via-default"


def test_send_without_recipient_fails(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        try:
            yield sys.send(fd, b"to nobody")
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EINVAL]


def test_oversized_datagram_rejected(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        try:
            yield sys.sendto(fd, b"x" * (defs.MAX_DGRAM_BYTES + 1), ("red", 6000))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EMSGSIZE]


def test_datagram_to_dead_port_silently_dropped(cluster):
    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"void", ("red", 9999))
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("green", sender, ()))
    assert proc.exit_reason == defs.EXIT_NORMAL  # no error for the sender


def test_datagram_loss_on_lossy_network():
    cluster = Cluster(seed=9, net_params=NetworkParams(datagram_loss=0.4))
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for i in range(100):
            yield sys.sendto(fd, b"m%03d" % i, ("red", 6000))
        yield sys.exit(0)

    def receiver(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        while True:
            ready, __ = yield sys.select([fd], timeout_ms=300)
            if not ready:
                break
            data, __src = yield sys.recvfrom(fd, 100)
            got.append(data)
        yield sys.exit(0)

    run_guests(cluster, ("red", receiver, ()), ("green", sender, ()))
    assert 0 < len(got) < 100  # "delivery ... not guaranteed, though likely"


def test_datagrams_can_arrive_out_of_order():
    cluster = Cluster(
        seed=4, net_params=NetworkParams(jitter_ms=4.0, datagram_loss=0.0)
    )
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for i in range(40):
            yield sys.sendto(fd, b"%03d" % i, ("red", 6000))
        yield sys.exit(0)

    run_guests(cluster, ("red", _receiver(6000, 40, got), ()), ("green", sender, ()))
    order = [data for data, __ in got]
    assert sorted(order) == order or True  # just collect...
    assert len(order) == 40
    assert order != sorted(order)  # at least one overtake under jitter


def test_receive_queue_overflow_drops_excess(cluster):
    """The receive budget bounds queued datagrams; overflow is loss."""
    got = []

    def sender(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        for __ in range(20):
            # 1KB each against an 8KB budget: some must drop while the
            # receiver sleeps.
            yield sys.sendto(fd, b"x" * 1024, ("red", 6000))
        yield sys.exit(0)

    def receiver(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        yield sys.sleep(200)  # let the queue fill and overflow
        while True:
            ready, __ = yield sys.select([fd], timeout_ms=50)
            if not ready:
                break
            data, __src = yield sys.recvfrom(fd, 2048)
            got.append(data)
        yield sys.exit(0)

    run_guests(cluster, ("red", receiver, ()), ("green", sender, ()))
    assert 0 < len(got) < 20


def test_datagram_socketpair_for_local_gateway(cluster):
    """The daemon's I/O gateway pattern: a local datagram pair is
    reliable (Section 3.5.2)."""
    got = []

    def guest(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_DGRAM)
        for i in range(10):
            yield sys.write(a, b"chunk%d" % i)
        for __ in range(10):
            got.append((yield sys.read(b, 100)))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert got == [b"chunk%d" % i for i in range(10)]


def test_unix_domain_datagrams(cluster):
    got = []

    def receiver(sys, argv):
        fd = yield sys.socket(defs.AF_UNIX, defs.SOCK_DGRAM)
        yield sys.bind(fd, "/tmp/dg")
        data, src = yield sys.recvfrom(fd, 100)
        got.append(data)
        yield sys.exit(0)

    def sender(sys, argv):
        yield sys.sleep(10)
        fd = yield sys.socket(defs.AF_UNIX, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"unix-dg", "/tmp/dg")
        yield sys.exit(0)

    run_guests(cluster, ("red", receiver, ()), ("red", sender, ()))
    assert got == [b"unix-dg"]
