"""Property tests: the wire encoding round-trips through the store.

encode -> decode -> encode must be byte-identical for every
Appendix-A meter-message format -- that is the invariant that lets the
trace store keep records in the wire encoding and still reproduce
exactly the records a text log would hold.  Edges pinned explicitly:
zero-length NAME payloads (all-zero NAME, *NameLen 0) and the maximum
wire sizes (full 14-byte UNIX paths; accept, the largest format).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metering import messages
from repro.metering.messages import (
    EVENT_TYPES,
    MessageCodec,
    message_length,
    record_fields,
)
from repro.net.addresses import InternetName, PairName, UnixName
from repro.tracestore import StoreReader, pack_records
from repro.tracestore.format import discard_mask, masked_fields

HOSTS = {1: "red", 2: "green", 3: "blue", 4: "yellow"}

_names = st.one_of(
    st.none(),
    st.builds(
        lambda host_id, port: InternetName(HOSTS[host_id], port, host_id),
        host_id=st.sampled_from(sorted(HOSTS)),
        port=st.integers(min_value=1, max_value=65535),
    ),
    st.builds(
        UnixName,
        path=st.text(alphabet="abcdefghij/._", min_size=1, max_size=14),
    ),
    st.builds(PairName, unique_id=st.integers(min_value=1, max_value=2**31 - 1)),
)


@st.composite
def _wire_messages(draw):
    event = draw(st.sampled_from(sorted(EVENT_TYPES)))
    longs = st.integers(min_value=-(2**31), max_value=2**31 - 1)
    body, names = {}, {}
    for field, kind in messages.BODY_FIELDS[event]:
        if kind == "long":
            if not field.endswith("NameLen"):
                body[field] = draw(longs)
        else:
            names[field] = draw(_names)
    codec = MessageCodec(HOSTS)
    body.update(names)
    body.update(codec.name_lengths(**names))
    return codec.encode(
        event,
        machine=draw(st.sampled_from(sorted(HOSTS))),
        cpu_time=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        proc_time=draw(st.integers(min_value=0, max_value=10**6)),
        **body
    )


@given(_wire_messages())
@settings(max_examples=300)
def test_encode_decode_encode_is_byte_identical(raw):
    codec = MessageCodec(HOSTS)
    assert codec.encode_record(codec.decode(raw)) == raw


@given(st.lists(_wire_messages(), min_size=1, max_size=40))
@settings(max_examples=50)
def test_store_pack_scan_preserves_decoded_records(raws):
    codec = MessageCodec(HOSTS)
    records = [codec.decode(raw) for raw in raws]
    store, __ = pack_records(
        records, "/p/s.store", segment_bytes=512, host_names=HOSTS
    )
    assert StoreReader.from_bytes(store).records() == records


@given(
    _wire_messages(),
    st.sets(st.sampled_from(["pc", "sock", "procTime", "machine", "pid"])),
)
@settings(max_examples=100)
def test_discard_mask_is_exactly_invertible(raw, discards):
    codec = MessageCodec(HOSTS)
    event = codec.decode(raw)["event"]
    fields = set(record_fields(event))
    mask = discard_mask(event, discards & fields)
    assert set(masked_fields(event, mask)) == (discards & fields)


def test_zero_length_name_payload_edge():
    """All NAME fields absent: NameLens are 0 and NAMEs all-zero."""
    codec = MessageCodec(HOSTS)
    raw = codec.encode(
        "accept",
        machine=1,
        cpu_time=0,
        proc_time=0,
        pid=1,
        pc=0,
        sock=0,
        newSock=0,
        sockNameLen=0,
        peerNameLen=0,
        sockName=None,
        peerName=None,
    )
    record = codec.decode(raw)
    assert record["sockName"] == "" and record["peerName"] == ""
    assert record["sockNameLen"] == 0
    assert codec.encode_record(record) == raw


def test_max_size_message_edge():
    """accept is the largest format; fill both NAMEs to the 14-byte
    sun_path maximum and round-trip."""
    codec = MessageCodec(HOSTS)
    long_path = UnixName("abcdefghijklmn")  # exactly 14 bytes
    assert long_path.wire_len() == 16
    raw = codec.encode(
        "accept",
        machine=4,
        cpu_time=2**31 - 1,
        proc_time=2**31 - 1,
        pid=2**31 - 1,
        pc=-(2**31),
        sock=2**31 - 1,
        newSock=2**31 - 1,
        sockName=long_path,
        peerName=long_path,
        **codec.name_lengths(sockName=long_path, peerName=long_path)
    )
    assert len(raw) == message_length("accept") == max(
        message_length(event) for event in EVENT_TYPES
    )
    assert codec.encode_record(codec.decode(raw)) == raw
