"""Unit tests for socket names and their 16-byte wire form."""

import pytest

from repro.net.addresses import (
    AF_INET,
    AF_PAIR,
    AF_UNIX,
    NO_NAME,
    InternetName,
    PairName,
    UnixName,
    decode_name,
    parse_name,
)


def test_wire_form_is_sixteen_bytes_for_every_family():
    for name in (
        InternetName("red", 5000, host_id=3),
        UnixName("/tmp/sock"),
        PairName(42),
    ):
        assert len(name.wire_bytes()) == 16


def test_inet_round_trip_preserves_port_and_host():
    name = InternetName("green", 7777, host_id=2)
    decoded = decode_name(name.wire_bytes(), {2: "green"})
    assert isinstance(decoded, InternetName)
    assert decoded.port == 7777
    assert decoded.host == "green"
    assert decoded.display() == "inet:green:7777"


def test_inet_decode_without_host_table_shows_numeric_id():
    name = InternetName("green", 7777, host_id=2)
    decoded = decode_name(name.wire_bytes())
    assert decoded.host == "2"


def test_unix_round_trip():
    name = UnixName("/usr/tmp/x")
    decoded = decode_name(name.wire_bytes())
    assert isinstance(decoded, UnixName)
    assert decoded.path == "/usr/tmp/x"


def test_unix_path_truncates_like_sun_path():
    name = UnixName("/a/very/long/path/that/exceeds")
    decoded = decode_name(name.wire_bytes())
    assert decoded.path == "/a/very/long/p"  # 14 bytes


def test_pair_round_trip():
    name = PairName(99)
    decoded = decode_name(name.wire_bytes())
    assert isinstance(decoded, PairName)
    assert decoded.unique_id == 99
    assert decoded.display() == "pair:99"


def test_zero_name_decodes_to_none():
    assert decode_name(NO_NAME) is None


def test_decode_rejects_wrong_length():
    with pytest.raises(ValueError):
        decode_name(b"\x00" * 15)


def test_decode_rejects_unknown_family():
    raw = (77).to_bytes(2, "big") + b"\x00" * 14
    with pytest.raises(ValueError):
        decode_name(raw)


def test_wire_len_reports_meaningful_bytes():
    assert InternetName("red", 1, 1).wire_len() == 8
    assert UnixName("/ab").wire_len() == 2 + 3
    assert PairName(1).wire_len() == 6


def test_display_parse_round_trip():
    for name in (
        InternetName("blue", 4000, 3),
        UnixName("/gateway/7"),
        PairName(12),
    ):
        parsed = parse_name(name.display())
        assert parsed == name


def test_parse_name_empty_and_dash_are_none():
    assert parse_name("") is None
    assert parse_name("-") is None


def test_parse_name_rejects_garbage():
    with pytest.raises(ValueError):
        parse_name("bogus:thing")


def test_equality_and_hash_by_display():
    assert InternetName("red", 5, 1) == InternetName("red", 5, 9)
    assert hash(UnixName("/x")) == hash(UnixName("/x"))
    assert InternetName("red", 5, 1) != UnixName("red:5")


def test_family_constants_match_bsd():
    assert AF_UNIX == 1
    assert AF_INET == 2
    assert AF_PAIR not in (AF_UNIX, AF_INET)
