"""Annotated meter-message hexdumps."""

import pytest

from repro.metering.messages import MessageCodec
from repro.metering.pretty import annotate_message, annotate_stream
from repro.net.addresses import InternetName

HOSTS = {1: "red", 2: "green"}


def _send_message(codec):
    dest = InternetName("green", 6001, 2)
    return codec.encode(
        "send",
        machine=1,
        cpu_time=777,
        proc_time=20,
        pid=2117,
        pc=9,
        sock=0x1010,
        msgLength=100,
        destName=dest,
        **codec.name_lengths(destName=dest)
    )


def test_annotation_labels_every_field():
    codec = MessageCodec(HOSTS)
    text = annotate_message(_send_message(codec), HOSTS)
    for field in ("size", "machine", "cpuTime", "procTime", "traceType",
                  "pid", "pc", "sock", "msgLength", "destNameLen", "destName"):
        assert field in text, field
    assert text.startswith("send message, 60 bytes")
    assert "= 2117" in text
    assert "inet:green:6001" in text


def test_annotation_offsets_cover_whole_message():
    codec = MessageCodec(HOSTS)
    raw = _send_message(codec)
    text = annotate_message(raw, HOSTS)
    assert "[ 56: 60]" not in text  # destName starts at 44, 16 bytes
    assert "[ 44: 60]" in text  # last field ends exactly at size


def test_annotation_rejects_garbage():
    with pytest.raises(ValueError):
        annotate_message(b"\x00" * 10)
    bad = bytearray(60)
    bad[0:4] = (60).to_bytes(4, "big")
    bad[20:24] = (99).to_bytes(4, "big")
    with pytest.raises(ValueError):
        annotate_message(bytes(bad))


def test_annotate_stream_splits_messages():
    codec = MessageCodec(HOSTS)
    raw = _send_message(codec) * 3
    text = annotate_stream(raw, HOSTS)
    assert text.count("send message") == 3
    limited = annotate_stream(raw, HOSTS, limit=2)
    assert limited.count("send message") == 2


def test_annotation_of_no_name_field():
    codec = MessageCodec(HOSTS)
    raw = codec.encode(
        "send",
        machine=1,
        cpu_time=0,
        proc_time=0,
        pid=1,
        pc=1,
        sock=1,
        msgLength=5,
        destName=None,
        destNameLen=0,
    )
    assert "(no name)" in annotate_message(raw, HOSTS)
