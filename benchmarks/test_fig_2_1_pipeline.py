"""Figure 2.1 -- Overview of the measurement facility.

The three measurement stages in series: *metering* (event -> encoded
meter message), *filtering* (decode, select, reduce, log line), and
*analysis* (statistics over the trace).  The bench pushes a fixed
event stream through all three stages and reports the throughput of
the full pipeline.
"""

from benchmarks.conftest import HOSTS, synthetic_send_records
from repro.analysis import CommunicationStatistics, Trace
from repro.filtering.descriptions import default_description_set
from repro.filtering.records import format_record, parse_trace
from repro.filtering.rules import parse_rules

N_EVENTS = 500


def _pipeline():
    # Stage 1: metering (encode).
    wire = synthetic_send_records(N_EVENTS)
    # Stage 2: filtering (decode via descriptions, select, log).
    descriptions = default_description_set()
    rules = parse_rules("type=send, msgLength>=64\n")
    lines = []
    for raw in wire:
        record = descriptions.decode_message(raw, HOSTS)
        saved = rules.apply(record)
        if saved is not None:
            lines.append(format_record(saved, descriptions.field_order("send")))
    log_text = "\n".join(lines)
    # Stage 3: analysis.
    trace = Trace(parse_trace(log_text))
    stats = CommunicationStatistics(trace)
    return stats


def test_fig_2_1_three_stage_pipeline(benchmark):
    stats = benchmark(_pipeline)
    # The shape of Figure 2.1: data flows meter -> filter -> analysis,
    # each stage consuming the previous stage's output.
    totals = stats.totals()
    assert totals["events"] > 0
    assert totals["events"] < N_EVENTS  # the filter reduced the stream
    assert totals["processes"] == 20  # 5 pids x 4 machines
    print(
        "\n[fig 2.1] {0} metered events -> {1} filtered records -> "
        "stats over {2} processes".format(
            N_EVENTS, totals["events"], totals["processes"]
        )
    )
