"""StoreWriter/StoreReader: segmentation, recovery, pushdown, merge."""

import pytest

from repro.metering.messages import MessageCodec
from repro.net.addresses import InternetName
from repro.tracestore import (
    StoreReader,
    StoreWriter,
    collect_ops,
    merge_scan,
    segment_path,
)
from repro.tracestore.format import discard_mask, zero_masked_bytes

HOSTS = {1: "red", 2: "green", 3: "blue"}


def _codec():
    return MessageCodec(HOSTS)


def _wire(codec, n, t0=0, machine_of=lambda i: (i % 3) + 1):
    out = []
    for i in range(n):
        machine = machine_of(i)
        dest = InternetName(HOSTS[machine], 6000 + i % 4, machine)
        out.append(
            codec.encode(
                "send",
                machine=machine,
                cpu_time=t0 + i * 5,
                proc_time=10,
                pid=100 + i % 2,
                pc=i,
                sock=4,
                msgLength=32 * (1 + i % 3),
                destName=dest,
                **codec.name_lengths(destName=dest)
            )
        )
    return out


def _store_from(wire_masks, **writer_kw):
    writer_kw.setdefault("host_names", HOSTS)
    writer = StoreWriter("/t/s.store", **writer_kw)
    sink = {}
    for payload, mask in wire_masks:
        writer.append(payload, mask)
    writer.close()
    collect_ops(sink, writer)
    return {path: bytes(data) for path, data in sink.items()}, writer


def test_writer_rolls_segments_at_capacity():
    codec = _codec()
    store, writer = _store_from(
        [(raw, 0) for raw in _wire(codec, 40)], segment_bytes=600
    )
    assert writer.segments_sealed == len(store) > 1
    assert sorted(store) == [
        segment_path("/t/s.store", i) for i in range(len(store))
    ]
    reader = StoreReader.from_bytes(store)
    assert reader.record_count() == 40
    assert all(segment.sealed for segment in reader.segments)


def test_reader_streams_in_append_order():
    codec = _codec()
    wire = _wire(codec, 25)
    store, __ = _store_from([(raw, 0) for raw in wire], segment_bytes=500)
    reader = StoreReader.from_bytes(store)
    assert reader.records() == [codec.decode(raw) for raw in wire]


def test_unclosed_writer_leaves_recoverable_tail():
    codec = _codec()
    wire = _wire(codec, 10)
    writer = StoreWriter("/t/s.store", segment_bytes=10_000, flush_bytes=1)
    sink = {}
    for raw in wire:
        writer.append(raw)
    collect_ops(sink, writer)  # note: no close() -- simulated crash
    reader = StoreReader.from_bytes(sink, host_names=HOSTS)
    assert not reader.segments[0].sealed
    assert reader.records() == [codec.decode(raw) for raw in wire]
    assert reader.last_stats.segments_recovered == 1


def test_buffered_tail_lost_on_crash_but_flushed_frames_survive():
    codec = _codec()
    wire = _wire(codec, 10)
    writer = StoreWriter("/t/s.store", segment_bytes=10_000, flush_bytes=10**9)
    sink = {}
    for raw in wire[:7]:
        writer.append(raw)
    writer.sync()  # a meter batch boundary
    for raw in wire[7:]:
        writer.append(raw)  # still buffered when the machine dies
    collect_ops(sink, writer)
    reader = StoreReader.from_bytes(sink, host_names=HOSTS)
    assert len(reader.records()) == 7


def test_pushdown_skips_whole_segments():
    codec = _codec()
    wire = _wire(codec, 60)  # cpuTime 0..295, ~8 segments
    store, writer = _store_from([(raw, 0) for raw in wire], segment_bytes=600)
    assert writer.segments_sealed >= 4
    reader = StoreReader.from_bytes(store)
    full = reader.records()
    full_bytes = reader.last_stats.bytes_scanned
    narrow = reader.records(t_min=100, t_max=140)
    stats = reader.last_stats
    assert narrow == [r for r in full if 100 <= r["cpuTime"] <= 140]
    assert stats.segments_skipped > 0
    assert stats.bytes_scanned < full_bytes


def test_pushdown_by_machine_pid_event():
    codec = _codec()
    # Machine 3 only ever appears in the last records.
    wire = _wire(codec, 30, machine_of=lambda i: 3 if i >= 27 else (i % 2) + 1)
    store, __ = _store_from([(raw, 0) for raw in wire], segment_bytes=400)
    reader = StoreReader.from_bytes(store)
    full = reader.records()
    by_machine = reader.records(machines=[3])
    assert by_machine == [r for r in full if r["machine"] == 3]
    assert reader.last_stats.segments_skipped > 0
    by_pid = reader.records(pids=[(1, 101)])
    assert by_pid == [r for r in full if (r["machine"], r["pid"]) == (1, 101)]
    assert reader.records(events=["fork"]) == []
    assert reader.last_stats.segments_scanned == 0  # every footer excludes fork


def test_discard_masks_drop_fields_on_read():
    codec = _codec()
    raw = _wire(codec, 1)[0]
    mask = discard_mask("send", {"pc", "destName"})
    store, __ = _store_from([(zero_masked_bytes(raw, "send", mask), mask)])
    (record,) = StoreReader.from_bytes(store).records()
    assert "pc" not in record
    assert "destName" not in record
    assert record["pid"] == 100


def test_host_names_travel_in_footers():
    codec = _codec()
    store, __ = _store_from([(raw, 0) for raw in _wire(codec, 4)],
                            host_names=HOSTS)
    # No host_names given to the reader: the footer supplies them.
    reader = StoreReader.from_bytes(store)
    assert all(
        record["destName"].startswith(("inet:red", "inet:green", "inet:blue"))
        for record in reader.records()
    )


def test_merge_scan_interleaves_stores_by_time():
    codec = _codec()
    store_a, __ = _store_from(
        [(raw, 0) for raw in _wire(codec, 10, t0=0, machine_of=lambda i: 1)]
    )
    store_b, __ = _store_from(
        [(raw, 0) for raw in _wire(codec, 10, t0=2, machine_of=lambda i: 2)]
    )
    readers = [StoreReader.from_bytes(store_a), StoreReader.from_bytes(store_b)]
    merged = list(merge_scan(readers))
    assert len(merged) == 20
    times = [record["cpuTime"] for record in merged]
    assert times == sorted(times)
    machines = [record["machine"] for record in merged]
    assert machines == [1, 2] * 10  # perfect interleave of 0,2,4... and 2,7,12...


def test_restart_index_continues_numbering():
    codec = _codec()
    first, writer = _store_from([(raw, 0) for raw in _wire(codec, 5)])
    relaunched = StoreWriter("/t/s.store", start_index=writer.next_index)
    sink = dict(first)
    for raw in _wire(codec, 5, t0=1000):
        relaunched.append(raw)
    relaunched.close()
    collect_ops(sink, relaunched)
    reader = StoreReader.from_bytes(
        {path: bytes(data) for path, data in sink.items()}
    )
    assert reader.record_count() == 10
    times = [record["cpuTime"] for record in reader.records()]
    assert times[:5] == [0, 5, 10, 15, 20] and times[5] == 1000
