"""Per-machine in-memory filesystem.

4.2BSD at the time had no remote filesystem (Section 3.5.3), which is
why the measurement system copies executables with ``rcp`` and copies
filter log files on ``getlog``.  We model just enough of a local UNIX
filesystem to support that: paths, owners, permission bits, executables,
and append-mode log files under ``/usr/tmp``.
"""

from repro.kernel import errno
from repro.kernel.errno import SyscallError

ROOT_UID = 0


class FileNode:
    """One file: bytes plus owner/mode, optionally an executable program.

    Executables carry a ``program`` string naming an entry in the guest
    program registry; their byte content is that name, so copying the
    bytes with rcp really does copy the program (DESIGN.md Section 2).
    """

    def __init__(self, data=b"", owner=ROOT_UID, mode=0o644, program=None):
        self.data = bytearray(data)
        self.owner = owner
        self.mode = mode
        self.program = program

    def readable_by(self, uid):
        if uid == ROOT_UID:
            return True
        if uid == self.owner:
            return bool(self.mode & 0o400)
        return bool(self.mode & 0o004)

    def writable_by(self, uid):
        if uid == ROOT_UID:
            return True
        if uid == self.owner:
            return bool(self.mode & 0o200)
        return bool(self.mode & 0o002)

    def executable_by(self, uid):
        if uid == ROOT_UID:
            return self.mode & 0o111 != 0
        if uid == self.owner:
            return bool(self.mode & 0o100)
        return bool(self.mode & 0o001)


class FileSystem:
    """Flat path -> FileNode store with UNIX-ish permission checks."""

    def __init__(self):
        self._nodes = {}
        #: Optional storage-fault hook (``repro.faults.storage``): a
        #: callable ``(path, data) -> bytes`` applied to every write
        #: performed through an open file.  The syscall still reports
        #: the full length -- the medium lies, the writer believes it.
        self.write_fault = None

    # -- administrative API (host side, no permission checks) ----------

    def install(self, path, data=b"", owner=ROOT_UID, mode=0o644, program=None):
        """Create or replace a file outside any permission regime.

        Used by cluster bring-up to install executables, description
        files and templates, and by the simulated ``rcp``.
        """
        if isinstance(data, str):
            data = data.encode("ascii")
        node = FileNode(data=data, owner=owner, mode=mode, program=program)
        self._nodes[path] = node
        return node

    def exists(self, path):
        return path in self._nodes

    def node(self, path):
        """Fetch a node without checks; raises KeyError if missing."""
        return self._nodes[path]

    def paths(self):
        return sorted(self._nodes)

    # -- checked access (kernel syscalls go through these) -------------

    def lookup(self, path, uid, want="read"):
        """Resolve ``path`` for ``uid``; raises SyscallError."""
        node = self._nodes.get(path)
        if node is None:
            raise SyscallError(errno.ENOENT, path)
        checks = {
            "read": node.readable_by,
            "write": node.writable_by,
            "exec": node.executable_by,
        }
        if not checks[want](uid):
            raise SyscallError(errno.EACCES, path)
        return node

    def create(self, path, uid, mode=0o644):
        """Create an empty file owned by ``uid`` (truncates existing)."""
        existing = self._nodes.get(path)
        if existing is not None:
            if not existing.writable_by(uid):
                raise SyscallError(errno.EACCES, path)
            existing.data = bytearray()
            return existing
        node = FileNode(owner=uid, mode=mode)
        self._nodes[path] = node
        return node

    def unlink(self, path, uid):
        node = self._nodes.get(path)
        if node is None:
            raise SyscallError(errno.ENOENT, path)
        if not node.writable_by(uid):
            raise SyscallError(errno.EACCES, path)
        del self._nodes[path]


class OpenFile:
    """A file-table object for an open regular file."""

    kind = "file"

    def __init__(self, node, mode, append=False, fs=None, path=None):
        self.node = node
        self.mode = mode  # "r" or "w"
        self.offset = len(node.data) if append else 0
        self.fs = fs
        self.path = path

    def read(self, nbytes):
        data = bytes(self.node.data[self.offset : self.offset + nbytes])
        self.offset += len(data)
        return data

    def write(self, data):
        stored = data
        if self.fs is not None and self.fs.write_fault is not None:
            # An armed storage fault may shrink or corrupt what the
            # medium keeps; the syscall still claims full success.
            stored = self.fs.write_fault(self.path, data)
        end = self.offset + len(stored)
        if self.offset == len(self.node.data):
            self.node.data.extend(stored)
        else:
            self.node.data[self.offset : end] = stored
        self.offset = end
        return len(data)

    def close(self):
        pass
