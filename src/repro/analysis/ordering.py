"""Event ordering and clock-skew estimation (Section 4.1).

"The separate machines' times ... only roughly correspond to a global
time.  Statements regarding the global ordering of events can only be
made on the basis of evidence within the trace.  For example, since a
message must be sent before it may be received, the times of sending
and receiving a message can always be ordered relative to one another.
Given these constraints, much of the global ordering can be deduced."

:class:`HappensBefore` builds the Lamport partial order (program order
per process plus matched send->receive edges) as a DAG and answers
ordering queries; :func:`estimate_clock_skews` recovers approximate
relative clock offsets from the send/receive pairs, in the spirit of
TEMPO (Gusella & Zatti 83).
"""

import networkx as nx

from repro.analysis.matching import MessageMatcher


class HappensBefore:
    """The happens-before DAG over a trace."""

    def __init__(self, trace, matcher=None):
        self.trace = trace
        self.matcher = matcher or MessageMatcher(trace)
        self.graph = nx.DiGraph()
        for event in trace:
            self.graph.add_node(event.index)
        # Program order within each process.
        for process in trace.processes():
            events = trace.events_for(process)
            for earlier, later in zip(events, events[1:]):
                self.graph.add_edge(earlier.index, later.index)
        # Communication order: a message is sent before it is received.
        for pair in self.matcher.pairs:
            if pair.send.index != pair.recv.index:
                self.graph.add_edge(pair.send.index, pair.recv.index)
        self._descendants = None

    def _closure(self):
        if self._descendants is None:
            self._descendants = {
                node: nx.descendants(self.graph, node) for node in self.graph
            }
        return self._descendants

    def happens_before(self, event_a, event_b):
        """Whether ``event_a`` -> ``event_b`` is deducible."""
        return event_b.index in self._closure()[event_a.index]

    def concurrent(self, event_a, event_b):
        """Neither ordered before the other: truly concurrent (or the
        trace lacks the evidence)."""
        closure = self._closure()
        return (
            event_a.index != event_b.index
            and event_b.index not in closure[event_a.index]
            and event_a.index not in closure[event_b.index]
        )

    def ordered_fraction(self):
        """Fraction of cross-machine event pairs the trace can order.

        This is the paper's "much of the global ordering can be
        deduced" made quantitative (bench P5).
        """
        closure = self._closure()
        events = list(self.trace)
        ordered = 0
        total = 0
        for i, event_a in enumerate(events):
            for event_b in events[i + 1 :]:
                if event_a.machine == event_b.machine:
                    continue  # locally ordered by the machine clock
                total += 1
                if (
                    event_b.index in closure[event_a.index]
                    or event_a.index in closure[event_b.index]
                ):
                    ordered += 1
        return (ordered / total) if total else 1.0

    def consistent_global_order(self):
        """One total order consistent with happens-before, breaking
        ties by (skew-corrected) local timestamps."""
        skews = estimate_clock_skews(self.trace, self.matcher)

        def key(index):
            event = self.trace.events[index]
            return (event.local_time - skews.get(event.machine, 0.0), index)

        return [
            self.trace.events[index]
            for index in nx.lexicographical_topological_sort(self.graph, key=key)
        ]

    def violates_causality(self):
        """Send/receive pairs whose raw local timestamps run backwards:
        direct evidence of clock skew (receive stamped before send)."""
        return [
            pair
            for pair in self.matcher.pairs
            if pair.recv.local_time < pair.send.local_time
        ]


def estimate_clock_models(trace, matcher=None, reference=None):
    """Full linear clock models per machine: local ~ offset + rate * ref.

    Where :func:`estimate_clock_skews` recovers constant offsets, this
    also recovers *drift*: for each machine B with two-way traffic to
    the reference A, matched pairs constrain B's clock from both sides
    (a message's receive stamp is at least its send stamp plus zero
    delay, in both directions).  Fitting a line through the forward
    pairs and another through the reverse pairs and averaging them
    splits the (assumed symmetric) network delay out -- the TEMPO idea
    extended to rates.

    Returns {machine id: (offset_ms, rate)} with the reference machine
    mapped to (0.0, 1.0).  Machines without two-way traffic to the
    reference fall back to offset-only estimates.
    """
    import numpy as np

    matcher = matcher or MessageMatcher(trace)
    machines = trace.machines()
    if not machines:
        return {}
    if reference is None:
        reference = machines[0]
    models = {reference: (0.0, 1.0)}

    by_pair = {}
    for pair in matcher.pairs:
        key = (pair.send.machine, pair.recv.machine)
        by_pair.setdefault(key, []).append(
            (pair.send.local_time, pair.recv.local_time)
        )

    fallback = estimate_clock_skews(trace, matcher, reference=reference)
    for machine in machines:
        if machine == reference:
            continue
        forward = by_pair.get((reference, machine), [])  # (ref t, b t)
        reverse = [
            (a, b) for b, a in by_pair.get((machine, reference), [])
        ]  # -> (ref t, b t)
        if len(forward) >= 2 and len(reverse) >= 2:
            m1, c1 = np.polyfit(*zip(*forward), 1)
            m2, c2 = np.polyfit(*zip(*reverse), 1)
            rate = (m1 + m2) / 2.0
            offset = (c1 + c2) / 2.0
            models[machine] = (float(offset), float(rate))
        else:
            models[machine] = (fallback.get(machine, 0.0), 1.0)
    return models


def estimate_clock_skews(trace, matcher=None, reference=None):
    """Relative clock offsets per machine, from message pairs.

    For machines A, B with matched messages in both directions, the
    minimum observed (recv_local - send_local) in each direction bounds
    the offset: offset ~ (min_fwd - min_rev) / 2, assuming roughly
    symmetric network delay (the TEMPO assumption).  Offsets are
    reported relative to ``reference`` (default: lowest machine id);
    machines connected only indirectly are resolved transitively.

    Returns {machine id: offset_ms}; subtract the offset from a
    machine's local timestamps to align them.
    """
    matcher = matcher or MessageMatcher(trace)
    deltas = {}
    for pair in matcher.pairs:
        key = (pair.send.machine, pair.recv.machine)
        if key[0] == key[1]:
            continue
        delta = pair.recv.local_time - pair.send.local_time
        if key not in deltas or delta < deltas[key]:
            deltas[key] = delta

    graph = nx.Graph()
    for (a, b), fwd in deltas.items():
        rev = deltas.get((b, a))
        if rev is None:
            continue
        # local_B - local_A ~ (fwd - rev) / 2
        offset = (fwd - rev) / 2.0
        graph.add_edge(a, b, offset_ab=offset, a=a)

    machines = trace.machines()
    if reference is None:
        reference = machines[0] if machines else None
    skews = {machine: 0.0 for machine in machines}
    if reference is None or reference not in graph:
        return skews
    seen = {reference}
    frontier = [reference]
    while frontier:
        current = frontier.pop()
        for neighbor in graph.neighbors(current):
            if neighbor in seen:
                continue
            data = graph.edges[current, neighbor]
            offset = data["offset_ab"]
            if data["a"] != current:
                offset = -offset
            skews[neighbor] = skews[current] + offset
            seen.add(neighbor)
            frontier.append(neighbor)
    return skews
