"""Ablation -- per-event metering cost vs perturbation.

DESIGN.md treats the CPU charged per meter record as a model
parameter.  Sweep it and measure the perturbation of a fixed
computation: perturbation should grow linearly in the per-event cost
and vanish as it approaches zero (transparency in the limit).
"""

import pytest

from repro.core.cluster import Cluster
from repro.kernel import defs
from repro.metering import flags as mf
from tests.metering.harness import metered_spawn, start_collector

N_EVENTS = 100


def _workload(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    for __ in range(N_EVENTS):
        yield sys.compute(1.0)
        yield sys.sendto(fd, b"x", ("green", 6000))
    yield sys.exit(0)


def _cpu_with_cost(event_cost_ms):
    original = defs.METER_EVENT_COST_MS
    defs.METER_EVENT_COST_MS = event_cost_ms
    try:
        cluster = Cluster(seed=14)
        start_collector(cluster)
        proc = metered_spawn(cluster, "red", _workload, flags=mf.METERSEND)
        cluster.run_until_exit([proc])
        return proc.cpu_ms
    finally:
        defs.METER_EVENT_COST_MS = original


@pytest.mark.parametrize("cost_ms", [0.0, 0.02, 0.1, 0.5])
def test_ablation_meter_event_cost(benchmark, cost_ms):
    cpu = benchmark.pedantic(_cpu_with_cost, args=(cost_ms,), rounds=1, iterations=1)
    baseline = N_EVENTS * 1.0  # pure compute
    overhead = cpu - baseline
    print(
        "\n[ablation/cost] {0:.2f} ms/event: cpu {1:7.2f} ms "
        "(metering overhead {2:5.2f} ms over {3} events)".format(
            cost_ms, cpu, overhead, N_EVENTS
        )
    )
    # Overhead ~ syscall costs + N * cost: linear in the event cost.
    assert overhead >= N_EVENTS * cost_ms


def test_ablation_overhead_is_linear_in_event_cost(benchmark):
    def sweep():
        return [_cpu_with_cost(c) for c in (0.0, 0.2, 0.4)]

    zero, low, high = benchmark.pedantic(sweep, rounds=1, iterations=1)
    step1 = low - zero
    step2 = high - low
    assert step1 == pytest.approx(N_EVENTS * 0.2, rel=0.05)
    assert step2 == pytest.approx(step1, rel=0.05)
