"""P1 -- Buffering of meter messages (Sections 3.2 / 4.1 / Appendix C).

Claim: "The default is to buffer several messages so that the number
of meter messages is considerably smaller than the number of messages
sent by the metered process", with M_IMMEDIATE trading efficiency for
latency.  The bench sweeps the kernel buffer size (including immediate
mode) on a chatty workload and reports wire messages and bytes per
metered event.
"""

import pytest

from repro.core.cluster import Cluster
from repro.kernel import defs
from repro.metering import flags as mf
from tests.metering.harness import metered_spawn, start_collector

N_SENDS = 128


def _chatty(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    for __ in range(N_SENDS):
        yield sys.sendto(fd, b"x" * 32, ("green", 6000))
    yield sys.exit(0)


def _run_with(buffer_limit, immediate):
    cluster = Cluster(seed=4)
    records, __ = start_collector(cluster)
    machine = cluster.machine("red")
    machine.meter.buffer_limit = buffer_limit
    flags = mf.METERSEND | (mf.M_IMMEDIATE if immediate else 0)
    proc = metered_spawn(cluster, "red", _chatty, flags=flags)
    cluster.run_until_exit([proc])
    cluster.run(until_ms=cluster.sim.now + 50)
    assert len(records) == N_SENDS  # lossless at every setting
    return machine.meter.wire_sends, machine.meter.wire_bytes


@pytest.mark.parametrize("buffer_limit", [1, 2, 4, 8, 16, 32])
def test_perf_buffering_sweep(benchmark, buffer_limit):
    wire_sends, wire_bytes = benchmark.pedantic(
        _run_with, args=(buffer_limit, False), rounds=1, iterations=1
    )
    expected = -(-N_SENDS // buffer_limit)  # ceil
    assert wire_sends == expected
    print(
        "\n[P1] buffer={0:>2}: {1} metered events -> {2} wire messages "
        "({3} bytes)".format(buffer_limit, N_SENDS, wire_sends, wire_bytes)
    )


def test_perf_immediate_mode_sends_one_per_event(benchmark):
    wire_sends, __ = benchmark.pedantic(
        _run_with, args=(8, True), rounds=1, iterations=1
    )
    assert wire_sends == N_SENDS
    print("\n[P1] immediate: {0} events -> {0} wire messages".format(N_SENDS))


def test_perf_buffering_is_considerably_smaller(benchmark):
    """The paper's qualitative claim, quantified: default buffering
    cuts wire messages by the buffer factor (8x here)."""
    def compare():
        buffered, __ = _run_with(8, False)
        immediate, __ = _run_with(8, True)
        return buffered, immediate

    buffered, immediate = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert immediate / buffered == pytest.approx(8.0, rel=0.05)
