"""Controller/daemon RPC failure paths: dead daemons, mid-exchange
hangups, unresponsive daemons, and health-based degradation."""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.daemon.meterdaemon import METERDAEMON_PORT, meterdaemon
from repro.kernel import defs


def _make_session(seed=17):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    return session


def _kill_daemon(cluster, machine_name):
    machine = cluster.machine(machine_name)
    for proc in list(machine.procs.values()):
        if proc.program_name == "meterdaemon" and proc.state != defs.PROC_ZOMBIE:
            machine.post_signal(proc, defs.SIGKILL)


def _close_after_request(sys, argv):
    """A fake daemon: reads the request, then hangs up without replying
    (the ambiguous mid-exchange failure)."""
    from repro import guestlib

    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", METERDAEMON_PORT))
    yield sys.listen(fd, 5)
    while True:
        conn, __ = yield sys.accept(fd)
        yield from guestlib.recv_frame(sys, conn)
        yield sys.close(conn)


def _silent_daemon(sys, argv):
    """A fake daemon that accepts and then never answers anything."""
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", METERDAEMON_PORT))
    yield sys.listen(fd, 5)
    held = []
    while True:
        conn, __ = yield sys.accept(fd)
        held.append(conn)


def test_duplicate_termination_notification_reports_once():
    """The daemon retries termination notifications (the controller may
    be briefly unreachable), so the controller can legitimately hear
    about one death twice.  The second copy must be swallowed: the
    record is already killed."""
    from repro import guestlib
    from repro.daemon import protocol
    from repro.programs import install_all

    session = _make_session()
    install_all(session)
    cluster = session.cluster
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red nameserver 5353")
    session.command("startjob j")
    session.settle(50)
    red = cluster.machine("red")
    victim = [
        p for p in red.procs.values() if p.program_name == "nameserver"
    ][0]
    # The controller's notification listener is the only non-daemon
    # stream port on the control machine.
    yellow = cluster.machine("yellow")
    notify_ports = [
        port
        for (stype, port), sock in yellow.inet_ports.items()
        if stype == defs.SOCK_STREAM and port != METERDAEMON_PORT
    ]
    assert len(notify_ports) == 1
    payload = protocol.encode(
        protocol.TERMINATION_NOTIFY,
        pid=victim.pid,
        machine="red",
        reason="signaled",
        status=9,
        jobname="j",
        procname="nameserver",
    )

    def _double_notify(sys, argv):
        for __ in range(2):
            fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
            yield sys.connect(fd, ("yellow", notify_ports[0]), 500.0)
            yield from guestlib.send_frame(sys, fd, payload)
            yield sys.close(fd)
        yield sys.exit(0)

    red.post_signal(victim, defs.SIGKILL)  # make the report truthful
    cluster.spawn("red", _double_notify, uid=0, program_name="notifier")
    session.settle()
    transcript = session.transcript()
    done = "DONE: process nameserver in job 'j' terminated"
    assert transcript.count(done) == 1


def test_no_daemon_listening_is_an_error_reply_and_degrades():
    session = _make_session()
    _kill_daemon(session.cluster, "red")
    session.settle(20)
    out = session.command("filter fx red")
    assert "filter 'fx' not created" in out
    assert "no meterdaemon on 'red' (ECONNREFUSED)" in out
    assert "WARNING: meterdaemon on 'red' is not responding" in out
    assert session.controller_alive()


def test_degraded_machine_fast_fails_without_repeat_warnings():
    session = _make_session()
    cluster = session.cluster
    _kill_daemon(cluster, "red")
    session.settle(20)
    before_first = cluster.sim.now
    session.command("filter fx red")
    first_elapsed = cluster.sim.now - before_first
    before_second = cluster.sim.now
    out = session.command("filter fy red")
    second_elapsed = cluster.sim.now - before_second
    # Degraded: single attempt, no backoff cycle, no second warning.
    assert "not created" in out
    assert "WARNING" not in out
    assert second_elapsed < first_elapsed


def test_daemon_recovery_clears_degraded_state():
    session = _make_session()
    cluster = session.cluster
    _kill_daemon(cluster, "red")
    session.settle(20)
    session.command("filter fx red")  # marks red degraded
    red = cluster.machine("red")
    session.daemons["red"] = red.create_process(
        main=meterdaemon, uid=0, program_name="meterdaemon"
    )
    session.settle(20)
    out = session.command("filter fy red")
    assert "WARNING: meterdaemon on 'red' is responding again" in out
    assert "filter 'fy' ... created" in out


def test_daemon_closing_mid_exchange_is_not_retried():
    session = _make_session()
    cluster = session.cluster
    _kill_daemon(cluster, "red")
    session.settle(20)
    cluster.spawn("red", _close_after_request, uid=0, program_name="fakedaemon")
    session.settle(20)
    out = session.command("filter fx red")
    assert "daemon closed the connection" in out
    # Ambiguous outcome: the machine is answering, so not degraded.
    assert "WARNING" not in out
    assert session.controller_alive()


def test_unresponsive_daemon_hits_the_deadline_instead_of_hanging():
    session = _make_session()
    cluster = session.cluster
    _kill_daemon(cluster, "red")
    session.settle(20)
    cluster.spawn("red", _silent_daemon, uid=0, program_name="fakedaemon")
    session.settle(20)
    before = cluster.sim.now
    out = session.command("filter fx red")
    elapsed = cluster.sim.now - before
    assert "not created" in out
    assert "ETIMEDOUT" in out
    # Three deadlined attempts plus backoff, not an unbounded wait.
    assert elapsed < 10_000.0
    assert session.controller_alive()
