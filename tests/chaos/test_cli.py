"""``python -m repro chaos`` smoke tests: run, replay, and shrink
round-trip through the CLI surface on a small scenario."""

import json

from repro.chaos.artifact import build_artifact, load_artifact, save_artifact
from repro.chaos.cli import chaos_main
from repro.chaos.generator import generate_plan
from repro.chaos.oracles import run_oracles
from repro.chaos.scenario import DgramPairScenario, run_scenario


def test_no_arguments_prints_usage(capsys):
    assert chaos_main([]) == 1
    assert "usage:" in capsys.readouterr().out


def test_unknown_option_is_reported(capsys):
    assert chaos_main(["run", "--bogus", "1"]) == 1
    assert "unknown option" in capsys.readouterr().out


def test_run_sweeps_and_writes_the_bench_report(tmp_path, capsys):
    bench = tmp_path / "report.json"
    code = chaos_main(
        [
            "run",
            "--profile",
            "network",
            "--seeds",
            "0:2",
            "--sends",
            "12",
            "--bench",
            str(bench),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    report = json.loads(bench.read_text())
    assert report["schedules"] == 2
    assert report["violations"] == 0
    assert "chaos search: 2 schedule(s)" in out


def test_replay_reproduces_a_recorded_verdict(tmp_path, capsys):
    scenario = DgramPairScenario(sends=12)
    plan = generate_plan(1, "network", scenario.surface(log_directory=None))
    baseline = run_scenario(scenario, 7)
    run = run_scenario(scenario, 7, plan)
    verdict = run_oracles(run, baseline)
    artifact = build_artifact(
        scenario.name,
        7,
        plan,
        verdict,
        scenario_kwargs={"sends": 12},
        profile="network",
        gen_seed=1,
    )
    path = tmp_path / "artifact.json"
    save_artifact(artifact, path)
    assert chaos_main(["replay", str(path)]) == 0
    assert "reproduced" in capsys.readouterr().out


def test_replay_rejects_non_artifacts(tmp_path, capsys):
    path = tmp_path / "junk.json"
    path.write_text('{"format": "something-else"}')
    assert chaos_main(["replay", str(path)]) == 1


def test_shrink_refuses_a_passing_artifact(tmp_path, capsys):
    scenario = DgramPairScenario(sends=12)
    plan = generate_plan(1, "network", scenario.surface(log_directory=None))
    baseline = run_scenario(scenario, 7)
    verdict = run_oracles(run_scenario(scenario, 7, plan), baseline)
    assert verdict["ok"]
    path = tmp_path / "ok.json"
    save_artifact(
        build_artifact(
            scenario.name, 7, plan, verdict, scenario_kwargs={"sends": 12}
        ),
        path,
    )
    assert chaos_main(["shrink", str(path)]) == 1
    assert "nothing to shrink" in capsys.readouterr().out


def test_shrink_reduces_a_synthetic_failure(tmp_path, capsys):
    """End-to-end over the CLI: a schedule with two partitions fails
    the synthetic partition-budget oracle, shrinks to its 2-event
    core, and the written artifact replays to the same verdict."""
    scenario = DgramPairScenario(sends=12)
    plan = generate_plan(1, "network", scenario.surface(log_directory=None))
    assert sum(1 for e in plan.events if e.kind == "partition") >= 2
    baseline = run_scenario(scenario, 7)
    run = run_scenario(scenario, 7, plan)
    verdict = run_oracles(run, baseline, oracles=["partition_budget"])
    assert not verdict["ok"]
    path = tmp_path / "fail.json"
    save_artifact(
        build_artifact(
            scenario.name,
            7,
            plan,
            verdict,
            scenario_kwargs={"sends": 12},
            oracles=["partition_budget"],
        ),
        path,
    )
    out_path = tmp_path / "fail.shrunk.json"
    assert chaos_main(["shrink", str(path), "--out", str(out_path)]) == 0
    shrunk = load_artifact(out_path)
    assert len(shrunk["plan"]) == 2
    assert all(entry["kind"] == "partition" for entry in shrunk["plan"])
    assert shrunk["verdict"]["violated"] == ["partition_budget"]
    assert chaos_main(["replay", str(out_path)]) == 0
