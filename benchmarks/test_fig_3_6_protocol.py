"""Figure 3.6 -- Formats of a controller/daemon message.

Type 11 (create request: filename, parameter list, filter port/host,
meter flags, control port/host) and type 18 (create reply: pid,
status).  The bench measures encode+decode of the exchange.
"""

from repro.daemon import protocol


def _round_trip():
    request = protocol.encode(
        protocol.CREATE_REQ,
        filename="A",
        params=["parm1", "parm2"],
        filter_port=4411,
        filter_host="blue",
        meter_flags=0x3F,
        control_port=5522,
        control_host="yellow",
        uid=100,
    )
    req_type, req_body = protocol.decode(request)
    reply = protocol.encode(protocol.CREATE_REPLY, pid=2120, status="ok")
    rep_type, rep_body = protocol.decode(reply)
    return req_type, req_body, rep_type, rep_body


def test_fig_3_6_create_exchange_codec(benchmark):
    req_type, req_body, rep_type, rep_body = benchmark(_round_trip)
    # The figure's type numbers.
    assert req_type == 11
    assert rep_type == 18
    # The figure's body fields.
    for field in (
        "filename",
        "params",
        "filter_port",
        "filter_host",
        "meter_flags",
        "control_port",
        "control_host",
    ):
        assert field in req_body, field
    assert set(rep_body) == {"pid", "status"}
    print(
        "\n[fig 3.6] create request (type 11) fields: {0}; reply "
        "(type 18): pid, status".format(sorted(req_body))
    )
