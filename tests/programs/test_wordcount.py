"""The distributed word-count workload."""

import pytest

from repro.analysis import CommunicationGraph, Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs
from repro.programs import install_all
from repro.programs.wordcount import count_words, merge_counts

SAMPLE_TEXT = """\
the quick brown fox jumps over the lazy dog
the dog barks and the fox runs
quick quick slow
monitoring distributed programs is hard, said the fox.
"""


def test_count_words_reference():
    counts = count_words("The cat, the hat! THE bat")
    assert counts == {"the": 3, "cat": 1, "hat": 1, "bat": 1}


def test_merge_counts():
    total = merge_counts({"a": 1}, {"a": 2, "b": 5})
    assert total == {"a": 3, "b": 5}


def _run_wordcount(session, nmappers=2):
    session.cluster.machine("yellow").fs.install(
        "corpus", SAMPLE_TEXT, owner=session.uid, mode=0o644
    )
    session.command("filter f1 blue")
    session.command("newjob wc")
    session.command(
        "addprocess wc yellow wccoordinator 5700 {0} corpus red 5800".format(nmappers)
    )
    session.command("addprocess wc red wcreducer 5800 {0}".format(nmappers))
    mapper_machines = ["green", "blue"][:nmappers]
    for machine in mapper_machines:
        session.command("addprocess wc {0} wcmapper yellow 5700".format(machine))
    session.command("setflags wc all")
    session.command("startjob wc")
    session.settle()
    return session


@pytest.fixture
def session():
    cluster = Cluster(seed=61)
    sess = MeasurementSession(cluster, control_machine="yellow")
    install_all(sess)
    return sess


def test_wordcount_produces_correct_totals(session):
    _run_wordcount(session)
    out = session.drain_output()
    # "the" appears 5 times in the corpus.
    assert "wccoordinator: top words: the=5" in out
    assert "DONE: process wccoordinator in job 'wc' terminated: reason: normal" in out


def test_wordcount_matches_local_reference(session):
    _run_wordcount(session)
    reference = count_words(SAMPLE_TEXT)
    top = sorted(reference.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    expected = ", ".join("{0}={1}".format(w, c) for w, c in top)
    assert "top words: " + expected in session.drain_output()


def test_wordcount_trace_shows_scatter_gather(session):
    _run_wordcount(session)
    trace = Trace(session.read_trace("f1"))
    assert len(trace.processes()) == 4  # coordinator, reducer, 2 mappers
    graph = CommunicationGraph(trace)
    # Both mappers talk to coordinator and reducer: a connected mesh.
    assert graph.is_connected()
    accepts = trace.by_type("accept")
    assert len(accepts) >= 5  # 2 scatter + 2 gather + 1 result
