"""The streaming tap across a filter relaunch.

When the daemon relaunches a crashed filter, the replacement replays
the committed log into a fresh engine and the kernels re-meter their
unacknowledged batches.  Batch-marker dedup makes the committed record
stream loss-free and duplicate-free -- so the relaunched engine's
digest must still equal both post-mortem twins, and the controller
must transparently re-register its watches with the new engine."""

import json

import pytest

from repro.analysis.trace import Trace
from repro.faults import FaultInjector, FaultPlan
from repro.streaming import twins
from repro.streaming.twins import diff_digests, replay_engine

from tests.streaming.conftest import (
    ALL_FLAGS,
    build_session,
    start_mixed_job,
    stats_digest,
)

RELAUNCH_MARK = "WARNING: filter 'f1' on blue was relaunched"


def _run_with_kill(log_format, seed=31):
    session = build_session(seed=seed, log_format=log_format)
    cluster = session.cluster
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramconsumer 6001 80 4000")
    session.command("addprocess j green dgramproducer red 6001 80 64 5")
    session.command("addprocess j red pingpongserver 5100 40")
    session.command("addprocess j blue pingpongclient red 5100 40")
    session.command("setflags j " + ALL_FLAGS)
    session.command("watch add rate threshold=100000")  # inert, but present
    now = cluster.sim.now
    plan = FaultPlan().kill_filter(now + 60.0, "blue")
    FaultInjector(cluster, plan, session=session).arm()
    session.command("startjob j")
    session.settle()
    return session


@pytest.mark.parametrize("log_format", ["text", "store"])
def test_no_double_count_across_relaunch(log_format):
    session = _run_with_kill(log_format)
    assert RELAUNCH_MARK in session.transcript()

    records = list(session.read_trace("f1"))
    assert len(records) > 300

    live = stats_digest(session)
    online = replay_engine(records).finalize().digest()
    batch = twins.batch_digest(Trace(list(records)))
    assert diff_digests(online, batch) == []
    # The live engine crossed a kill + replay + REMETER; if any replayed
    # batch were double-counted (or lost), records and both digests
    # would diverge from the twins.
    for key in ("records", "clock_digest", "pairs_digest", "totals",
                "per_process"):
        assert live[key] == json.loads(json.dumps(online[key])), key


def test_watch_survives_relaunch():
    session = _run_with_kill("text", seed=32)
    assert RELAUNCH_MARK in session.transcript()
    # The controller still lists the watch...
    assert "W1 on 'f1'" in session.command("watch list")
    # ...and the *relaunched* engine holds it too (the controller
    # re-registered it), visible in the live snapshot's query line.
    out = session.command("stats")
    assert "W1 (rate)" in out
    # Polling the fresh engine works; its firing sequence restarted, so
    # the cursor was rewound rather than pointing past the end.
    out = session.command("watch poll")
    assert "failed" not in out
