"""Syscall handlers: descriptors and regular files.

Mixin for :class:`repro.kernel.machine.Machine`.  The handlers for
``read`` and ``write`` dispatch on the file-table object's kind; the
socket branches live in :mod:`repro.kernel.syssock`.
"""

from repro.kernel import errno
from repro.kernel.errno import SyscallError
from repro.kernel.filesystem import OpenFile


class FileCalls:
    """open/close/dup/read/write/unlink and tty handling."""

    # ------------------------------------------------------------------

    def sys_open(self, proc, request):
        path, mode = request.args
        if mode == "r":
            node = self.fs.lookup(path, proc.uid, want="read")
            open_file = OpenFile(node, "r", fs=self.fs, path=path)
        elif mode == "w":
            node = self.fs.create(path, proc.uid)
            open_file = OpenFile(node, "w", fs=self.fs, path=path)
        elif mode == "a":
            if self.fs.exists(path):
                node = self.fs.lookup(path, proc.uid, want="write")
            else:
                node = self.fs.create(path, proc.uid)
            open_file = OpenFile(node, "w", append=True, fs=self.fs, path=path)
        else:
            raise SyscallError(errno.EINVAL, "open mode %r" % mode)
        entry = self.file_table.allocate(open_file)
        return proc.alloc_fd(entry)

    def sys_unlink(self, proc, request):
        (path,) = request.args
        self.fs.unlink(path, proc.uid)
        return 0

    def sys_close(self, proc, request):
        (fd,) = request.args
        entry = proc.close_fd(fd)
        if entry.kind == "socket":
            self.meter.on_destsocket(proc, entry)
        return 0

    def sys_dup(self, proc, request):
        (fd,) = request.args
        entry = proc.lookup_fd(fd)
        newfd = proc.alloc_fd(entry)
        if entry.kind == "socket":
            self.meter.on_dup(proc, entry, newfd)
        return newfd

    def sys_dup2(self, proc, request):
        fd, newfd = request.args
        entry = proc.lookup_fd(fd)
        if newfd == fd:
            return newfd
        proc.install_fd(newfd, entry)
        if entry.kind == "socket":
            self.meter.on_dup(proc, entry, newfd)
        return newfd

    # ------------------------------------------------------------------
    # read/write dispatch: files and ttys here, sockets in SocketCalls.
    # ------------------------------------------------------------------

    def sys_read(self, proc, request):
        fd = request.args[0]
        nbytes = request.args[1]
        entry = proc.lookup_fd(fd)
        if entry.kind == "socket":
            return self._socket_read(proc, request, entry, with_name=False)
        if entry.kind == "tty":
            tty = entry.obj
            if not tty.readable():
                return self.block(proc, request, [tty.rd_wait])
            return tty.read(nbytes)
        if entry.kind == "file":
            return entry.obj.read(nbytes)
        raise SyscallError(errno.EBADF, "unreadable object")

    def sys_recvfrom(self, proc, request):
        fd = request.args[0]
        entry = proc.lookup_fd(fd)
        if entry.kind != "socket":
            raise SyscallError(errno.ENOTSOCK, "fd %d" % fd)
        return self._socket_read(proc, request, entry, with_name=True)

    def sys_write(self, proc, request):
        fd, data = request.args
        entry = proc.lookup_fd(fd)
        if entry.kind == "socket":
            return self._socket_write(proc, request, entry, dest_name=None)
        if entry.kind == "tty":
            return entry.obj.write(data)
        if entry.kind == "file":
            if entry.obj.mode != "w":
                raise SyscallError(errno.EACCES, "file open for reading")
            return entry.obj.write(data)
        raise SyscallError(errno.EBADF, "unwritable object")
