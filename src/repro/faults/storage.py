"""Deterministic storage fault injection for the trace store.

The network and session layers already misbehave on demand (PR 1 /
PR 5); this module makes the *storage medium* able to misbehave too,
reproducibly, at two seams:

1. **The writer's driver seam.**  :class:`StoreWriter` is I/O-free: it
   queues ``("open"/"write"/"close", path, ...)`` ops that a pluggable
   driver (``flush_to_guest`` / ``flush_to_fs`` / ``flush_to_files`` /
   ``collect_ops``) applies to a medium, all by calling
   ``pending_ops()``.  :class:`FaultyWriter` wraps any writer at
   exactly that seam and perturbs the op stream before the driver sees
   it -- torn writes at arbitrary byte offsets, short (partially lost)
   writes, dropped flushes, and bit flips -- so every driver works
   unmodified against a faulty disk.

2. **The simulated medium.**  For faults scheduled on the simulator
   clock (:class:`~repro.faults.plan.FaultPlan` ``storage_*`` events),
   helpers here mutate a machine's in-memory filesystem directly:
   truncating a segment tail (a torn write materialized post-crash),
   flipping seeded bits in at-rest bytes (bit rot), or arming a
   one-shot interceptor that discards the next matching write (a sync
   the disk acknowledged but never performed).

Determinism: every fault is either pinned to an explicit byte offset /
op index, or derived from a caller-supplied integer seed through
:class:`random.Random` -- same plan + same seed => the same damaged
bytes, byte for byte.  Offsets are positions in the writer's *intended*
byte stream (all write-op payloads concatenated in emission order,
across segment boundaries), so a fault plan means the same thing no
matter how the writer happens to batch its flushes.
"""

import random


def flip_bit(data, at_byte, bit):
    """Return ``data`` (bytes) with one bit XOR-flipped."""
    buf = bytearray(data)
    buf[at_byte] ^= 1 << (bit & 7)
    return bytes(buf)


def flip_random_bits(data, count, seed):
    """Flip ``count`` seed-chosen bits in ``data``; returns
    (mutated bytes, [(byte offset, bit), ...])."""
    if not data or not count:
        return bytes(data), []
    rng = random.Random(seed)
    buf = bytearray(data)
    flips = []
    for __ in range(count):
        at_byte = rng.randrange(len(buf))
        bit = rng.randrange(8)
        buf[at_byte] ^= 1 << bit
        flips.append((at_byte, bit))
    return bytes(buf), flips


class StorageFaultPlan:
    """A declarative, seed-reproducible schedule of storage faults,
    applied by :class:`FaultyWriter` as the op stream flows past.
    Builder methods chain::

        faults = (StorageFaultPlan(seed=7)
                  .drop_flush(2)            # 3rd write op never lands
                  .short_write(900, 40)     # bytes 900..940 lost mid-stream
                  .bit_flip(1234)           # seed-chosen bit of byte 1234
                  .torn_write(4000))        # medium dies at byte 4000
    """

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        #: Stream cut: every intended byte at offset >= this is lost and
        #: the medium is dead afterwards (None: no cut).
        self.torn_at = None
        #: Mid-stream losses: list of (start, end) intended-byte ranges
        #: silently dropped (later bytes still land, shifted earlier --
        #: a short write the writer never learned about).
        self.lost_ranges = []
        #: Write-op indexes (0-based, write ops only) dropped whole.
        self.dropped_flushes = set()
        #: (intended byte offset, bit) XOR flips.
        self.bit_flips = []

    # -- builders --------------------------------------------------------

    def torn_write(self, at_byte):
        """Cut the stream at ``at_byte`` (an arbitrary offset: mid
        frame, mid header, mid footer); everything after is lost."""
        at_byte = int(at_byte)
        if at_byte < 0:
            raise ValueError("torn_write offset must be >= 0")
        if self.torn_at is None or at_byte < self.torn_at:
            self.torn_at = at_byte
        return self

    def short_write(self, at_byte, drop_bytes):
        """Lose ``drop_bytes`` intended bytes starting at ``at_byte``;
        the stream continues afterwards (a partially performed write)."""
        at_byte, drop_bytes = int(at_byte), int(drop_bytes)
        if at_byte < 0 or drop_bytes <= 0:
            raise ValueError("short_write needs offset >= 0, drop > 0")
        self.lost_ranges.append((at_byte, at_byte + drop_bytes))
        return self

    def drop_flush(self, nth_write):
        """Drop the ``nth_write``-th write op entirely (0-based count
        over write ops): one whole flush acknowledged but never
        performed."""
        self.dropped_flushes.add(int(nth_write))
        return self

    def bit_flip(self, at_byte, bit=None):
        """Flip one bit of the intended byte at ``at_byte`` (rot as the
        data passes to the medium).  ``bit`` defaults to a seed-chosen
        position."""
        if bit is None:
            bit = self._rng.randrange(8)
        self.bit_flips.append((int(at_byte), int(bit) & 7))
        return self

    def scatter_bit_flips(self, count, max_byte):
        """``count`` seed-chosen flips uniform over the first
        ``max_byte`` intended bytes."""
        for __ in range(int(count)):
            self.bit_flips.append(
                (self._rng.randrange(int(max_byte)), self._rng.randrange(8))
            )
        return self

    def describe(self):
        parts = []
        for nth in sorted(self.dropped_flushes):
            parts.append("drop_flush(#{0})".format(nth))
        for start, end in sorted(self.lost_ranges):
            parts.append("short_write({0}..{1})".format(start, end))
        for at_byte, bit in sorted(self.bit_flips):
            parts.append("bit_flip({0}:{1})".format(at_byte, bit))
        if self.torn_at is not None:
            parts.append("torn_write(@{0})".format(self.torn_at))
        return parts


class FaultyWriter:
    """Wrap a :class:`StoreWriter` (or anything with ``pending_ops``)
    so its queued driver ops emerge damaged per a
    :class:`StorageFaultPlan`.

    The wrapper is a transparent proxy -- ``append`` / ``sync`` /
    ``close`` / attribute access all reach the inner writer -- except
    for :meth:`pending_ops`, which transforms the op stream.  Use it in
    place of the writer with any flush driver::

        faulty = FaultyWriter(writer, plan)
        ...
        flush_to_files(faulty)          # or flush_to_fs / collect_ops
        yield from flush_to_guest(sys, faulty)

    ``bytes_intended`` counts the stream position (what the writer
    believed it durably wrote); ``bytes_delivered`` counts what the
    medium actually kept; ``applied`` logs each fault as it fires, in
    order, for determinism assertions.
    """

    def __init__(self, writer, plan):
        self._writer = writer
        self.plan = plan
        self.bytes_intended = 0
        self.bytes_delivered = 0
        self.write_ops_seen = 0
        self.dead = False
        #: Human-readable log of faults actually applied, in order.
        self.applied = []

    def __getattr__(self, name):
        return getattr(self._writer, name)

    # ------------------------------------------------------------------

    def pending_ops(self):
        ops = self._writer.pending_ops()
        if self.dead:
            # The medium died at the torn-write cut: later ops are
            # consumed (the writer keeps believing its writes succeed)
            # but nothing reaches the store.
            return []
        out = []
        for op in ops:
            if op[0] != "write":
                out.append(op)
                continue
            survived = self._transform_write(op[1], op[2])
            if survived:
                out.append(("write", op[1], survived))
            if self.dead:
                break
        return out

    def _transform_write(self, path, data):
        plan = self.plan
        start = self.bytes_intended
        end = start + len(data)
        self.bytes_intended = end
        index = self.write_ops_seen
        self.write_ops_seen += 1
        if index in plan.dropped_flushes:
            self.applied.append(
                "drop_flush #{0} ({1} bytes, {2})".format(index, len(data), path)
            )
            return b""
        buf = bytearray(data)
        for at_byte, bit in plan.bit_flips:
            if start <= at_byte < end:
                buf[at_byte - start] ^= 1 << bit
                self.applied.append(
                    "bit_flip byte {0} bit {1} ({2})".format(at_byte, bit, path)
                )
        # Short writes: drop intended ranges (highest first, so earlier
        # deletions do not shift later ones).
        cuts = sorted(
            (
                (max(range_start, start), min(range_end, end))
                for range_start, range_end in plan.lost_ranges
            ),
            reverse=True,
        )
        for cut_start, cut_end in cuts:
            if cut_start >= cut_end:
                continue
            del buf[cut_start - start : cut_end - start]
            self.applied.append(
                "short_write lost {0}..{1} ({2})".format(cut_start, cut_end, path)
            )
        if plan.torn_at is not None and plan.torn_at < end:
            keep = max(0, plan.torn_at - start)
            # Deletions above shifted offsets; a torn write is a crash,
            # so the interplay hardly matters in practice -- cut on the
            # intended offset within what survived.
            del buf[keep:]
            self.dead = True
            self.applied.append(
                "torn_write at byte {0} ({1})".format(plan.torn_at, path)
            )
        self.bytes_delivered += len(buf)
        return bytes(buf)


# ----------------------------------------------------------------------
# Medium-level faults (the simulated filesystem), used by FaultInjector
# ----------------------------------------------------------------------


def matching_paths(fs, path_prefix):
    return [path for path in fs.paths() if path.startswith(path_prefix)]


def truncate_tail(fs, path_prefix, drop_bytes):
    """Materialize a torn write after the fact: drop the last
    ``drop_bytes`` bytes of the newest matching file (paths sort in
    segment order).  Returns a description or None when nothing
    matched."""
    paths = matching_paths(fs, path_prefix)
    if not paths:
        return None
    path = paths[-1]
    node = fs.node(path)
    keep = max(0, len(node.data) - int(drop_bytes))
    lost = len(node.data) - keep
    del node.data[keep:]
    return "truncated {0} by {1} byte(s)".format(path, lost)


def rot_bits(fs, path_prefix, flips, seed):
    """Flip ``flips`` seed-chosen bits across the bytes of every
    matching file (post-crash bit rot on the at-rest store).  Returns a
    description or None when nothing matched."""
    paths = matching_paths(fs, path_prefix)
    total = sum(len(fs.node(path).data) for path in paths)
    if not total or not flips:
        return None
    rng = random.Random(seed)
    flipped = []
    for __ in range(int(flips)):
        target = rng.randrange(total)
        for path in paths:
            node = fs.node(path)
            if target < len(node.data):
                node.data[target] ^= 1 << rng.randrange(8)
                flipped.append("{0}@{1}".format(path, target))
                break
            target -= len(node.data)
    return "flipped {0} bit(s): {1}".format(len(flipped), ", ".join(flipped))


def arm_drop_next_write(fs, path_prefix):
    """One-shot medium lie: the next guest write to a matching path is
    acknowledged but never performed (a dropped sync).  Installs a
    :attr:`FileSystem.write_fault` hook that disarms itself after
    firing."""

    def write_fault(path, data):
        if not path.startswith(path_prefix):
            return data
        fs.write_fault = None  # one-shot
        return b""

    fs.write_fault = write_fault
    return "armed drop-next-write on {0}*".format(path_prefix)
