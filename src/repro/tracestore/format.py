"""The on-disk trace-store format: segments, frames, index footers.

A *store* is a family of fixed-capacity segment files sharing a base
path::

    /usr/tmp/f1.store.seg00000      (sealed: footer + trailer present)
    /usr/tmp/f1.store.seg00001      (sealed)
    /usr/tmp/f1.store.seg00002      (open tail: recovered by scanning)

Each segment is::

    +--------+----------------------------+--------+---------+
    | header |  record frames (appended)  | footer | trailer |
    +--------+----------------------------+--------+---------+

- header (8 bytes): magic "RTS1", version u16, flags u16 (bit 0:
  the data region is one zlib-compressed blob, see below);
- frame (version 2, the current format): payload length u32, discard
  mask u32, crc32 u32, payload -- the CRC covers length, mask, *and*
  payload, so a flipped bit anywhere in the frame (including its own
  length field) is detectable; the payload is the record's Appendix-A
  wire message, byte for byte;
- frame (version 1, still readable): payload length u32, discard mask
  u32, payload -- no per-frame CRC; only the footer blob was
  checksummed, so v1 data-region corruption is detectable only where
  the payload fails structural validation;
- footer: a JSON index of the segment (record count, min/max header
  cpuTime, per-machine / per-(machine,pid) / per-event-type record
  counts, per-event first/last byte offsets, the host-name map used to
  display NAME fields);
- trailer (12 bytes): footer length u32, footer crc32 u32, magic
  "RTSX".

Only sealed segments carry a footer; a segment interrupted by a crash
simply ends mid-frame and is recovered by scanning frames until the
bytes run out (record framing is self-delimiting, so everything the
writer flushed survives).  The footer lets a reader skip a whole
segment when a predicate cannot match any record in it -- that is the
predicate pushdown the streaming analyses rely on.

Because a sealed segment always ends exactly on a frame boundary, a
frame that overruns the sealed data region is corruption, not a torn
tail; only *unsealed* segments may legitimately end mid-frame.
:func:`iter_frames` enforces that distinction, and
:func:`salvage_frames` resynchronizes past damage to the next frame
whose CRC verifies (v2) or whose payload is a structurally plausible
meter message (v1), reporting every skipped byte range.

A sealed segment's footer also carries ``data_crc32``: one CRC32 over
the whole frame region as written.  One region checksum pass (C speed)
replaces per-frame CRC verification on the batch scan's fast lane; a
mismatch drops the segment back to the per-frame walk, which localizes
the damage exactly as before.

Compressed segments (header flag bit 0x1, ``trace pack --compress``):
the data region on disk is a single zlib blob holding the frame bytes
that would otherwise sit between header and footer.  The footer's
``data_start``/``data_end`` describe the *uncompressed* frame region
(in the same coordinates as an uncompressed segment: frames start
right after the 8-byte header), ``raw_bytes``/``stored_bytes`` give
both sizes, and ``data_crc32`` covers the uncompressed frame bytes.
Predicate pushdown skips a compressed segment without ever inflating
it.  Compression buffers a whole segment in memory until seal, so it
trades the writer's bounded crash-loss guarantee for size -- it is for
offline packing, not live filters.

The discard mask is a bitmap over :func:`repro.metering.messages.
record_fields`: bit *i* set means field *i* was discarded by a
reduction rule (Figure 3.4's ``#`` prefix).  Masked field bytes are
zeroed in the stored payload and the field is dropped again on decode,
so a store round-trips exactly what the text log would have kept.
"""

import json
import struct
import zlib

from repro.metering.messages import (
    EVENT_NAMES,
    HEADER_BYTES,
    field_layout,
    is_batch_marker,
    message_length,
    record_fields,
)
from repro.tracestore.errors import BadSegmentHeaderError, CorruptFrameError

SEGMENT_MAGIC = b"RTS1"
TRAILER_MAGIC = b"RTSX"
#: Current segment format (v2: per-frame CRC32).
FORMAT_VERSION = 2
#: The pre-CRC format; still fully readable.
FORMAT_VERSION_V1 = 1
SUPPORTED_VERSIONS = (FORMAT_VERSION_V1, FORMAT_VERSION)

#: Header flag bit: the data region is one zlib-compressed blob.
FLAG_COMPRESSED = 0x1

_HEADER_STRUCT = struct.Struct(">4sHH")
SEGMENT_HEADER_BYTES = _HEADER_STRUCT.size  # 8
_FRAME_STRUCT_V1 = struct.Struct(">II")
_FRAME_STRUCT_V2 = struct.Struct(">III")
FRAME_OVERHEAD_BYTES_V1 = _FRAME_STRUCT_V1.size  # 8
FRAME_OVERHEAD_BYTES = _FRAME_STRUCT_V2.size  # 12 (current format)
_TRAILER_STRUCT = struct.Struct(">II4s")
TRAILER_BYTES = _TRAILER_STRUCT.size  # 12

#: Default segment capacity (data bytes before the segment is sealed).
DEFAULT_SEGMENT_BYTES = 64 * 1024

#: Upper bound a salvage scan accepts for a candidate frame's payload
#: length: real payloads are whole meter messages (tens of bytes), so
#: anything bigger than a segment is noise, not a frame.
MAX_SALVAGE_PAYLOAD = 1 << 20

#: Wire offsets of the maskable header fields (size and traceType are
#: never zeroed: they carry the framing and the record's identity).
_MASKABLE_HEADER_OFFSETS = {
    "machine": (4, 2),
    "cpuTime": (8, 4),
    "procTime": (16, 4),
}


def segment_header(version=FORMAT_VERSION, flags=0):
    return _HEADER_STRUCT.pack(SEGMENT_MAGIC, version, flags)


def segment_flags(data):
    """The header flag word (0 when the header is unreadable)."""
    if len(data) < SEGMENT_HEADER_BYTES:
        return 0
    return _HEADER_STRUCT.unpack_from(data, 0)[2]


def parse_segment_header(data, path=None):
    """Validate a segment's first bytes; returns the format version.
    Raises :class:`BadSegmentHeaderError` (a ``ValueError``)."""
    if len(data) < SEGMENT_HEADER_BYTES:
        raise BadSegmentHeaderError(
            "short segment: %d bytes" % len(data), path=path
        )
    magic, version, __ = _HEADER_STRUCT.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        raise BadSegmentHeaderError(
            "not a trace-store segment (magic %r)" % magic,
            path=path,
            foreign=True,
        )
    if version not in SUPPORTED_VERSIONS:
        raise BadSegmentHeaderError(
            "unsupported segment version %d" % version, path=path
        )
    flags = _HEADER_STRUCT.unpack_from(data, 0)[2]
    if flags & FLAG_COMPRESSED and version == FORMAT_VERSION_V1:
        raise BadSegmentHeaderError(
            "compressed data region requires format v2", path=path
        )
    return version


# ----------------------------------------------------------------------
# Record frames
# ----------------------------------------------------------------------


def frame_overhead(version=FORMAT_VERSION):
    return FRAME_OVERHEAD_BYTES_V1 if version == FORMAT_VERSION_V1 else FRAME_OVERHEAD_BYTES


def frame_crc(length, mask, payload):
    """The v2 per-frame checksum: covers length, mask, and payload."""
    head = _FRAME_STRUCT_V1.pack(length, mask)
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


def encode_frame(payload, mask=0, version=FORMAT_VERSION):
    if version == FORMAT_VERSION_V1:
        return _FRAME_STRUCT_V1.pack(len(payload), mask) + payload
    return (
        _FRAME_STRUCT_V2.pack(len(payload), mask, frame_crc(len(payload), mask, payload))
        + payload
    )


def plausible_record_payload(payload):
    """Structural validity check used to resynchronize v1 salvage scans
    (v2 frames carry a CRC and need no heuristics): the payload must be
    a whole Appendix-A meter message or a batch marker."""
    if len(payload) < HEADER_BYTES:
        return False
    if is_batch_marker(payload):
        return True
    size, trace_type = struct.unpack(">i16xi", payload[:HEADER_BYTES])
    event = EVENT_NAMES.get(trace_type)
    if event is None or size != len(payload):
        return False
    return message_length(event) == len(payload)


def _read_frame(data, offset, end, version):
    """Parse one frame at ``offset``; returns (mask, payload, next
    offset, error) where error is None, "torn" (incomplete tail bytes)
    or "crc" (v2 checksum mismatch)."""
    overhead = frame_overhead(version)
    if offset + overhead > end:
        return None, None, end, "torn"
    if version == FORMAT_VERSION_V1:
        length, mask = _FRAME_STRUCT_V1.unpack_from(data, offset)
        crc = None
    else:
        length, mask, crc = _FRAME_STRUCT_V2.unpack_from(data, offset)
    body_start = offset + overhead
    if body_start + length > end:
        return None, None, end, "torn"
    payload = bytes(data[body_start : body_start + length])
    if crc is not None and frame_crc(length, mask, payload) != crc:
        return None, None, body_start + length, "crc"
    return mask, payload, body_start + length, None


def iter_frames(data, start, end, version=FORMAT_VERSION, sealed=False,
                path=None):
    """Yield (offset, mask, payload) for each complete frame in
    ``data[start:end]``.

    A truncated trailing frame normally ends the iteration (a crash
    mid-append is expected on unsealed tails); with ``sealed=True`` the
    region is known to end on a frame boundary, so a trailing overrun
    is corruption and raises.  A v2 frame whose CRC does not match its
    bytes always raises :class:`CorruptFrameError`.
    """
    offset = start
    while offset < end:
        mask, payload, next_offset, error = _read_frame(data, offset, end, version)
        if error == "torn":
            if sealed and offset + frame_overhead(version) <= end:
                raise CorruptFrameError(
                    "frame at offset %d overruns the sealed data region"
                    % offset,
                    path=path,
                    offset=offset,
                )
            break  # torn tail frame: the writer died mid-append
        if error == "crc":
            raise CorruptFrameError(
                "frame CRC mismatch at offset %d" % offset,
                path=path,
                offset=offset,
            )
        yield offset, mask, payload
        offset = next_offset


def salvage_frames(data, start, end, version=FORMAT_VERSION):
    """Best-effort frame walk that survives data-region corruption.

    Yields ``("frame", offset, mask, payload)`` for every verifiable
    frame, ``("gap", gap_start, gap_end)`` for every byte range that
    had to be quarantined to reach the next verifiable frame, and at
    most one trailing ``("torn", tail_start, end)`` when the region
    ends with an ordinary torn tail frame (crash mid-append: expected
    loss, not corruption).  After a bad frame, the scan resynchronizes
    by sliding forward one byte at a time until a candidate frame
    verifies (v2: CRC match; v1: payload passes
    :func:`plausible_record_payload`).  A trailing region with no
    verifiable frame is quarantined in full.
    """
    offset = start
    gap_start = None
    while offset < end:
        mask, payload, next_offset, error = _read_frame(data, offset, end, version)
        ok = error is None
        if ok and version == FORMAT_VERSION_V1:
            ok = plausible_record_payload(payload)
        if ok:
            if gap_start is not None:
                yield "gap", gap_start, offset
                gap_start = None
            yield "frame", offset, mask, payload
            offset = next_offset
            continue
        if error == "torn" and gap_start is None:
            if offset + 4 > min(end, len(data)):
                candidate_length = None  # too short even for a length
            else:
                candidate_length = struct.unpack_from(">I", data, offset)[0]
            if candidate_length is None or candidate_length <= MAX_SALVAGE_PAYLOAD:
                # Straight out of valid frames into an incomplete one
                # with a plausible length: a torn tail, not noise.
                yield "torn", offset, end
                return
        if gap_start is None:
            gap_start = offset
        offset += 1
    if gap_start is not None and gap_start < end:
        yield "gap", gap_start, end


# ----------------------------------------------------------------------
# Discard masks
# ----------------------------------------------------------------------


def discard_mask(event, missing_fields):
    """Bitmap over record_fields(event) marking the discarded ones."""
    mask = 0
    for i, name in enumerate(record_fields(event)):
        if name in missing_fields:
            mask |= 1 << i
    return mask


def masked_fields(event, mask):
    """The field names a mask discards."""
    if not mask:
        return []
    return [
        name
        for i, name in enumerate(record_fields(event))
        if mask & (1 << i)
    ]


def zero_masked_bytes(raw, event, mask):
    """Zero the wire bytes of every masked field (reduction really does
    remove the data, not just the key).  size and traceType survive so
    the payload stays a decodable meter message."""
    if not mask:
        return raw
    buf = bytearray(raw)
    for i, name in enumerate(record_fields(event)):
        if not mask & (1 << i):
            continue
        span = _MASKABLE_HEADER_OFFSETS.get(name)
        if span is not None:
            offset, length = span
            buf[offset : offset + length] = b"\x00" * length
            continue
        for field_name, body_offset, length, __ in field_layout(event):
            if field_name == name:
                offset = HEADER_BYTES + body_offset
                buf[offset : offset + length] = b"\x00" * length
                break
    return bytes(buf)


# ----------------------------------------------------------------------
# Footers
# ----------------------------------------------------------------------


class SegmentStats:
    """Accumulates the footer index while a segment is written."""

    def __init__(self, host_names=None):
        self.records = 0
        self.t_min = None
        self.t_max = None
        self.machines = {}
        self.pids = {}
        self.events = {}
        self.event_offsets = {}
        self.host_names = dict(host_names or {})

    def add(self, event, machine, pid, cpu_time, offset):
        self.records += 1
        if self.t_min is None or cpu_time < self.t_min:
            self.t_min = cpu_time
        if self.t_max is None or cpu_time > self.t_max:
            self.t_max = cpu_time
        self.machines[machine] = self.machines.get(machine, 0) + 1
        key = "{0}:{1}".format(machine, pid)
        self.pids[key] = self.pids.get(key, 0) + 1
        self.events[event] = self.events.get(event, 0) + 1
        span = self.event_offsets.get(event)
        if span is None:
            self.event_offsets[event] = [offset, offset]
        else:
            span[1] = offset

    def footer(self, data_start, data_end, version=FORMAT_VERSION,
               data_crc32=None, stored_bytes=None):
        footer = {
            "version": version,
            "records": self.records,
            "data_start": data_start,
            "data_end": data_end,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "machines": {str(m): n for m, n in self.machines.items()},
            "pids": self.pids,
            "events": self.events,
            "event_offsets": self.event_offsets,
            "hosts": {str(i): name for i, name in self.host_names.items()},
        }
        if data_crc32 is not None:
            footer["data_crc32"] = data_crc32
        if stored_bytes is not None:
            footer["compressed"] = True
            footer["raw_bytes"] = data_end - data_start
            footer["stored_bytes"] = stored_bytes
        return footer


def encode_footer(footer):
    """Footer JSON plus the fixed trailer that locates it from EOF."""
    blob = json.dumps(footer, sort_keys=True).encode("ascii")
    trailer = _TRAILER_STRUCT.pack(
        len(blob), zlib.crc32(blob) & 0xFFFFFFFF, TRAILER_MAGIC
    )
    return blob + trailer


def parse_footer(data):
    """Extract the footer of a sealed segment; None when the segment is
    unsealed (no trailer) or the trailer/footer bytes are damaged."""
    if len(data) < SEGMENT_HEADER_BYTES + TRAILER_BYTES:
        return None
    length, crc, magic = _TRAILER_STRUCT.unpack_from(data, len(data) - TRAILER_BYTES)
    if magic != TRAILER_MAGIC:
        return None
    start = len(data) - TRAILER_BYTES - length
    if start < SEGMENT_HEADER_BYTES:
        return None
    blob = bytes(data[start : start + length])
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        return None
    try:
        footer = json.loads(blob.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        return None
    if footer.get("version") not in SUPPORTED_VERSIONS:
        return None
    return footer


def compress_region(frame_bytes, level=6):
    """The on-disk blob for a compressed segment's data region."""
    return zlib.compress(frame_bytes, level)


def decompress_region(blob, raw_bytes=None):
    """Inflate a compressed segment's data region.

    With ``raw_bytes`` (from the footer of a sealed segment) the
    output size is checked; a short or oversized result raises
    :class:`CorruptFrameError`.  Without it (an unsealed compressed
    segment: the writer died before seal, the blob may be truncated)
    the decompressor keeps whatever prefix inflates cleanly -- the
    frame walk then recovers records exactly as from a torn plain
    tail.
    """
    if raw_bytes is None:
        inflater = zlib.decompressobj()
        pieces = []
        for start in range(0, len(blob), 4096):
            try:
                pieces.append(inflater.decompress(bytes(blob[start : start + 4096])))
            except zlib.error:
                break  # inflated prefix is good; the rest is torn
        return b"".join(pieces)
    try:
        raw = zlib.decompress(blob)
    except zlib.error as err:
        raise CorruptFrameError("compressed data region: %s" % err)
    if len(raw) != raw_bytes:
        raise CorruptFrameError(
            "compressed data region inflated to %d bytes, footer says %d"
            % (len(raw), raw_bytes)
        )
    return raw


def footer_matches(footer, machines=None, pids=None, events=None,
                   t_min=None, t_max=None):
    """Can any record in this sealed segment satisfy the predicate?
    False means the whole segment is safely skippable (pushdown)."""
    if footer["records"] == 0:
        return False
    if t_min is not None and footer["t_max"] is not None and footer["t_max"] < t_min:
        return False
    if t_max is not None and footer["t_min"] is not None and footer["t_min"] > t_max:
        return False
    if machines is not None:
        if not any(str(m) in footer["machines"] for m in machines):
            return False
    if pids is not None:
        keys = {"{0}:{1}".format(m, p) for m, p in pids}
        if not keys & set(footer["pids"]):
            return False
    if events is not None:
        if not any(e in footer["events"] for e in events):
            return False
    return True
