"""The standard filter (Section 3.4).

"After receiving a message from standard input, the default filter
performs selection and reduction operations on the event records
received.  It uses event record descriptions and selection rules to
specify the criteria for data selection and reduction."

Guest program arguments::

    argv = [filtername, log_path, descriptions_path, templates_path]

Accepted records go to the filter's log file ("A filter sends its
output to a log file located in the /usr/tmp directory.  Each filter
has its own log file.").  Two output modes, chosen by the log path's
suffix:

- ``<name>.log`` -- the paper's text mode: one line per record,
  opened in *append* mode so a filter relaunched after a daemon
  restart extends the log instead of erasing it;
- ``<name>.store`` -- the binary trace store: accepted records are
  appended in their Appendix-A wire encoding to segmented, indexed
  files (see :mod:`repro.tracestore`), which is what the streaming
  analyses and large computations want.

The log directory defaults to the paper's ``/usr/tmp`` but is a per-
session setting (carried here through the log path argument), so
concurrent sessions on one machine keep separate logs.
"""

from repro import guestlib
from repro.filtering.descriptions import parse_descriptions
from repro.filtering.filterlib import MeterInbox, build_record_screen
from repro.filtering.records import format_record, parse_trace
from repro.filtering.rules import RuleSet, parse_rules
from repro.kernel.errno import SyscallError
from repro.metering.messages import (
    is_batch_marker,
    parse_batch_marker,
    record_fields,
)
from repro.streaming import protocol as streamproto
from repro.streaming.engine import StreamEngine, serve_query
from repro.tracestore import (
    StoreWriter,
    discard_mask,
    flush_to_guest,
    next_segment_index,
    zero_masked_bytes,
)
from repro.tracestore.format import masked_fields
from repro.tracestore.reader import Segment
from repro.tracestore.writer import segment_path

PROGRAM_NAME = "filter"
DEFAULT_LOG_DIRECTORY = "/usr/tmp"
#: Backward-compatible module alias (prefer the per-session setting).
LOG_DIRECTORY = DEFAULT_LOG_DIRECTORY

TEXT_SUFFIX = ".log"
STORE_SUFFIX = ".store"

LOG_FORMAT_TEXT = "text"
LOG_FORMAT_STORE = "store"

#: Text-mode log buffering: accepted lines accumulate across wait
#: batches and hit the file in one write when the buffer reaches this
#: many bytes or the meter stream goes idle for the flush interval.
LOG_FLUSH_BYTES = 32 * 1024
LOG_IDLE_FLUSH_MS = 5.0


def log_path_for(filtername, directory=None, log_format=LOG_FORMAT_TEXT):
    suffix = STORE_SUFFIX if log_format == LOG_FORMAT_STORE else TEXT_SUFFIX
    return "{0}/{1}{2}".format(directory or LOG_DIRECTORY, filtername, suffix)


# ----------------------------------------------------------------------
# Batch commit protocol
# ----------------------------------------------------------------------
#
# The kernel meter trails every flushed batch with a sequence marker
# (machine, pid, seq) and retransmits its resend window when a filter
# reconnects.  The filter holds a batch's accepted records in memory
# until the marker arrives, then commits records *and* a durable copy
# of the marker to the log in one atomic step (one text write / one
# frame run ending in a marker frame).  A relaunched filter recovers
# the committed sequence numbers from its own log and rejects
# retransmissions of batches it already has -- at-least-once delivery
# on the wire, exactly-once records in the log.


def format_batch_line(machine, pid, seq):
    """The durable text form of a batch-commit marker."""
    return "#batch {0} {1} {2}".format(machine, pid, seq)


def _parse_batch_line(line):
    parts = line.split()
    if len(parts) != 4 or parts[0] != "#batch":
        return None
    try:
        return int(parts[1]), int(parts[2]), int(parts[3])
    except ValueError:
        return None


def recover_text_seqs(text):
    """(machine, pid) -> last committed batch seq, from a text log."""
    recovered = {}
    for line in text.splitlines():
        if not line.startswith("#batch"):
            continue
        parsed = _parse_batch_line(line)
        if parsed is None:
            continue
        machine, pid, seq = parsed
        key = (machine, pid)
        if seq > recovered.get(key, -1):
            recovered[key] = seq
    return recovered


def recover_store_seqs(sys, base, on_record=None):
    """(machine, pid) -> last committed batch seq, from marker frames
    in a store's existing segments -- including an unsealed tail, which
    is recovered by frame scan (a marker on disk means its whole batch
    precedes it on disk).

    ``on_record(mask, payload)``, if given, sees every committed
    non-marker frame in commit order along the way -- how a relaunched
    filter replays its log into a fresh streaming engine in the same
    single pass."""
    recovered = {}
    index = 0
    while True:
        data = yield from guestlib.read_whole_bytes(
            sys, segment_path(base, index)
        )
        if data is None:
            return recovered
        index += 1
        segment = Segment("", data)
        if not segment.valid:
            continue  # damaged header: nothing recoverable here
        frames, __gaps = segment.committed_salvage()
        for __, mask, payload in frames:
            marker = parse_batch_marker(payload)
            if marker is None:
                if on_record is not None:
                    on_record(mask, payload)
                continue
            machine, pid, seq = marker
            key = (machine, pid)
            if seq > recovered.get(key, -1):
                recovered[key] = seq


def standard_filter(sys, argv):
    """Guest main for the standard filter."""
    filtername = argv[0] if len(argv) > 0 else "filter"
    log_path = argv[1] if len(argv) > 1 else log_path_for(filtername)
    descriptions_path = argv[2] if len(argv) > 2 else "descriptions"
    templates_path = argv[3] if len(argv) > 3 else "templates"

    descriptions_text = yield from guestlib.read_whole_file(sys, descriptions_path)
    descriptions = parse_descriptions(descriptions_text)
    templates_text = yield from guestlib.read_optional_file(sys, templates_path)
    rules = parse_rules(templates_text) if templates_text is not None else RuleSet([])
    host_names = yield sys.hosttable()
    # With the shipped (Appendix-A) descriptions, the rule set compiles
    # to a columnar screen that drops unselectable messages before any
    # record decoding; it never rejects anything rules.apply would
    # accept, so output is identical either way (see filterlib).  The
    # host table lets NAME conditions screen on the wire bytes too.
    screen = build_record_screen(rules, descriptions, host_names)

    store_mode = log_path.endswith(STORE_SUFFIX)
    # The live analysis engine folds exactly the records this filter
    # commits, in commit order.  A relaunched incarnation replays the
    # previous incarnation's committed log into a fresh engine before
    # accepting new traffic, and the inbox's batch dedup rejects
    # retransmissions of replayed batches -- so online answers always
    # equal a post-mortem fold over the finished log (the twin oracle).
    engine = StreamEngine()
    if store_mode:
        # A relaunched filter continues after the segments an earlier
        # incarnation flushed; it never rewrites them.  Sequence
        # recovery scans those segments (the unsealed tail included)
        # for committed batch markers, and auto_seal is off so a
        # segment never seals inside a half-committed batch.
        start = yield from next_segment_index(sys, log_path)

        def replay_frame(mask, payload):
            try:
                record = descriptions.decode_message(payload, host_names)
            except (ValueError, KeyError):
                return  # mirror the live path: malformed frames drop
            if mask:
                for name in masked_fields(record["event"], mask):
                    record.pop(name, None)
            engine.update(record)

        recovered = yield from recover_store_seqs(
            sys, log_path, on_record=replay_frame
        )
        writer = StoreWriter(
            log_path, start_index=start, host_names=host_names, auto_seal=False
        )
        log_fd = None
    else:
        writer = None
        existing = yield from guestlib.read_optional_file(sys, log_path)
        recovered = recover_text_seqs(existing) if existing else {}
        if existing:
            for record in parse_trace(existing):
                engine.update(record)
        log_fd = yield sys.open(log_path, "a")

    inbox = MeterInbox(recovered_seqs=recovered)
    #: (machine, pid) -> the in-flight batch's accepted items; the
    #: last element of every item is the saved record dict, fed to the
    #: streaming engine at commit.  Committed or discarded when the
    #: batch's trailing marker arrives.
    open_batches = {}
    pending = []  # committed text lines buffered across wait batches
    pending_bytes = 0
    while True:
        # While lines are buffered (or batches are open on a markerless
        # stream), wake after a short idle gap so the log never lags
        # the stream by more than the flush interval.
        timeout_ms = LOG_IDLE_FLUSH_MS if (pending or open_batches) else None
        raw_messages = yield from inbox.wait(sys, timeout_ms=timeout_ms)
        lines = []
        for raw in raw_messages:
            if is_batch_marker(raw):
                marker = parse_batch_marker(raw)
                if marker is None:
                    continue
                machine_id, pid, seq = marker
                batch = open_batches.pop((machine_id, pid), [])
                if not inbox.accept_batch(machine_id, pid, seq):
                    continue  # retransmitted batch already in the log
                if store_mode:
                    for payload, mask, __ in batch:
                        writer.append(payload, mask)
                    writer.append_marker(raw)
                    writer.maybe_seal()
                else:
                    lines.extend(item[0] for item in batch)
                    lines.append(format_batch_line(machine_id, pid, seq))
                for item in batch:
                    engine.update(item[-1])
                continue
            if screen is not None and not screen(raw):
                continue  # provably unselectable: skip the decode
            try:
                record = descriptions.decode_message(raw, host_names)
            except (ValueError, KeyError):
                # Anything may connect to the meter port; a malformed
                # message must not take the filter down -- drop it.
                continue
            saved = rules.apply(record)
            if saved is None:
                continue
            if store_mode:
                event = record["event"]
                mask = discard_mask(
                    event,
                    {name for name in record_fields(event) if name not in saved},
                )
                item = (zero_masked_bytes(raw, event, mask), mask, saved)
            else:
                order = descriptions.field_order(record["event"])
                item = (format_record(saved, order), saved)
            key = (record["machine"], record.get("pid", 0))
            open_batches.setdefault(key, []).append(item)
        for query_fd, raw_query in inbox.take_queries():
            # A live-analysis query on the meter port: answer from the
            # engine on the same connection, one JSON frame.
            reply = serve_query(engine, streamproto.parse_query(raw_query))
            try:
                yield from guestlib.send_frame(
                    sys, query_fd, streamproto.encode_reply(reply)
                )
            except SyscallError:
                pass  # asker gone; engine state is unaffected
        if not raw_messages and open_batches:
            # Idle with batches still open: a markerless sender (tests,
            # hand-built meter streams).  Flush what we have without
            # commit markers, preserving the pre-marker behaviour.
            for key in list(open_batches):
                batch = open_batches.pop(key)
                if store_mode:
                    for payload, mask, __ in batch:
                        writer.append(payload, mask)
                    writer.maybe_seal()
                else:
                    lines.extend(item[0] for item in batch)
                for item in batch:
                    engine.update(item[-1])
        if store_mode:
            # Bounded buffering: whatever this batch left in the
            # writer's buffer goes to disk before we block again.
            writer.sync()
            yield from flush_to_guest(sys, writer)
            continue
        if lines:
            pending.extend(lines)
            pending_bytes += sum(len(line) + 1 for line in lines)
        # One write per committed batch train: flush when the stream
        # pauses (idle timeout, connection close) or the buffer fills.
        # The whole of ``pending`` goes in one atomic write, so a
        # batch's records and its marker line always land together.
        if pending and (not raw_messages or pending_bytes >= LOG_FLUSH_BYTES):
            data = ("\n".join(pending) + "\n").encode("ascii")
            pending = []
            pending_bytes = 0
            yield sys.write(log_fd, data)
        # The filter runs until the controller removes it (die).
