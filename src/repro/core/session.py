"""MeasurementSession: stand up and drive the measurement system.

Builds, on an existing :class:`~repro.core.cluster.Cluster`:

- a meterdaemon (root) on every machine (Section 3.5.1: "There must be
  a meterdaemon on each machine that supports the measurement system");
- the standard filter executable plus default ``descriptions`` and
  ``templates`` files on every machine;
- a controller process on the chosen machine, attached to a terminal.

Commands are typed with :meth:`command`, which returns the controller
output produced for that command; :meth:`transcript` returns the whole
session, prompt included, in the shape of the paper's Appendix B.
"""

from repro.controller.control import PROMPT, controller
from repro.daemon.meterdaemon import meterdaemon
from repro.filtering.descriptions import default_descriptions_text
from repro.filtering.records import parse_trace
from repro.filtering.rules import DEFAULT_TEMPLATES_TEXT
from repro.filtering.standard import (
    DEFAULT_LOG_DIRECTORY,
    LOG_FORMAT_STORE,
    LOG_FORMAT_TEXT,
    log_path_for,
    standard_filter,
)
from repro.kernel import defs
from repro.kernel.tty import Terminal
from repro.tracestore import StoreReader
from repro.tracestore.writer import segment_path

DEFAULT_UID = 100


class MeasurementSession:
    """One user's session with the measurement tools."""

    def __init__(
        self,
        cluster,
        control_machine=None,
        uid=DEFAULT_UID,
        install=True,
        start=True,
        log_directory=None,
        log_format=LOG_FORMAT_TEXT,
    ):
        self.cluster = cluster
        self.uid = uid
        #: Where this session's filters log, and in which format.  A
        #: directory per session keeps concurrent sessions on the same
        #: machines from colliding on /usr/tmp/<filter>.log.
        self.log_directory = log_directory or DEFAULT_LOG_DIRECTORY
        if log_format not in (LOG_FORMAT_TEXT, LOG_FORMAT_STORE):
            raise ValueError("unknown log format %r" % (log_format,))
        self.log_format = log_format
        names = cluster.machine_names()
        self.control_machine = control_machine or names[-1]
        self.daemons = {}
        self.controller_proc = None
        self.tty = Terminal()
        self._transcript_parts = []
        self._prompts_seen = 0
        self.tty.on_output = self._on_tty_output
        if install:
            self.install_measurement_system()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Bring-up
    # ------------------------------------------------------------------

    def install_measurement_system(self):
        """Install the standard filter program and its data files."""
        self.cluster.registry.register("filter", standard_filter)
        self.cluster.registry.register("meterdaemon", meterdaemon)
        descriptions = default_descriptions_text()
        for machine in self.cluster.machines.values():
            machine.fs.install("filter", data="filter", mode=0o755, program="filter")
            machine.fs.install("descriptions", data=descriptions, mode=0o644)
            machine.fs.install("templates", data=DEFAULT_TEMPLATES_TEXT, mode=0o644)
            machine.accounts.add(self.uid)

    def install_program(self, name, main, machines=None, path=None):
        """Install a workload executable under its bare name, matching
        the paper's ``addprocess foo red A`` usage."""
        return self.cluster.install_program(
            name, main, machines=machines, path=path or name
        )

    def start(self):
        """Spawn daemons and the controller; run to the first prompt."""
        for name, machine in self.cluster.machines.items():
            self.daemons[name] = machine.create_process(
                main=meterdaemon, uid=0, program_name="meterdaemon"
            )
        machine = self.cluster.machine(self.control_machine)
        self.controller_proc = machine.create_process(
            main=controller,
            argv=["control", self.log_directory, self.log_format],
            uid=self.uid,
            program_name="control",
            start=False,
        )
        machine.attach_terminal(self.controller_proc, self.tty)
        machine.continue_proc(self.controller_proc)
        self._wait_for_prompts(1)

    def restart_controller(self, wait=True):
        """Kill the controller (if still alive) and start a fresh one
        on the same terminal -- the crash-recovery entry point.  The
        new controller knows nothing; type ``resume`` at its prompt to
        rebuild the session from the journal."""
        machine = self.cluster.machine(self.control_machine)
        if self.controller_alive():
            machine.post_signal(self.controller_proc, defs.SIGKILL)
        target = self._prompt_count() + 1
        self.controller_proc = machine.create_process(
            main=controller,
            argv=["control", self.log_directory, self.log_format],
            uid=self.uid,
            program_name="control",
            start=False,
        )
        machine.attach_terminal(self.controller_proc, self.tty)
        machine.continue_proc(self.controller_proc)
        if wait:
            self._wait_for_prompts(target)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def _on_tty_output(self, data):
        text = data.decode("ascii", "replace")
        self._transcript_parts.append(text)
        # The controller writes the prompt in one chunk, so chunk-wise
        # counting is exact (and O(1) per write).
        self._prompts_seen += text.count(PROMPT)

    def _prompt_count(self):
        return self._prompts_seen

    def controller_alive(self):
        return (
            self.controller_proc is not None
            and self.controller_proc.state != defs.PROC_ZOMBIE
        )

    def _wait_for_prompts(self, target, max_events=2_000_000):
        self.cluster.run_until(
            lambda: self._prompt_count() >= target or not self.controller_alive(),
            max_events=max_events,
        )

    def command(self, line, max_events=2_000_000):
        """Type one command; returns the output it produced (without
        the prompt).  Asynchronous DONE reports that arrive during the
        command are included."""
        target = self._prompt_count() + 1
        before = len("".join(self._transcript_parts))
        self.tty.push_line(line)
        self._wait_for_prompts(target, max_events=max_events)
        text = "".join(self._transcript_parts)[before:]
        # Trim the echoless input gap: output starts after our push.
        if text.endswith(PROMPT):
            text = text[: -len(PROMPT)]
        return text

    def settle(self, ms=None, max_events=2_000_000):
        """Let the cluster quiesce (or advance ``ms`` of simulated
        time): workloads finish, notifications arrive."""
        if ms is None:
            self.cluster.run(max_events=max_events)
        else:
            self.cluster.run(until_ms=self.cluster.sim.now + ms)

    def drain_output(self):
        """The whole transcript so far, compacted (DONE reports and
        all); subsequent output appends after it."""
        text = "".join(self._transcript_parts)
        self._transcript_parts = [text]
        return text

    def transcript(self):
        """The whole session so far, prompts included (Appendix B)."""
        return "".join(self._transcript_parts)

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------

    def filter_log_path(self, filtername):
        """This session's log path for a filter (text or store base)."""
        return log_path_for(filtername, self.log_directory, self.log_format)

    def find_filter_log(self, filtername):
        """Locate a filter's text log file; returns (machine, text)."""
        path = log_path_for(filtername, self.log_directory)
        for name, machine in self.cluster.machines.items():
            if machine.fs.exists(path):
                return name, bytes(machine.fs.node(path).data).decode("ascii")
        raise FileNotFoundError(path)

    def store_reader(self, filtername):
        """A :class:`StoreReader` over a filter's store segments
        (host-side shortcut, the store analogue of find_filter_log)."""
        base = log_path_for(filtername, self.log_directory, LOG_FORMAT_STORE)
        first = segment_path(base, 0)
        host_names = self.cluster.host_table.names_by_id()
        for machine in self.cluster.machines.values():
            if machine.fs.exists(first):
                return StoreReader.from_fs(machine.fs, base, host_names=host_names)
        raise FileNotFoundError(first)

    def read_trace(self, filtername):
        """A filter's accepted records as dicts, whatever the log
        format (host-side shortcut; the in-world route is getlog)."""
        if self.log_format == LOG_FORMAT_STORE:
            return self.store_reader(filtername).records()
        __, text = self.find_filter_log(filtername)
        return parse_trace(text)

    def read_controller_file(self, path):
        """Read a file from the controller's machine (e.g. a getlog
        destination file)."""
        machine = self.cluster.machine(self.control_machine)
        return bytes(machine.fs.node(path).data).decode("ascii")
