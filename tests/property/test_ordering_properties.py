"""Property tests on the happens-before analysis over randomly
generated (but causally consistent) synthetic traces."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.matching import MessageMatcher
from repro.analysis.ordering import HappensBefore
from tests.analysis.harness import TraceBuilder


@st.composite
def _random_sessions(draw):
    """A random sequence of matched message exchanges between up to 4
    processes on distinct machines, with true global times."""
    n_procs = draw(st.integers(min_value=2, max_value=4))
    procs = [(m + 1, 10 * (m + 1)) for m in range(n_procs)]
    offsets = [
        draw(st.integers(min_value=-2000, max_value=2000)) for __ in procs
    ]
    n_messages = draw(st.integers(min_value=1, max_value=12))
    exchanges = []
    for __ in range(n_messages):
        src = draw(st.integers(min_value=0, max_value=n_procs - 1))
        dst = draw(
            st.integers(min_value=0, max_value=n_procs - 1).filter(
                lambda d, s=src: d != s
            )
        )
        delay = draw(st.integers(min_value=1, max_value=10))
        size = draw(st.integers(min_value=1, max_value=500))
        exchanges.append((src, dst, delay, size))
    return procs, offsets, exchanges


def _build_trace(procs, offsets, exchanges):
    """Each exchange is a fresh datagram; sends happen at increasing
    true times, receives after the delay."""
    builder = TraceBuilder()
    # Teach host-id mapping: one connect per process.
    for (machine, pid), __offset in zip(procs, offsets):
        builder.connect(
            machine,
            pid,
            0,
            sock=1,
            sock_name="inet:m{0}:1".format(machine),
            peer_name="inet:m0:9",
        )
    events = []  # (true time, kind, ...)
    t = 10
    for src, dst, delay, size in exchanges:
        events.append((t, "send", src, dst, size))
        events.append((t + delay, "recv", src, dst, size))
        t += 3
    events.sort(key=lambda e: e[0])
    for true_t, kind, src, dst, size in events:
        if kind == "send":
            machine, pid = procs[src]
            builder.send(
                machine,
                pid,
                true_t + offsets[src],
                sock=50,
                nbytes=size,
                dest="inet:m{0}:6000".format(procs[dst][0]),
            )
        else:
            machine, pid = procs[dst]
            builder.receive(
                machine,
                pid,
                true_t + offsets[dst],
                sock=60,
                nbytes=size,
                source="inet:m{0}:5000".format(procs[src][0]),
            )
    return builder.build()


@given(_random_sessions())
@settings(max_examples=50, deadline=None)
def test_happens_before_graph_is_always_acyclic(session):
    procs, offsets, exchanges = session
    trace = _build_trace(procs, offsets, exchanges)
    hb = HappensBefore(trace)
    assert nx.is_directed_acyclic_graph(hb.graph)


@given(_random_sessions())
@settings(max_examples=50, deadline=None)
def test_happens_before_is_a_strict_partial_order(session):
    procs, offsets, exchanges = session
    trace = _build_trace(procs, offsets, exchanges)
    hb = HappensBefore(trace)
    events = list(trace)[:12]
    for a in events:
        assert not hb.happens_before(a, a)  # irreflexive
        for b in events:
            if hb.happens_before(a, b):
                assert not hb.happens_before(b, a)  # antisymmetric
            for c in events:
                if hb.happens_before(a, b) and hb.happens_before(b, c):
                    assert hb.happens_before(a, c)  # transitive


@given(_random_sessions())
@settings(max_examples=50, deadline=None)
def test_matched_pairs_never_exceed_sends(session):
    procs, offsets, exchanges = session
    trace = _build_trace(procs, offsets, exchanges)
    matcher = MessageMatcher(trace)
    sends = len(trace.by_type("send"))
    dgram_pairs = [p for p in matcher.pairs if p.send.name("destName")]
    assert len(dgram_pairs) <= sends
    # Each receive claimed at most once.
    recv_indices = [p.recv.index for p in dgram_pairs]
    assert len(recv_indices) == len(set(recv_indices))


@given(_random_sessions())
@settings(max_examples=50, deadline=None)
def test_global_order_respects_every_program_and_message_edge(session):
    procs, offsets, exchanges = session
    trace = _build_trace(procs, offsets, exchanges)
    hb = HappensBefore(trace)
    order = hb.consistent_global_order()
    position = {event.index: i for i, event in enumerate(order)}
    assert sorted(position.values()) == list(range(len(trace)))
    for pair in hb.matcher.pairs:
        assert position[pair.send.index] < position[pair.recv.index]
