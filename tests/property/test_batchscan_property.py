"""Property tests: the batch fast lane is the interpreted scan.

For any record stream, any store flavour (v1, v2, v2-compressed), any
predicate pushdown, and any compiled rule file,
:func:`~repro.tracestore.scan_fast` / :func:`~repro.tracestore.select`
must produce record-for-record (and key-order-for-key-order) exactly
what :meth:`StoreReader.scan` + ``RuleSet.apply`` produce.  A damaged
store must agree in salvage mode too.

The corrupt-store x strict-scan combination is deliberately out of
scope here: strict scans *raise* on damage in both lanes, but which
frame the error names may differ (the fast lane hoists the region CRC
check); the durability property suite owns that contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.rules import parse_rules
from repro.metering import messages
from repro.metering.messages import EVENT_TYPES, MessageCodec
from repro.net.addresses import InternetName, PairName, UnixName
from repro.tracestore import (
    FORMAT_VERSION_V1,
    StoreReader,
    StoreWriter,
    collect_ops,
    scan_fast,
    select,
)

HOSTS = {1: "red", 2: "green", 3: "blue", 4: "yellow"}

_names = st.one_of(
    st.none(),
    st.builds(
        lambda host_id, port: InternetName(HOSTS[host_id], port, host_id),
        host_id=st.sampled_from(sorted(HOSTS)),
        port=st.integers(min_value=1, max_value=65535),
    ),
    st.builds(
        UnixName,
        path=st.text(alphabet="abcdefghij/._", min_size=1, max_size=14),
    ),
    st.builds(PairName, unique_id=st.integers(min_value=1, max_value=2**31 - 1)),
)


@st.composite
def _wire_messages(draw):
    event = draw(st.sampled_from(sorted(EVENT_TYPES)))
    longs = st.integers(min_value=-(2**31), max_value=2**31 - 1)
    body, names = {}, {}
    for field, kind in messages.BODY_FIELDS[event]:
        if kind == "long":
            if not field.endswith("NameLen"):
                body[field] = draw(longs)
        else:
            names[field] = draw(_names)
    codec = MessageCodec(HOSTS)
    body.update(names)
    body.update(codec.name_lengths(**names))
    return codec.encode(
        event,
        machine=draw(st.sampled_from(sorted(HOSTS))),
        cpu_time=draw(st.integers(min_value=0, max_value=10**6)),
        proc_time=draw(st.integers(min_value=0, max_value=10**6)),
        **body
    )


#: Condition fragments a rule line is assembled from: column compares,
#: NAME compares (literal and cross-field), wildcards, discards, and a
#: field no event carries.
_CONDITIONS = [
    "type=send",
    "type=accept",
    "type=fork",
    "machine=2",
    "machine!=3",
    "pid>0",
    "pid<=100",
    "cpuTime>=500000",
    "msgLength>1024",
    "sock=newSock",
    "pc=#*",
    "cpuTime=#*",
    "destName=*",
    "destName=inet:green:7777",
    "sockName=peerName",
    "peerName!=sockName",
    "nosuchfield=1",
]

_rule_lines = st.lists(
    st.lists(st.sampled_from(_CONDITIONS), min_size=1, max_size=3)
    .map(lambda conds: ", ".join(conds)),
    min_size=0,
    max_size=4,
).map(lambda lines: "\n".join(lines) + "\n")

_predicates = st.fixed_dictionaries(
    {},
    optional={
        "machines": st.lists(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=2
        ),
        "events": st.lists(
            st.sampled_from(sorted(EVENT_TYPES)), min_size=1, max_size=3
        ),
        "t_min": st.integers(min_value=0, max_value=10**6),
        "t_max": st.integers(min_value=0, max_value=10**6),
    },
)

_flavours = st.sampled_from(["v1", "v2", "zlib"])


def _build(raws, flavour, segment_bytes):
    kwargs = {"segment_bytes": segment_bytes}
    if flavour == "v1":
        kwargs["version"] = FORMAT_VERSION_V1
    elif flavour == "zlib":
        kwargs["compress"] = True
    writer = StoreWriter("/p/s.store", host_names=HOSTS, **kwargs)
    for raw in raws:
        writer.append(raw)
    writer.close()
    sink = {}
    collect_ops(sink, writer)
    return {path: bytes(data) for path, data in sink.items()}


@given(
    raws=st.lists(_wire_messages(), min_size=1, max_size=30),
    flavour=_flavours,
    segment_bytes=st.sampled_from([400, 4096]),
    predicates=_predicates,
    rule_text=_rule_lines,
)
@settings(max_examples=120, deadline=None)
def test_fast_lane_equals_interpreted_lane(
    raws, flavour, segment_bytes, predicates, rule_text
):
    store = _build(raws, flavour, segment_bytes)
    reader = StoreReader.from_bytes(store)

    oracle_scan = list(reader.scan(**predicates))
    fast_scan = list(scan_fast(reader, **predicates))
    assert fast_scan == oracle_scan
    assert [list(r) for r in fast_scan] == [list(r) for r in oracle_scan]

    rules = parse_rules(rule_text)
    oracle_sel = [
        s
        for s in (rules.apply(r) for r in reader.scan(**predicates))
        if s is not None
    ]
    fast_sel = select(reader, rules, **predicates)
    assert fast_sel == oracle_sel
    assert [list(r) for r in fast_sel] == [list(r) for r in oracle_sel]


@given(
    raws=st.lists(_wire_messages(), min_size=4, max_size=30),
    flavour=_flavours,
    damage=st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=7),
    ),
    rule_text=_rule_lines,
)
@settings(max_examples=80, deadline=None)
def test_salvage_fast_lane_equals_interpreted_lane(
    raws, flavour, damage, rule_text
):
    store = _build(raws, flavour, 400)
    path = sorted(store)[len(store) // 2]
    offset, bit = damage
    blob = bytearray(store[path])
    blob[offset % len(blob)] ^= 1 << bit
    store[path] = bytes(blob)

    reader = StoreReader.from_bytes(store)
    oracle = list(reader.scan(salvage=True))
    oracle_stats = repr(reader.last_stats)
    fast = list(scan_fast(reader, salvage=True))
    assert fast == oracle
    assert repr(reader.last_stats) == oracle_stats

    rules = parse_rules(rule_text)
    oracle_sel = [
        s
        for s in (rules.apply(r) for r in reader.scan(salvage=True))
        if s is not None
    ]
    assert select(reader, rules, salvage=True) == oracle_sel
