"""Metering transparency under failure (Section 2): when the meter
connection breaks -- filter machine crashed, path severed -- the
metered process is quietly un-metered and keeps computing."""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs
from repro.programs import install_all


def _session(seed=43):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    return session


def _producers(cluster, machine_name):
    return [
        p
        for p in cluster.machine(machine_name).procs.values()
        if p.program_name == "dgramproducer"
    ]


def test_metered_process_survives_filter_machine_crash():
    session = _session()
    cluster = session.cluster
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 80 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(100)
    FaultInjector(
        cluster, FaultPlan().crash(cluster.sim.now + 1.0, "blue")
    ).arm()
    session.settle()
    producer = _producers(cluster, "red")[0]
    assert producer.exit_reason == defs.EXIT_NORMAL
    # The kernel noticed the broken meter connection and un-metered.
    assert producer.meter_entry is None


def test_metered_process_survives_partition_from_filter():
    session = _session()
    cluster = session.cluster
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 80 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(100)
    now = cluster.sim.now
    plan = (
        FaultPlan()
        .partition(now + 1.0, [["red", "green", "yellow"], ["blue"]])
        .heal(now + 150.0)
    )
    FaultInjector(cluster, plan).arm()
    session.settle()
    producer = _producers(cluster, "red")[0]
    assert producer.exit_reason == defs.EXIT_NORMAL


def test_filter_survives_losing_a_meter_connection():
    """The filter keeps running and keeps its partial log after the
    metered machine crashes mid-stream."""
    session = _session()
    cluster = session.cluster
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 200 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(200)
    FaultInjector(
        cluster, FaultPlan().crash(cluster.sim.now + 1.0, "red")
    ).arm()
    session.settle()
    blue = cluster.machine("blue")
    filters = [
        p
        for p in blue.procs.values()
        if p.program_name == "filter" and p.state != defs.PROC_ZOMBIE
    ]
    assert filters  # the filter did not die with its client
    records = session.read_trace("f1")
    sends = [r for r in records if r["event"] == "send"]
    assert 0 < len(sends) < 200
