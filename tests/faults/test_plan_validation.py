"""Construction-time FaultPlan validation.

A malformed schedule must raise ``ValueError`` while the plan is being
built -- never as a KeyError or TypeError from deep inside a scheduled
simulator event hundreds of virtual milliseconds into a chaos run.
"""

import math

import pytest

from repro.faults.plan import FaultPlan

MACHINES = ("red", "green", "blue", "yellow")


def _plan():
    return FaultPlan(machines=MACHINES)


@pytest.mark.parametrize("at_ms", [float("nan"), float("inf"), -0.5, "soon"])
def test_bad_times_rejected(at_ms):
    with pytest.raises((ValueError, TypeError)):
        _plan().heal(at_ms)


def test_unknown_machine_rejected_at_build_time():
    with pytest.raises(ValueError):
        _plan().crash(10.0, "mauve")


def test_empty_machine_name_rejected():
    with pytest.raises(ValueError):
        _plan().crash(10.0, "")


@pytest.mark.parametrize("loss", [-0.1, 1.1, 2.0])
def test_loss_outside_unit_interval_rejected(loss):
    with pytest.raises(ValueError):
        _plan().loss_burst(10.0, duration_ms=20.0, loss=loss)


@pytest.mark.parametrize("duration_ms", [0.0, -5.0])
def test_nonpositive_durations_rejected(duration_ms):
    with pytest.raises(ValueError):
        _plan().loss_burst(10.0, duration_ms=duration_ms, loss=0.5)
    with pytest.raises(ValueError):
        _plan().latency_spike(10.0, duration_ms=duration_ms, extra_ms=5.0)


def test_empty_partition_groups_rejected():
    with pytest.raises(ValueError):
        _plan().partition(10.0, [])
    with pytest.raises(ValueError):
        _plan().partition(10.0, [["red"], []])


def test_machine_in_two_partition_groups_rejected():
    with pytest.raises(ValueError):
        _plan().partition(10.0, [["red", "green"], ["green", "blue"]])


def test_kill_process_needs_a_program_name():
    with pytest.raises(ValueError):
        _plan().kill_process(10.0, "red", "")


@pytest.mark.parametrize("flips", [0, -1])
def test_bit_rot_flips_must_be_positive(flips):
    with pytest.raises(ValueError):
        _plan().storage_bit_rot(10.0, "blue", "/usr/tmp/f1.store", flips=flips)


@pytest.mark.parametrize("drop_bytes", [0, -4])
def test_torn_write_drop_bytes_must_be_positive(drop_bytes):
    with pytest.raises(ValueError):
        _plan().storage_torn_write(
            10.0, "blue", "/usr/tmp/f1.store", drop_bytes=drop_bytes
        )


def test_storage_faults_need_a_path_prefix():
    with pytest.raises(ValueError):
        _plan().storage_drop_flush(10.0, "blue", "")


def test_rejected_events_leave_the_plan_unchanged():
    plan = _plan().heal(10.0)
    with pytest.raises(ValueError):
        plan.loss_burst(20.0, duration_ms=30.0, loss=7.0)
    assert len(plan) == 1


def test_from_jsonable_rejects_unknown_kinds():
    with pytest.raises(ValueError):
        FaultPlan.from_jsonable(
            [{"kind": "meteor_strike", "at_ms": 10.0, "args": {}}],
            machines=MACHINES,
        )


def test_from_jsonable_rejects_missing_fields():
    with pytest.raises(ValueError):
        FaultPlan.from_jsonable([{"kind": "heal"}], machines=MACHINES)


def test_from_jsonable_revalidates_machines():
    entries = FaultPlan().crash(10.0, "mauve").to_jsonable()
    with pytest.raises(ValueError):
        FaultPlan.from_jsonable(entries, machines=MACHINES)


def test_shifted_keeps_validation_and_order():
    plan = _plan().partition(90.0, [["red"], ["green", "blue", "yellow"]])
    plan.heal(140.0)
    moved = plan.shifted(-50.0)
    assert [event.at_ms for event in moved.events] == [40.0, 90.0]
    with pytest.raises(ValueError):
        plan.shifted(-100.0)  # would push the partition below t=0


def test_to_json_is_canonical():
    plan = _plan().partition(90.0, [["red"], ["green", "blue", "yellow"]])
    rebuilt = FaultPlan.from_jsonable(plan.to_jsonable(), machines=MACHINES)
    assert plan.to_json() == rebuilt.to_json()
    assert not math.isnan(plan.events[0].at_ms)
