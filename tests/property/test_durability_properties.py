"""Property tests: corruption is detected or provably harmless.

The durability claim of the v2 store format (DESIGN.md, on-disk
integrity): for a sealed current-format store, *any* single-bit flip
anywhere in the bytes either

- leaves the decoded record stream byte-identical to the clean store
  (the flip hit redundant bytes -- e.g. it de-sealed a footer whose
  every record is still intact on a frame boundary), or
- is detected: the strict scan raises a typed :class:`StoreError`, or
  the scan's loss ledger is non-empty (``loss_free()`` False).

Never a silently different record stream.  A companion property checks
truncation (a crash at an arbitrary byte): salvage always yields a
prefix of the clean records, never an invented or altered record.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metering.messages import MessageCodec
from repro.net.addresses import InternetName
from repro.tracestore import StoreError, StoreReader, StoreWriter, collect_ops

HOSTS = {1: "red", 2: "green", 3: "blue"}


def _build_store(n=18, segment_bytes=500):
    codec = MessageCodec(HOSTS)
    writer = StoreWriter(
        "/p/s.store", segment_bytes=segment_bytes, host_names=HOSTS
    )
    wire = []
    for i in range(n):
        machine = (i % 3) + 1
        dest = InternetName(HOSTS[machine], 6000 + i % 4, machine)
        raw = codec.encode(
            "send",
            machine=machine,
            cpu_time=i * 7,
            proc_time=10,
            pid=100 + i % 2,
            pc=i,
            sock=4,
            msgLength=32,
            destName=dest,
            **codec.name_lengths(destName=dest)
        )
        wire.append(raw)
        writer.append(raw)
    writer.close()
    sink = {}
    collect_ops(sink, writer)
    store = {path: bytes(data) for path, data in sink.items()}
    baseline = [codec.decode(raw) for raw in wire]
    return store, baseline


STORE, BASELINE = _build_store()
PATHS = sorted(STORE)
SIZES = [len(STORE[path]) for path in PATHS]


def _is_subsequence(sub, full):
    it = iter(full)
    return all(any(item == other for other in it) for item in sub)


@st.composite
def _bit_positions(draw):
    index = draw(st.integers(min_value=0, max_value=len(PATHS) - 1))
    offset = draw(st.integers(min_value=0, max_value=SIZES[index] - 1))
    bit = draw(st.integers(min_value=0, max_value=7))
    return index, offset, bit


@given(_bit_positions())
@settings(max_examples=120, deadline=None)
def test_single_bit_flip_detected_or_harmless(position):
    index, offset, bit = position
    damaged = dict(STORE)
    data = bytearray(damaged[PATHS[index]])
    data[offset] ^= 1 << bit
    damaged[PATHS[index]] = bytes(data)

    reader = StoreReader.from_bytes(damaged, host_names=HOSTS)
    try:
        records = reader.records()
    except StoreError:
        return  # detected: the strict scan refused the store
    if records == BASELINE:
        return  # provably harmless: identical record stream
    # Anything else must be accounted loss, never silent difference.
    assert not reader.last_stats.loss_free()
    assert _is_subsequence(records, BASELINE)

    # And salvage mode must agree: a subsequence plus a non-empty ledger.
    salvaged = reader.records(salvage=True)
    assert _is_subsequence(salvaged, BASELINE)
    assert not reader.last_stats.loss_free()


@given(
    index=st.integers(min_value=0, max_value=len(PATHS) - 1),
    keep_fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=80, deadline=None)
def test_truncation_yields_a_prefix_never_wrong_records(index, keep_fraction):
    damaged = dict(STORE)
    path = PATHS[index]
    keep = int(len(STORE[path]) * keep_fraction)
    damaged[path] = STORE[path][:keep]
    for later in PATHS[index + 1:]:
        del damaged[later]  # the crash lost every later segment too

    reader = StoreReader.from_bytes(damaged, host_names=HOSTS)
    records = reader.records(salvage=True)
    assert records == BASELINE[: len(records)]
