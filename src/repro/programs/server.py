"""A long-running system server: the *acquire* target (Section 4.3).

"situations may arise in which a process such as a system server is an
important component of a computation ... a user may be interested only
in monitoring a system server to better understand its behavior."

The name server answers lookup datagrams forever; it is started
outside any job and then acquired mid-run.
"""

from repro.kernel import defs

_NAMES = {
    b"red": b"1",
    b"green": b"2",
    b"blue": b"3",
    b"yellow": b"4",
}


def name_server(sys, argv):
    """argv: [port] -- a datagram request/reply server that never
    exits on its own."""
    port = int(argv[0]) if len(argv) > 0 else 5353
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", port))
    while True:
        query, src = yield sys.recvfrom(fd, 512)
        yield sys.compute(0.5)
        answer = _NAMES.get(query.strip(), b"?")
        if src is not None:
            yield sys.sendto(fd, answer, (src.host, src.port))


def name_client(sys, argv):
    """argv: [server, port, nqueries, gap_ms]."""
    server = argv[0] if len(argv) > 0 else "red"
    port = int(argv[1]) if len(argv) > 1 else 5353
    nqueries = int(argv[2]) if len(argv) > 2 else 5
    gap_ms = float(argv[3]) if len(argv) > 3 else 10.0

    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    answered = 0
    queries = sorted(_NAMES)
    for i in range(nqueries):
        yield sys.sendto(fd, queries[i % len(queries)], (server, port))
        ready, __ = yield sys.select([fd], timeout_ms=200.0)
        if ready:
            yield sys.recvfrom(fd, 512)
            answered += 1
        if gap_ms > 0:
            yield sys.sleep(gap_ms)
    yield sys.write(1, b"%d of %d queries answered\n" % (answered, nqueries))
    yield sys.exit(0)
