"""Figure 3.5 -- Role of daemon processes.

The controller on machine A "steps over" to machine B through B's
meterdaemon.  The bench measures the controller/daemon RPC round trip
(connection + request + reply + teardown, Section 3.5.1) by driving a
cross-machine process-control cycle.
"""

from benchmarks.conftest import fresh_session
from repro.kernel import defs


def test_fig_3_5_remote_control_round_trips(benchmark):
    session = fresh_session(seed=9)
    session.command("filter f1 blue")
    session.command("newjob j")
    out = session.command("addprocess j red nameserver 5353")
    assert "created" in out
    counter = {"n": 0}

    def stop_start_cycle():
        # Each command is one (or more) controller->daemon exchanges
        # across machine boundaries.
        if counter["n"] % 2 == 0:
            session.command("startjob j")
        else:
            session.command("stopjob j")
        counter["n"] += 1

    benchmark(stop_start_cycle)
    # The remote process really obeyed: it exists on red under daemon
    # parentage and is not dead.
    red = session.cluster.machine("red")
    servers = [p for p in red.procs.values() if p.program_name == "nameserver"]
    assert servers and servers[0].state != defs.PROC_ZOMBIE
    daemon = [p for p in red.procs.values() if p.program_name == "meterdaemon"][0]
    assert servers[0].ppid == daemon.pid
    print(
        "\n[fig 3.5] {0} start/stop control cycles executed via the "
        "red meterdaemon".format(counter["n"])
    )
