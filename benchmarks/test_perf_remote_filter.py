"""P3 -- Filter placement (Section 3.4).

"A filter process may execute on a machine that is disjoint from the
set of machines on which the processes of the computation are
executing.  In situations where filter operations contribute
significantly to the system load ... this flexibility may be useful."

The bench runs the same computation with the filter co-located with a
worker vs on an idle machine, and reports completion time and the CPU
the filter consumed on the computation's machine.
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.kernel import defs


def _run(filter_machine, seed=6):
    session = fresh_session(seed=seed)
    session.command("filter f1 {0}".format(filter_machine))
    session.command("newjob j")
    # The computation runs on red and green only; the red server does
    # 2 ms of work per message, keeping red's CPU busy.
    session.command("addprocess j red echoserver 5000 1 2")
    session.command("addprocess j green echoclient red 5000 40 256 0.2")
    session.command("setflags j all immediate")
    cluster = session.cluster
    start = cluster.sim.now
    session.command("startjob j")

    def job_done():
        procs = [
            p
            for name in ("red", "green")
            for p in cluster.machine(name).procs.values()
            if p.program_name in ("echoserver", "echoclient")
        ]
        return bool(procs) and all(
            p.state == defs.PROC_ZOMBIE for p in procs
        )

    # Time the computation itself, not the controller's post-job
    # heartbeat tail (liveness probes idle out on their own schedule).
    cluster.run_until(job_done)
    elapsed = cluster.sim.now - start
    session.settle()
    filter_cpu = sum(
        p.cpu_ms
        for p in session.cluster.machine(filter_machine).procs.values()
        if p.program_name == "filter"
    )
    return elapsed, filter_cpu


@pytest.mark.parametrize("placement", ["red", "blue"])
def test_perf_filter_placement(benchmark, placement):
    elapsed, filter_cpu = benchmark.pedantic(
        _run, args=(placement,), rounds=1, iterations=1
    )
    label = "co-located" if placement == "red" else "disjoint"
    print(
        "\n[P3] filter on {0} ({1}): job elapsed {2:.2f} ms, filter "
        "used {3:.2f} ms CPU on that machine".format(
            placement, label, elapsed, filter_cpu
        )
    )
    assert elapsed > 0


def test_perf_disjoint_filter_offloads_computation_machines(benchmark):
    def compare():
        return _run("red"), _run("blue")

    (co_elapsed, co_cpu), (remote_elapsed, remote_cpu) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # The filter burned comparable CPU either way...
    assert remote_cpu > 0 and co_cpu > 0
    # ...but on the disjoint machine it stops competing with the
    # metered server for the red CPU, so the job is no slower (and
    # typically faster).
    assert remote_elapsed <= co_elapsed * 1.02
