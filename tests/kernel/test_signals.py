"""Signal semantics: stop/continue/kill and child notifications --
the primitives the daemons use for process control (Section 3.5.1)."""

import pytest

from repro.kernel import defs
from tests.conftest import run_guests


def _counter_guest(counts, key):
    def guest(sys, argv):
        for __ in range(1000):
            yield sys.compute(5)
            counts[key] = counts.get(key, 0) + 1
        yield sys.exit(0)

    return guest


def test_embryo_process_does_not_run_until_continued(cluster):
    counts = {}
    machine = cluster.machine("red")
    proc = machine.create_process(
        main=_counter_guest(counts, "a"), uid=100, start=False
    )
    cluster.run(until_ms=100.0)
    assert counts.get("a", 0) == 0
    assert proc.state == defs.PROC_EMBRYO
    machine.continue_proc(proc)
    cluster.run(until_ms=200.0)
    assert counts["a"] > 0


def test_sigstop_halts_a_running_process(cluster):
    counts = {}
    machine = cluster.machine("red")
    proc = machine.create_process(main=_counter_guest(counts, "a"), uid=100)
    cluster.run(until_ms=53.0)
    machine.post_signal(proc, defs.SIGSTOP)
    cluster.run(until_ms=60.0)
    frozen = counts["a"]
    cluster.run(until_ms=500.0)
    assert counts["a"] == frozen


def test_sigcont_resumes_where_it_stopped(cluster):
    counts = {}
    machine = cluster.machine("red")
    proc = machine.create_process(main=_counter_guest(counts, "a"), uid=100)
    cluster.run(until_ms=53.0)
    machine.post_signal(proc, defs.SIGSTOP)
    cluster.run(until_ms=100.0)
    before = counts["a"]
    machine.post_signal(proc, defs.SIGCONT)
    cluster.run(until_ms=200.0)
    assert counts["a"] > before


def test_sigkill_terminates(cluster):
    counts = {}
    machine = cluster.machine("red")
    proc = machine.create_process(main=_counter_guest(counts, "a"), uid=100)
    cluster.run(until_ms=20.0)
    machine.post_signal(proc, defs.SIGKILL)
    cluster.run(until_ms=30.0)
    assert proc.state == defs.PROC_ZOMBIE
    assert proc.exit_reason == defs.EXIT_SIGNALED


def test_sigkill_on_sleeping_process(cluster):
    machine = cluster.machine("red")

    def guest(sys, argv):
        yield sys.sleep(10_000)
        yield sys.exit(0)

    proc = machine.create_process(main=guest, uid=100)
    cluster.run(until_ms=10.0)
    assert proc.state == defs.PROC_SLEEPING
    machine.post_signal(proc, defs.SIGKILL)
    assert proc.state == defs.PROC_ZOMBIE


def test_stop_then_kill_while_stopped(cluster):
    counts = {}
    machine = cluster.machine("red")
    proc = machine.create_process(main=_counter_guest(counts, "a"), uid=100)
    cluster.run(until_ms=20.0)
    machine.post_signal(proc, defs.SIGSTOP)
    cluster.run(until_ms=40.0)
    machine.post_signal(proc, defs.SIGKILL)
    assert proc.state == defs.PROC_ZOMBIE


def test_stopped_sleeper_wakes_only_after_cont(cluster):
    machine = cluster.machine("red")
    log = []

    def guest(sys, argv):
        yield sys.sleep(30)
        log.append(("woke", cluster.sim.now))
        yield sys.exit(0)

    proc = machine.create_process(main=guest, uid=100)
    cluster.run(until_ms=10.0)
    machine.post_signal(proc, defs.SIGSTOP)
    cluster.run(until_ms=200.0)
    assert log == []  # timer fired but the process is stopped
    machine.post_signal(proc, defs.SIGCONT)
    cluster.run(until_ms=300.0)
    assert log and log[0][1] >= 200.0


def test_kill_syscall_requires_matching_uid(cluster):
    machine = cluster.machine("red")
    victim = machine.create_process(main=_counter_guest({}, "v"), uid=100)
    result = {}

    def attacker(sys, argv):
        try:
            yield sys.kill(int(argv[0]), defs.SIGKILL)
            result["outcome"] = "killed"
        except Exception as err:
            result["outcome"] = str(err)
        yield sys.exit(0)

    proc = cluster.spawn("red", attacker, argv=[str(victim.pid)], uid=200)
    cluster.run_until_exit([proc])
    assert "EPERM" in result["outcome"]
    assert victim.state != defs.PROC_ZOMBIE


def test_root_can_kill_anyone(cluster):
    machine = cluster.machine("red")
    victim = machine.create_process(main=_counter_guest({}, "v"), uid=100)

    def root_killer(sys, argv):
        yield sys.kill(int(argv[0]), defs.SIGKILL)
        yield sys.exit(0)

    proc = cluster.spawn("red", root_killer, argv=[str(victim.pid)], uid=0)
    cluster.run_until_exit([proc, victim])
    assert victim.state == defs.PROC_ZOMBIE


def test_kill_unknown_pid_is_esrch(cluster):
    result = {}

    def guest(sys, argv):
        try:
            yield sys.kill(99999, defs.SIGKILL)
        except Exception as err:
            result["err"] = str(err)
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert "ESRCH" in result["err"]


def test_parent_gets_child_termination_event(cluster):
    events = []

    def child(sys, argv):
        yield sys.compute(5)
        yield sys.exit(3)

    def parent(sys, argv):
        pid = yield sys.fork(child, ())
        ready, child_events = yield sys.select([], want_children=True)
        events.extend(child_events)
        assert pid == child_events[0]["pid"]
        yield sys.exit(0)

    run_guests(cluster, ("red", parent, ()))
    assert events[0]["status"] == 3
    assert events[0]["reason"] == defs.EXIT_NORMAL


def test_signaled_child_reports_signaled_reason(cluster):
    events = []

    def child(sys, argv):
        yield sys.sleep(10_000)
        yield sys.exit(0)

    def parent(sys, argv):
        pid = yield sys.fork(child, ())
        yield sys.sleep(10)
        yield sys.kill(pid, defs.SIGKILL)
        __, child_events = yield sys.select([], want_children=True)
        events.extend(child_events)
        yield sys.exit(0)

    run_guests(cluster, ("red", parent, ()))
    assert events[0]["reason"] == defs.EXIT_SIGNALED
