"""P5 -- Global ordering without synchronized clocks (Section 4.1).

"The separate machines' times ... only roughly correspond to a global
time.  Statements regarding the global ordering of events can only be
made on the basis of evidence within the trace ... Given these
constraints, much of the global ordering can be deduced."

The bench sweeps clock skew, counts raw-timestamp causality
violations, and measures the fraction of cross-machine event pairs the
analysis still orders plus the accuracy of the recovered offsets.
"""

import pytest

from benchmarks.conftest import fresh_session
from repro.analysis import HappensBefore, Trace, estimate_clock_skews


def _run(offset_ms, seed=13):
    skews = {"red": (offset_ms, 0.0), "green": (-offset_ms, 0.0)}
    session = fresh_session(seed=seed, clock_skew=skews)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 10")
    session.command("addprocess pp green pingpongclient red 5100 10")
    session.command("setflags pp send receive accept connect")
    session.command("startjob pp")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    hb = HappensBefore(trace)
    red = session.cluster.host_table.lookup("red").host_id
    green = session.cluster.host_table.lookup("green").host_id
    estimated = estimate_clock_skews(trace, hb.matcher, reference=red)
    return {
        "violations": len(hb.violates_causality()),
        "pairs": len(hb.matcher.pairs),
        "ordered": hb.ordered_fraction(),
        "estimated_offset": estimated[green],
        "true_offset": -2 * offset_ms,
    }


@pytest.mark.parametrize("offset_ms", [0, 50, 500, 5000])
def test_perf_ordering_under_skew(benchmark, offset_ms):
    result = benchmark.pedantic(_run, args=(offset_ms,), rounds=1, iterations=1)
    print(
        "\n[P5] skew +/-{0:>5} ms: {1:2d}/{2} pairs violate raw "
        "timestamps; {3:.0%} of cross pairs ordered; offset estimated "
        "{4:8.1f} (true {5})".format(
            offset_ms,
            result["violations"],
            result["pairs"],
            result["ordered"],
            result["estimated_offset"],
            result["true_offset"],
        )
    )
    # Causal deduction is unaffected by skew.
    assert result["ordered"] > 0.8
    # The offset estimate lands within the one-way network delay.
    assert result["estimated_offset"] == pytest.approx(
        result["true_offset"], abs=30.0
    )
    if offset_ms >= 500:
        assert result["violations"] > 0  # raw clocks visibly lie


def test_perf_ordering_deduction_is_skew_invariant(benchmark):
    def compare():
        return _run(0), _run(5000)

    calm, wild = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert wild["ordered"] == pytest.approx(calm["ordered"], abs=0.05)
