"""Wire format for live-analysis queries.

A query travels *to* the filter on the same meter port the kernel
meters use, as one meter-framed message: the standard 24-byte header
(traceType ``STREAM_QUERY_TYPE``) followed by a JSON body.  The
filter's inbox diverts such frames out of the record path and the
filter answers on the same connection with one length-prefixed JSON
frame (``repro.guestlib`` framing).  Reusing the meter port means a
query reaches exactly the filter incarnation currently committing
records -- after a relaunch the daemon's spec points at the new port,
so there is no window where queries go to a dead engine.
"""

import json
import struct

from repro.metering.messages import HEADER_BYTES, STREAM_QUERY_TYPE

#: Must stay within the inbox's framing bound (filterlib's
#: MAX_METER_MESSAGE); kept literal to avoid importing the filter from
#: the daemon side.
MAX_QUERY_FRAME = 4096

_HEADER = struct.Struct(">ih2xiiii")


def encode_query(request):
    """One meter-framed query message for ``request`` (a JSON-able
    dict).  Raises ValueError if it cannot fit a meter frame."""
    payload = json.dumps(request, sort_keys=True).encode("utf-8")
    size = HEADER_BYTES + len(payload)
    if size > MAX_QUERY_FRAME:
        raise ValueError(
            "query too large for a meter frame ({0} bytes)".format(size)
        )
    return _HEADER.pack(size, 0, 0, 0, 0, STREAM_QUERY_TYPE) + payload


def parse_query(raw):
    """The JSON body of a query frame, or None if unparseable."""
    if raw is None or len(raw) < HEADER_BYTES:
        return None
    try:
        body = json.loads(raw[HEADER_BYTES:].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return body if isinstance(body, dict) else None


def encode_reply(reply):
    """The filter's reply payload (sent with guestlib.send_frame)."""
    return json.dumps(reply, sort_keys=True).encode("utf-8")


def parse_reply(payload):
    """Decode a reply frame; never raises -- a mangled reply becomes an
    error dict so RPC relays stay total."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError, AttributeError):
        return {"status": "error", "reason": "unparseable engine reply"}
    if not isinstance(body, dict):
        return {"status": "error", "reason": "malformed engine reply"}
    return body
