"""Cross-module integration: full measurement sessions analyzed end to
end, mirroring the studies the paper reports."""

import pytest

from repro.analysis import (
    CommunicationGraph,
    CommunicationStatistics,
    HappensBefore,
    ParallelismProfile,
    Trace,
    estimate_clock_skews,
)
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all


def _make_session(seed=77, clock_skew=None):
    cluster = Cluster(seed=seed, clock_skew=clock_skew)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    return session


def test_full_pipeline_master_worker():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob mw")
    session.command("addprocess mw red mwmaster 5400 2 8 10")
    session.command("addprocess mw green mwworker red 5400")
    session.command("addprocess mw blue mwworker red 5400")
    session.command("setflags mw all")
    session.command("startjob mw")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    assert len(trace.processes()) == 3
    graph = CommunicationGraph(trace)
    assert graph.shape() == "star"
    stats = CommunicationStatistics(trace)
    assert stats.totals()["matched_pairs"] > 0
    hb = HappensBefore(trace)
    assert 0.3 < hb.ordered_fraction() <= 1.0


def test_two_jobs_two_filters_are_isolated():
    session = _make_session()
    session.command("filter fa blue")
    session.command("filter fb yellow")
    session.command("newjob one fa")
    session.command("addprocess one red dgramconsumer 6000 5 500")
    session.command("addprocess one green dgramproducer red 6000 5 64 1")
    session.command("setflags one send receive")
    session.command("newjob two fb")
    session.command("addprocess two red dgramconsumer 6010 5 500")
    session.command("addprocess two green dgramproducer red 6010 5 64 1")
    session.command("setflags two send receive")
    session.command("startjob one")
    session.command("startjob two")
    session.settle()
    trace_a = session.read_trace("fa")
    trace_b = session.read_trace("fb")
    assert trace_a and trace_b
    # Each filter only saw its own job's pids.
    pids_a = {r["pid"] for r in trace_a}
    pids_b = {r["pid"] for r in trace_b}
    assert pids_a.isdisjoint(pids_b) or pids_a != pids_b


def test_flags_can_change_mid_run():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 40 64 5")
    session.command("setflags j socket")
    session.command("startjob j")
    session.settle(60)
    # Turn on send metering while the producer is mid-stream.
    session.command("setflags j send")
    session.settle()
    records = session.read_trace("f1")
    sends = [r for r in records if r["event"] == "send"]
    assert 0 < len(sends) < 40  # only the tail was metered


def test_stopjob_pauses_event_flow():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 200 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(100)
    session.command("stopjob j")
    session.settle(50)
    frozen = len(session.read_trace("f1"))
    session.settle(300)
    assert len(session.read_trace("f1")) == frozen
    session.command("startjob j")
    session.settle(200)
    assert len(session.read_trace("f1")) > frozen


def test_clock_skew_study_end_to_end():
    skews = {"red": (800.0, 0.0), "green": (-400.0, 0.0)}
    session = _make_session(seed=5, clock_skew=skews)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 10")
    session.command("addprocess pp green pingpongclient red 5100 10")
    session.command("setflags pp send receive accept connect")
    session.command("startjob pp")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    hb = HappensBefore(trace)
    assert hb.violates_causality()  # raw clocks contradict causality
    red = session.cluster.host_table.lookup("red").host_id
    green = session.cluster.host_table.lookup("green").host_id
    estimated = estimate_clock_skews(trace, hb.matcher, reference=red)
    # True relative offset: green - red = -1200ms.
    assert estimated[green] == pytest.approx(-1200.0, abs=30.0)


def test_fork_events_reconstruct_process_tree():
    session = _make_session()

    def forker(sys, argv):
        def child(sys, argv):
            yield sys.compute(5)
            yield sys.exit(0)

        for __ in range(3):
            yield sys.fork(child, ())
        reaped = 0
        while reaped < 3:
            __ready, events = yield sys.select([], want_children=True)
            reaped += len(events)
        yield sys.exit(0)

    session.install_program("forker", forker)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red forker")
    session.command("setflags j fork termproc")
    session.command("startjob j")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    forks = trace.by_type("fork")
    assert len(forks) == 3
    graph = CommunicationGraph(trace)
    # Parent + 3 children in the graph, fork edges out of the parent.
    assert len(graph.processes()) == 4
    assert graph.shape() == "star"
    # The children inherited metering: their termproc events arrived.
    terms = trace.by_type("termproc")
    assert len(terms) == 4  # 3 children + the parent


def test_parallelism_profile_of_parallel_vs_serial():
    def run(version):
        session = _make_session(seed=3)
        session.command("filter f1 blue")
        session.command("newjob tsp")
        session.command(
            "addprocess tsp yellow tspmaster {0} 5200 3 7 1".format(version)
        )
        for machine in ("red", "green", "blue"):
            session.command("addprocess tsp {0} tspworker yellow 5200".format(machine))
        session.command("setflags tsp all")
        session.command("startjob tsp")
        session.settle()
        return ParallelismProfile(Trace(session.read_trace("f1")))

    serial = run("v1")
    parallel = run("v2")
    assert parallel.elapsed_ms() < serial.elapsed_ms()
    assert parallel.cpu_parallelism() > serial.cpu_parallelism()


def test_measurement_survives_lossy_network():
    """Meter connections are streams: traces stay complete even when
    the computation's datagrams are being dropped."""
    from repro.net.network import NetworkParams

    cluster = Cluster(seed=11, net_params=NetworkParams(datagram_loss=0.3))
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramconsumer 6000 30 200")
    session.command("addprocess j green dgramproducer red 6000 30 64 1")
    session.command("setflags j send receive")
    session.command("startjob j")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    # Sends to the consumer port (stdout writes to the I/O gateway are
    # also socket sends and also metered -- exclude them here).
    data_sends = [
        e for e in trace.by_type("send")
        if (e.name("destName") or "").endswith(":6000")
    ]
    recvs = trace.by_type("receive")
    assert len(data_sends) == 30  # every send metered, reliably delivered
    assert len(recvs) < 30  # ... though some datagrams were lost
