"""Replayable chaos artifacts: a failing (or regression) schedule as
one self-contained JSON document.

An artifact pins everything a replay needs -- scenario name and
parameters, cluster seed, the (relative) fault schedule, which oracle
suite judged it -- plus the verdict the original run produced, so
``python -m repro chaos replay`` can assert reproduction rather than
just re-run.  Shrunk artifacts carry their provenance (generator
profile and seed, pre-shrink event count, probe spend).

Committed under ``tests/chaos/corpus/`` these double as cheap tier-1
regression tests: every schedule that ever found a bug keeps guarding
against it.
"""

import json
import pathlib

from repro.chaos.oracles import run_oracles, violated_names
from repro.chaos.scenario import make_scenario, run_scenario
from repro.faults.plan import FaultPlan

ARTIFACT_FORMAT = "repro-chaos/1"


def build_artifact(
    scenario_name,
    cluster_seed,
    plan,
    verdict,
    scenario_kwargs=None,
    profile=None,
    gen_seed=None,
    oracles=None,
    shrink_info=None,
):
    """Assemble the JSON-native artifact document."""
    return {
        "format": ARTIFACT_FORMAT,
        "scenario": {
            "name": scenario_name,
            "kwargs": dict(scenario_kwargs or {}),
        },
        "cluster_seed": int(cluster_seed),
        "profile": profile,
        "gen_seed": gen_seed,
        "oracles": list(oracles) if oracles is not None else None,
        "plan": plan.to_jsonable(),
        "verdict": {
            "ok": verdict["ok"],
            "violated": violated_names(verdict),
        },
        "shrink": shrink_info,
    }


def save_artifact(artifact, path):
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
    return path


def load_artifact(path):
    artifact = json.loads(pathlib.Path(path).read_text(encoding="ascii"))
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            "{0}: not a chaos artifact (format {1!r})".format(
                path, artifact.get("format")
            )
        )
    return artifact


def artifact_scenario(artifact):
    spec = artifact["scenario"]
    return make_scenario(spec["name"], **spec.get("kwargs", {}))


def artifact_plan(artifact, scenario=None):
    scenario = scenario or artifact_scenario(artifact)
    return FaultPlan.from_jsonable(
        artifact["plan"], machines=scenario.machines
    )


def replay_artifact(artifact):
    """Re-run an artifact's schedule and judge it with the recorded
    oracle suite.  Returns ``(verdict, reproduced)`` where
    ``reproduced`` means the fresh verdict matches the recorded one --
    same ok flag, same set of violated oracles."""
    if isinstance(artifact, (str, pathlib.Path)):
        artifact = load_artifact(artifact)
    scenario = artifact_scenario(artifact)
    plan = artifact_plan(artifact, scenario)
    cluster_seed = artifact["cluster_seed"]
    baseline = run_scenario(scenario, cluster_seed)
    run = run_scenario(scenario, cluster_seed, plan)
    verdict = run_oracles(run, baseline, oracles=artifact.get("oracles"))
    recorded = artifact["verdict"]
    reproduced = (
        verdict["ok"] == recorded["ok"]
        and violated_names(verdict) == list(recorded["violated"])
    )
    return verdict, reproduced
