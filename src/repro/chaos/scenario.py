"""Chaos scenarios: the workloads a searched schedule runs against.

A scenario owns everything the search engine should not care about:
which machines exist, what job the controller starts, how long the
fault window is, and what "the workload finished" means.
``run_scenario`` stands the measurement system up on a fresh seeded
cluster (store-format logs, so the storage oracles have a medium to
check), arms an optional :class:`~repro.faults.plan.FaultPlan` shifted
to the workload start, lets everything settle, types ``resume`` if the
plan restarted the controller (the single operator action the design
allows), stops the job, and snapshots every artifact the oracle suite
reads into a :class:`RunResult`.
"""

from collections import Counter

from repro.chaos.generator import FaultSurface
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector
from repro.faults.plan import RESTART_CONTROLLER
from repro.filtering.standard import LOG_FORMAT_STORE, log_path_for
from repro.kernel import defs
from repro.programs import install_all
from repro.tracestore import StoreReader, scan_fast
from repro.tracestore.errors import StoreError
from repro.tracestore.fsck import fsck_store
from repro.tracestore.writer import segment_path


class Scenario:
    """Base scenario: four machines, filter on blue, control on yellow."""

    name = "base"
    control_machine = "yellow"
    filter_machine = "blue"
    filter_name = "f1"
    job_name = "j"
    machines = ("red", "green", "blue", "yellow")
    horizon_ms = 700.0
    #: program name -> how many processes the job starts.
    expected_procs = {}

    def start(self, session):
        raise NotImplementedError

    def finish(self, session):
        session.command("stopjob {0}".format(self.job_name))

    # ------------------------------------------------------------------

    def expected_done(self):
        return sum(self.expected_procs.values())

    def surface(self, log_directory):
        """The fault surface this scenario exposes to the generator."""
        return FaultSurface(
            machines=self.machines,
            control_machine=self.control_machine,
            filter_machine=self.filter_machine,
            store_prefix=log_path_for(
                self.filter_name, log_directory, LOG_FORMAT_STORE
            ),
        )

    def describe(self):
        return "{0} ({1} workload proc(s), horizon {2}ms)".format(
            self.name, self.expected_done(), self.horizon_ms
        )


class DgramPairScenario(Scenario):
    """Two datagram producers firing at each other (the PR 5 soak
    workload): every send is metered, so record loss is visible."""

    name = "dgram_pair"

    def __init__(self, sends=40, gap_ms=5.0):
        self.sends = int(sends)
        self.gap_ms = float(gap_ms)
        self.expected_procs = {"dgramproducer": 2}

    def start(self, session):
        session.command(
            "filter {0} {1}".format(self.filter_name, self.filter_machine)
        )
        session.command("newjob {0}".format(self.job_name))
        session.command(
            "addprocess {0} red dgramproducer green 6000 {1} 64 {2}".format(
                self.job_name, self.sends, self.gap_ms
            )
        )
        session.command(
            "addprocess {0} green dgramproducer red 6001 {1} 64 {2}".format(
                self.job_name, self.sends, self.gap_ms
            )
        )
        session.command("setflags {0} send termproc immediate".format(self.job_name))
        session.command("startjob {0}".format(self.job_name))


class DgramQuadScenario(DgramPairScenario):
    """Four producers across both workload machines -- denser traffic,
    more interleaving under partitions."""

    name = "dgram_quad"

    def __init__(self, sends=30, gap_ms=4.0):
        super().__init__(sends=sends, gap_ms=gap_ms)
        self.expected_procs = {"dgramproducer": 4}

    def start(self, session):
        super().start(session)
        session.command(
            "addprocess {0} red dgramproducer green 6002 {1} 48 {2}".format(
                self.job_name, self.sends, self.gap_ms
            )
        )
        session.command(
            "addprocess {0} green dgramproducer red 6003 {1} 48 {2}".format(
                self.job_name, self.sends, self.gap_ms
            )
        )
        session.command("setflags {0} send termproc immediate".format(self.job_name))
        session.command("startjob {0}".format(self.job_name))


SCENARIOS = {
    DgramPairScenario.name: DgramPairScenario,
    DgramQuadScenario.name: DgramQuadScenario,
}


def make_scenario(name, **kwargs):
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            "unknown scenario {0!r}; available: {1}".format(
                name, ", ".join(sorted(SCENARIOS))
            )
        )
    return factory(**kwargs)


# ----------------------------------------------------------------------
# Running one schedule
# ----------------------------------------------------------------------


class RunResult:
    """Everything one run leaves behind for the oracle suite."""

    def __init__(self, scenario, cluster_seed, plan):
        self.scenario = scenario
        self.cluster_seed = cluster_seed
        #: The *relative* plan (None for a fault-free baseline run).
        self.plan = plan
        self.applied = []
        self.transcript = ""
        self.resume_out = ""
        self.controller_alive = False
        self.store_missing = False
        #: None, or the strict-scan StoreError text (store damage).
        self.strict_error = None
        #: Records via strict scan when clean, salvage scan otherwise.
        self.records = []
        self.salvage_stats = None
        self.fsck_report = None
        self.reader = None
        self.normal_exits = Counter()
        self.done_reports = Counter()

    def plan_kinds(self):
        return self.plan.kinds() if self.plan is not None else set()

    def record_multiset(self):
        """The record identity that must survive recoverable chaos
        (PR 5's oracle key, generalized)."""
        return Counter(
            (r["machine"], r["pid"], r["event"], r["pc"]) for r in self.records
        )


def run_scenario(scenario, cluster_seed, plan=None, log_directory=None):
    """One deterministic run: same (scenario, cluster_seed, plan) =>
    the same RunResult artifacts, byte for byte."""
    cluster = Cluster(seed=cluster_seed, machines=scenario.machines)
    session = MeasurementSession(
        cluster,
        control_machine=scenario.control_machine,
        log_format=LOG_FORMAT_STORE,
        log_directory=log_directory,
    )
    install_all(session)
    scenario.start(session)
    result = RunResult(scenario, cluster_seed, plan)
    injector = None
    if plan is not None and len(plan):
        shifted = plan.shifted(cluster.sim.now)
        injector = FaultInjector(cluster, shifted, session=session).arm()
    session.settle()
    if plan is not None and plan.has_kind(RESTART_CONTROLLER):
        result.resume_out = session.command("resume")
        session.settle()
    scenario.finish(session)
    session.settle()
    if injector is not None:
        result.applied = injector.describe_applied()
    result.transcript = session.transcript()
    result.controller_alive = session.controller_alive()
    _collect_exits(cluster, scenario, result)
    _collect_done_reports(scenario, result)
    _collect_store(cluster, session, scenario, result)
    return result


def _collect_exits(cluster, scenario, result):
    for machine in cluster.machines.values():
        for proc in machine.procs.values():
            if (
                proc.program_name in scenario.expected_procs
                and proc.state == defs.PROC_ZOMBIE
                and proc.exit_reason == defs.EXIT_NORMAL
            ):
                result.normal_exits[proc.program_name] += 1


def _collect_done_reports(scenario, result):
    for program in scenario.expected_procs:
        needle = "DONE: process {0} in job '{1}' terminated".format(
            program, scenario.job_name
        )
        result.done_reports[program] = result.transcript.count(needle)


def _collect_store(cluster, session, scenario, result):
    base = log_path_for(
        scenario.filter_name, session.log_directory, LOG_FORMAT_STORE
    )
    host_names = cluster.host_table.names_by_id()
    fs = None
    first = segment_path(base, 0)
    for machine in cluster.machines.values():
        if machine.fs.exists(first):
            fs = machine.fs
            break
    if fs is None:
        result.store_missing = True
        return
    reader = StoreReader.from_fs(fs, base, host_names=host_names)
    result.reader = reader
    try:
        result.records = list(reader.scan())
    except StoreError as err:
        result.strict_error = "{0}: {1}".format(type(err).__name__, err)
    # The salvage pass always runs: its stats are the loss ledger the
    # store-accounting oracle audits (loss_free() on a clean store).
    salvage_records = list(reader.scan(salvage=True))
    result.salvage_stats = reader.last_stats
    if result.strict_error is not None:
        result.records = salvage_records
    result.fsck_report = fsck_store(reader)


def fast_lane_records(result, salvage):
    """The batch fast lane's view of the run's store (oracle input)."""
    return list(scan_fast(result.reader, salvage=salvage))
