"""Simulator edge cases not covered by the main suite."""

import pytest

from repro.sim.simulator import Simulator


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(5.0, lambda: sim.schedule_at(20.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [20.0]


def test_schedule_at_in_the_past_clamps_to_now():
    sim = Simulator()
    times = []

    def later():
        sim.schedule_at(1.0, lambda: times.append(sim.now))  # already past

    sim.schedule(10.0, later)
    sim.run()
    assert times == [10.0]


def test_cancel_one_of_many_at_same_time():
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(3.0, lambda i=i: fired.append(i)) for i in range(5)
    ]
    sim.cancel(handles[2])
    sim.run()
    assert fired == [0, 1, 3, 4]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_run_until_time_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until_ms=42.0)
    assert sim.now == 42.0


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(handle)
    assert sim.pending_events() == 1


def test_events_run_counter():
    sim = Simulator()
    for __ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_run == 4
