#!/usr/bin/env python
"""Acquiring a running system server (Section 4.3, acquire).

"a user may be interested only in monitoring a system server to better
understand its behavior."  A name server is already running on red --
started outside the measurement system -- and clients on other
machines are querying it.  We acquire the server mid-run, watch its
traffic, and show that acquired processes can be metered but never
stopped or killed.

Run:  python examples/acquire_server.py
"""

from repro.analysis import CommunicationStatistics, Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all
from repro.programs.server import name_server


def main():
    cluster = Cluster(seed=11)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)

    # The server pre-exists: it was started by the system, not by us.
    server_proc = cluster.spawn(
        "red", name_server, argv=["5353"], uid=session.uid, program_name="nameserver"
    )
    cluster.run(until_ms=cluster.sim.now + 20)
    print("name server already running on red: pid", server_proc.pid)

    session.command("filter f1 blue")
    session.command("newjob watch")
    print(session.command("setflags watch send receive socket"), end="")
    out = session.command("acquire watch red {0}".format(server_proc.pid))
    print(out, end="")
    # Flags are (re)applied to the acquired process too.
    session.command("setflags watch send receive socket")

    # Now generate load from two machines.
    session.command("newjob load f1")
    session.command("addprocess load green nameclient red 5353 6")
    session.command("addprocess load yellow nameclient red 5353 6")
    session.command("setflags load send receive")
    session.command("startjob load")
    session.settle()

    print("-- acquired processes cannot be started or stopped --")
    print(session.command("startjob watch"), end="")
    print(session.command("stopjob watch"), end="")

    print(session.command("jobs watch load"), end="")

    trace = Trace(session.read_trace("f1"))
    stats = CommunicationStatistics(trace)
    print(stats.report())

    server_events = trace.events_for((cluster.host_table.lookup("red").host_id, server_proc.pid))
    print(
        "server produced {0} metered events while acquired "
        "(and kept running: state={1})".format(
            len(server_events), server_proc.state
        )
    )

    # Remove the job: the server loses its meter connection but lives on.
    session.command("removejob watch")
    print("after removejob, server still running:", server_proc.state)


if __name__ == "__main__":
    main()
