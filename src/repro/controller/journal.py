"""The controller's session journal: crash recovery for the control
process itself.

Every state-changing command is journaled -- the command line first
(write-ahead, before any RPC fires), then one *effect* entry per state
mutation carrying exactly what a replay needs (pids, ports, log paths
come from daemon replies, so the command line alone cannot rebuild
them).  The journal is a JSON-lines file in the session's log
directory; a fresh controller started after a crash rebuilds the dead
one's filters, jobs and process records with ``resume`` and then
reconciles the result against what the daemons report as still
running.

Append-only and line-oriented on purpose: a controller crash can tear
at most the final line, and :func:`parse_journal` drops torn lines
instead of failing the whole recovery.
"""

import json

from repro.controller import states
from repro.controller.model import FilterInfo, Job, ProcessRecord

JOURNAL_NAME = "control.journal"


def journal_path(log_directory):
    return "{0}/{1}".format(log_directory or "/usr/tmp", JOURNAL_NAME)


def encode_entry(op, **fields):
    """One journal line (newline included)."""
    entry = {"op": op}
    entry.update(fields)
    return json.dumps(entry, sort_keys=True) + "\n"


def parse_journal(text):
    """Journal text -> entry dicts, skipping damaged (torn) lines."""
    entries = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict) and "op" in entry:
            entries.append(entry)
    return entries


class ReplayedState:
    """What a journal replay rebuilds (the controller adopts these)."""

    def __init__(self):
        self.filters = {}
        self.filter_order = []
        self.jobs = {}
        self.next_job_number = 1
        self.watches = {}
        self.next_watch_id = 1
        self.clean_exit = False


def _resolve_record(job, entry):
    """Find the process record a journal entry names.  Entries written
    with machine+pid resolve exactly -- a job may run two processes of
    the same program name, and the name-only fallback (older journals)
    can only pick the first of them."""
    if "pid" in entry:
        for record in job.processes:
            if record.pid == entry["pid"] and record.machine == entry.get(
                "machine", record.machine
            ):
                return record
        return None
    return job.find_process(entry["procname"])


def replay(entries):
    """Fold effect entries into a :class:`ReplayedState`.

    ``cmd`` (write-ahead) entries are intent, not effect: a command
    journaled but crashed mid-execution contributes whatever effect
    entries it managed to append, and nothing more -- the reconcile
    pass squares that against the daemons' reality.
    """
    state = ReplayedState()
    for entry in entries:
        op = entry["op"]
        if op in ("cmd", "resume"):
            continue
        if op == "die":
            state = ReplayedState()
            state.clean_exit = True
        elif op == "filter":
            info = FilterInfo(
                entry["name"],
                entry["machine"],
                entry["pid"],
                entry["meter_host"],
                entry["meter_port"],
                entry["log_path"],
                filterfile=entry.get("filterfile", "filter"),
                descriptions=entry.get("descriptions", "descriptions"),
                templates=entry.get("templates", "templates"),
            )
            state.filters[info.name] = info
            if info.name not in state.filter_order:
                state.filter_order.append(info.name)
            state.clean_exit = False
        elif op == "filter-restart":
            info = state.filters.get(entry["name"])
            if info is not None:
                info.pid = entry["pid"]
                # Kernels that missed the restart still hold orphaned
                # batches keyed by the previous meter port; remember it
                # so reconcile can drain those spools.
                if info.meter_port != entry["meter_port"]:
                    if info.meter_port not in info.past_ports:
                        info.past_ports.append(info.meter_port)
                info.meter_port = entry["meter_port"]
        elif op == "filter-gone":
            state.filters.pop(entry["name"], None)
            if entry["name"] in state.filter_order:
                state.filter_order.remove(entry["name"])
        elif op == "newjob":
            job = Job(entry["name"], entry["filtername"], entry["number"])
            state.jobs[job.name] = job
            state.next_job_number = max(
                state.next_job_number, entry["number"] + 1
            )
            state.clean_exit = False
        elif op == "flags":
            job = state.jobs.get(entry["jobname"])
            if job is not None:
                job.flags = entry["flags"]
                job.flag_order = list(entry.get("flag_order", []))
                for record in job.processes:
                    if record.state != states.KILLED:
                        record.flags = job.flags
        elif op == "process":
            job = state.jobs.get(entry["jobname"])
            if job is not None:
                record = ProcessRecord(
                    entry["procname"],
                    entry["jobname"],
                    entry["machine"],
                    entry["pid"],
                    entry["state"],
                )
                record.flags = entry.get("flags", 0)
                job.processes.append(record)
        elif op == "state":
            job = state.jobs.get(entry["jobname"])
            if job is not None:
                record = _resolve_record(job, entry)
                if record is not None:
                    record.state = entry["state"]
        elif op == "removeprocess":
            job = state.jobs.get(entry["jobname"])
            if job is not None:
                record = _resolve_record(job, entry)
                if record is not None:
                    job.processes.remove(record)
        elif op == "removejob":
            state.jobs.pop(entry["name"], None)
        elif op == "watch":
            wid = int(entry["wid"])
            state.watches[wid] = {
                "filtername": entry["filtername"],
                "spec": entry.get("spec", {}),
            }
            state.next_watch_id = max(state.next_watch_id, wid + 1)
        elif op == "watch-rm":
            state.watches.pop(int(entry["wid"]), None)
    return state
