"""High-level public API.

:class:`~repro.core.cluster.Cluster` builds and owns a simulated
machine cluster; :class:`~repro.core.session.MeasurementSession` stands
up the measurement system (meterdaemons, controller, terminal) on a
cluster and drives it with controller commands, returning transcripts
and traces.
"""

__all__ = ["Cluster", "MeasurementSession"]


def __getattr__(name):
    if name == "Cluster":
        from repro.core.cluster import Cluster

        return Cluster
    if name == "MeasurementSession":
        from repro.core.session import MeasurementSession

        return MeasurementSession
    raise AttributeError(name)
