"""Discrete-event simulation substrate.

Provides the deterministic event loop, simulated global time, and the
per-machine drifting clocks that motivate the paper's discussion of time
(Section 1.1: "we cannot provide a universal time base for all the
machines").
"""

from repro.sim.clock import MachineClock
from repro.sim.errors import SimulationError, SimulationDeadlock
from repro.sim.simulator import Simulator

__all__ = [
    "MachineClock",
    "SimulationError",
    "SimulationDeadlock",
    "Simulator",
]
