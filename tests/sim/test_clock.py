"""Unit tests for drifting machine clocks."""

import pytest

from repro.sim.clock import MachineClock


def test_ideal_clock_is_identity():
    clock = MachineClock()
    assert clock.local_time(0.0) == 0.0
    assert clock.local_time(1234.5) == 1234.5


def test_offset_shifts_local_time():
    clock = MachineClock(offset_ms=500.0)
    assert clock.local_time(100.0) == 600.0


def test_drift_scales_with_elapsed_time():
    clock = MachineClock(drift_ppm=1000.0)  # 0.1% fast
    assert clock.local_time(1_000_000.0) == pytest.approx(1_001_000.0)


def test_offset_and_drift_combine():
    clock = MachineClock(offset_ms=-200.0, drift_ppm=-500.0)
    assert clock.local_time(1000.0) == pytest.approx(-200.0 + 999.5)


def test_global_time_inverts_local_time():
    clock = MachineClock(offset_ms=321.0, drift_ppm=77.0)
    for t in (0.0, 10.0, 99999.0):
        assert clock.global_time(clock.local_time(t)) == pytest.approx(t)


def test_two_skewed_clocks_disagree_grows_over_time():
    fast = MachineClock(drift_ppm=100.0)
    slow = MachineClock(drift_ppm=-100.0)
    gap_early = fast.local_time(1000.0) - slow.local_time(1000.0)
    gap_late = fast.local_time(1_000_000.0) - slow.local_time(1_000_000.0)
    assert gap_late > gap_early > 0
