"""FaultPlan: a declarative, seed-reproducible schedule of faults.

A plan is an ordered list of :class:`FaultEvent` entries, each pinned
to an absolute simulated time.  Building a plan performs no action;
:class:`~repro.faults.injector.FaultInjector` arms it on a cluster.
Builder methods chain::

    plan = (FaultPlan()
            .kill_daemon(at_ms=150.0, machine="green")
            .partition(at_ms=200.0, groups=[["red", "blue", "yellow"], ["green"]])
            .heal(at_ms=400.0)
            .crash(at_ms=500.0, machine="red")
            .reboot(at_ms=800.0, machine="red"))
"""

# Fault kinds.
CRASH = "crash"
REBOOT = "reboot"
PARTITION = "partition"
HEAL = "heal"
LOSS_BURST = "loss_burst"
LATENCY_SPIKE = "latency_spike"
KILL_PROCESS = "kill_process"
KILL_CONTROLLER = "kill_controller"
RESTART_CONTROLLER = "restart_controller"
RESTART_DAEMON = "restart_daemon"
STORAGE_TORN_WRITE = "storage_torn_write"
STORAGE_DROP_FLUSH = "storage_drop_flush"
STORAGE_BIT_ROT = "storage_bit_rot"


class FaultEvent:
    """One scheduled fault: a kind, an absolute time, and arguments."""

    __slots__ = ("at_ms", "kind", "args")

    def __init__(self, at_ms, kind, **args):
        if at_ms < 0:
            raise ValueError("fault time must be >= 0, got %r" % at_ms)
        self.at_ms = float(at_ms)
        self.kind = kind
        self.args = args

    def describe(self):
        details = " ".join(
            "{0}={1}".format(key, value)
            for key, value in sorted(self.args.items())
        )
        return "[{0:10.3f}] {1}{2}".format(
            self.at_ms, self.kind, " " + details if details else ""
        )

    def __repr__(self):
        return "FaultEvent({0!r}, at={1}, {2})".format(
            self.kind, self.at_ms, self.args
        )


class FaultPlan:
    """An ordered schedule of faults on the simulator clock."""

    def __init__(self):
        self.events = []

    def _add(self, at_ms, kind, **args):
        self.events.append(FaultEvent(at_ms, kind, **args))
        return self

    # -- machines --------------------------------------------------------

    def crash(self, at_ms, machine):
        """Power the machine off: processes die unflushed, peers see
        connection resets, in-flight traffic is destroyed."""
        return self._add(at_ms, CRASH, machine=str(machine))

    def reboot(self, at_ms, machine, restart_daemon=True):
        """Bring a crashed machine back with a cold kernel.  With
        ``restart_daemon`` (and a session armed on the injector) a fresh
        meterdaemon is spawned, as init would."""
        return self._add(
            at_ms, REBOOT, machine=str(machine), restart_daemon=bool(restart_daemon)
        )

    # -- network ---------------------------------------------------------

    def partition(self, at_ms, groups):
        """Split the internetwork into ``groups`` (lists of machine
        names); traffic crosses no group boundary and in-flight reliable
        traffic across the cut is destroyed.  Hosts in no group share
        one implicit group."""
        frozen = tuple(tuple(str(name) for name in group) for group in groups)
        return self._add(at_ms, PARTITION, groups=frozen)

    def heal(self, at_ms):
        """End the partition.  Connections broken by it stay broken;
        new connections succeed."""
        return self._add(at_ms, HEAL)

    def loss_burst(self, at_ms, duration_ms, loss):
        """Add ``loss`` (0..1) datagram loss probability on remote links
        for ``duration_ms``."""
        return self._add(
            at_ms, LOSS_BURST, duration_ms=float(duration_ms), loss=float(loss)
        )

    def latency_spike(self, at_ms, duration_ms, extra_ms):
        """Add ``extra_ms`` one-way latency on remote links for
        ``duration_ms``."""
        return self._add(
            at_ms,
            LATENCY_SPIKE,
            duration_ms=float(duration_ms),
            extra_ms=float(extra_ms),
        )

    # -- processes -------------------------------------------------------

    def kill_process(self, at_ms, machine, program):
        """SIGKILL every live process named ``program`` on ``machine``."""
        return self._add(
            at_ms, KILL_PROCESS, machine=str(machine), program=str(program)
        )

    def kill_daemon(self, at_ms, machine):
        """SIGKILL the machine's meterdaemon (control plane loss)."""
        return self.kill_process(at_ms, machine, "meterdaemon")

    def kill_filter(self, at_ms, machine):
        """SIGKILL every filter process on ``machine`` (its daemon is
        expected to notice and relaunch them)."""
        return self.kill_process(at_ms, machine, "filter")

    def restart_daemon(self, at_ms, machine):
        """Spawn a fresh meterdaemon on ``machine`` (init restarting a
        crashed daemon; pair with :meth:`kill_daemon`).  Requires a
        session armed on the injector."""
        return self._add(at_ms, RESTART_DAEMON, machine=str(machine))

    # -- storage ---------------------------------------------------------

    def storage_torn_write(self, at_ms, machine, path_prefix, drop_bytes):
        """Tear the tail off the newest file matching ``path_prefix``
        on ``machine`` (the last ``drop_bytes`` bytes never reached the
        platter).  Pair with :meth:`crash` at the same instant for a
        realistic power-fail torn write; a trace-store segment damaged
        this way reads back as a torn tail / salvageable segment."""
        return self._add(
            at_ms,
            STORAGE_TORN_WRITE,
            machine=str(machine),
            path_prefix=str(path_prefix),
            drop_bytes=int(drop_bytes),
        )

    def storage_drop_flush(self, at_ms, machine, path_prefix):
        """Arm a one-shot medium lie on ``machine``: the next guest
        write to a file matching ``path_prefix`` is acknowledged but
        silently discarded (a dropped sync).  Detected by per-frame
        CRCs / salvage accounting on read."""
        return self._add(
            at_ms,
            STORAGE_DROP_FLUSH,
            machine=str(machine),
            path_prefix=str(path_prefix),
        )

    def storage_bit_rot(self, at_ms, machine, path_prefix, flips=1, seed=0):
        """Flip ``flips`` seed-chosen bits across the at-rest bytes of
        every file matching ``path_prefix`` on ``machine`` (bit rot /
        post-crash corruption).  Deterministic: same seed, same bits."""
        return self._add(
            at_ms,
            STORAGE_BIT_ROT,
            machine=str(machine),
            path_prefix=str(path_prefix),
            flips=int(flips),
            seed=int(seed),
        )

    # -- the controller ---------------------------------------------------

    def kill_controller(self, at_ms):
        """SIGKILL the session's control process (the user's tool
        crashes; the session journal survives).  Requires a session
        armed on the injector."""
        return self._add(at_ms, KILL_CONTROLLER)

    def restart_controller(self, at_ms):
        """Start a fresh control process on the session's terminal
        (killing any survivor first).  The operator then types
        ``resume``.  Requires a session armed on the injector."""
        return self._add(at_ms, RESTART_CONTROLLER)

    # --------------------------------------------------------------------

    def sorted_events(self):
        """Events in firing order (time, then declaration order)."""
        return sorted(
            enumerate(self.events), key=lambda pair: (pair[1].at_ms, pair[0])
        )

    def describe(self):
        """Human-readable schedule, one line per fault."""
        return [event.describe() for __, event in self.sorted_events()]

    def __len__(self):
        return len(self.events)
