"""Space-time diagrams of a computation.

Renders the classic Lamport diagram as text: one column per process,
rows in a causally consistent global order (skew-corrected), message
sends/receives annotated.  This is the visualization a programmer
debugging with the monitor reads first: it makes the interleaving of a
distributed computation visible without synchronized clocks.
"""

from repro.analysis.ordering import HappensBefore

_GLYPHS = {
    "send": "S",
    "receive": "R",
    "receivecall": "r",
    "accept": "A",
    "connect": "C",
    "socket": "o",
    "dup": "d",
    "destsocket": "x",
    "fork": "F",
    "termproc": "T",
}


class Timeline:
    """A textual space-time diagram of one trace."""

    def __init__(self, trace, hb=None):
        self.trace = trace
        self.hb = hb or HappensBefore(trace)
        self.order = self.hb.consistent_global_order()
        self.processes = trace.processes()
        self._column = {proc: i for i, proc in enumerate(self.processes)}
        #: event index -> (label of the matched peer event, direction)
        self._message_peer = {}
        for pair in self.hb.matcher.pairs:
            self._message_peer.setdefault(pair.send.index, []).append(
                (pair.recv, ">")
            )
            self._message_peer.setdefault(pair.recv.index, []).append(
                (pair.send, "<")
            )

    def header(self):
        cells = [
            "{0}/{1}".format(machine, pid) for machine, pid in self.processes
        ]
        return "  ".join("{0:^9}".format(cell) for cell in cells)

    def rows(self):
        """One row per event, in the consistent global order."""
        for event in self.order:
            column = self._column[event.process]
            cells = ["    .    "] * len(self.processes)
            glyph = _GLYPHS.get(event.event, "?")
            label = "{0}{1}".format(glyph, event.event[1:4])
            peers = self._message_peer.get(event.index, [])
            if peers:
                peer, direction = peers[0]
                label += direction + str(self._column[peer.process])
            cells[column] = "{0:^9}".format(label)
            yield "  ".join(cells) + "   t={0}".format(event.local_time)

    def render(self, max_rows=None):
        lines = [self.header(), "-" * len(self.header())]
        for i, row in enumerate(self.rows()):
            if max_rows is not None and i >= max_rows:
                lines.append("... ({0} more events)".format(len(self.order) - i))
                break
            lines.append(row)
        return "\n".join(lines)


def render_timeline(trace, max_rows=None):
    """Convenience: render a trace's space-time diagram."""
    return Timeline(trace).render(max_rows=max_rows)
