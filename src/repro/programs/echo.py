"""Stream echo: the canonical client/server pair of Section 3.1."""

from repro import guestlib
from repro.kernel import defs


def echo_server(sys, argv):
    """argv: [port, nclients, work_ms] -- echo every message back
    (after ``work_ms`` of per-message computation), serving
    ``nclients`` connections then exiting."""
    port = int(argv[0]) if len(argv) > 0 else 5000
    nclients = int(argv[1]) if len(argv) > 1 else 1
    work_ms = float(argv[2]) if len(argv) > 2 else 0.0

    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", port))
    yield sys.listen(fd, defs.SOMAXCONN)
    for __ in range(nclients):
        conn, __peer = yield sys.accept(fd)
        while True:
            data = yield sys.read(conn, 1024)
            if not data:
                break
            if work_ms > 0:
                yield sys.compute(work_ms)
            yield sys.write(conn, data)
        yield sys.close(conn)
    yield sys.close(fd)
    yield sys.exit(0)


def echo_client(sys, argv):
    """argv: [server, port, nmessages, msgbytes, think_ms]."""
    server = argv[0] if len(argv) > 0 else "red"
    port = int(argv[1]) if len(argv) > 1 else 5000
    nmessages = int(argv[2]) if len(argv) > 2 else 10
    msgbytes = int(argv[3]) if len(argv) > 3 else 64
    think_ms = float(argv[4]) if len(argv) > 4 else 5.0

    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (server, port)
    )
    payload = b"e" * msgbytes
    for __ in range(nmessages):
        yield sys.compute(think_ms)
        yield sys.write(fd, payload)
        remaining = msgbytes
        while remaining > 0:
            data = yield sys.read(fd, remaining)
            if not data:
                break
            remaining -= len(data)
    yield sys.close(fd)
    yield sys.exit(0)
