"""The simulated 4.2BSD kernel.

One :class:`~repro.kernel.machine.Machine` per host.  Each machine has a
process table, a file table, a scheduler with 10 ms CPU accounting
(Section 4.1: "CPU use is updated in increments of 10ms"), a small
in-memory filesystem, and a socket layer implementing the IPC semantics
of Section 3.1 (datagrams and streams, socketpairs, client/server
connection establishment).

Guest programs are Python generator functions ``main(sys, argv)`` that
``yield`` syscall requests built by the :class:`~repro.kernel.syscalls.Sys`
interface; the kernel resumes them with results, or throws
:class:`~repro.kernel.errno.SyscallError` into them.
"""

from repro.kernel import defs
from repro.kernel.errno import (
    EBADF,
    ECONNREFUSED,
    EPERM,
    ESRCH,
    SyscallError,
)
from repro.kernel.machine import Machine
from repro.kernel.process import Proc
from repro.kernel.syscalls import Sys

__all__ = [
    "defs",
    "EBADF",
    "ECONNREFUSED",
    "EPERM",
    "ESRCH",
    "SyscallError",
    "Machine",
    "Proc",
    "Sys",
]
