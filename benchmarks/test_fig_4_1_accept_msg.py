"""Figure 4.1 -- Structure of a message for an accept() call.

Byte-level regeneration of the accept meter message (header: size,
machine, local clock, procTime, traceType; body: pid, pc, socket, new
socket, name lengths, both names), plus a live capture check: the
kernel's accept hook produces exactly this structure.
"""

from benchmarks.conftest import codec, fresh_session
from repro.analysis import Trace
from repro.metering.messages import MessageCodec, message_length
from repro.net.addresses import InternetName

FIELDS_OF_FIGURE_4_1 = [
    "size", "machine", "cpuTime", "procTime", "traceType",
    "pid", "pc", "sock", "newSock",
    "sockNameLen", "peerNameLen", "sockName", "peerName",
]


def test_fig_4_1_accept_message_codec(benchmark):
    mc = MessageCodec({1: "red", 2: "green"})
    sock_name = InternetName("red", 5000, 1)
    peer_name = InternetName("green", 1026, 2)

    def round_trip():
        raw = mc.encode(
            "accept",
            machine=1,
            cpu_time=4242,
            proc_time=20,
            pid=2117,
            pc=4,
            sock=0x1010,
            newSock=0x1020,
            sockName=sock_name,
            peerName=peer_name,
            **mc.name_lengths(sockName=sock_name, peerName=peer_name)
        )
        return raw, mc.decode(raw)

    raw, record = benchmark(round_trip)
    assert len(raw) == message_length("accept") == 80
    for field in FIELDS_OF_FIGURE_4_1:
        assert field in record, field
    print("\n[fig 4.1] accept message: {0} bytes, fields {1}".format(
        len(raw), FIELDS_OF_FIGURE_4_1))


def test_fig_4_1_live_accept_capture(benchmark):
    def capture():
        session = fresh_session(seed=7)
        session.command("filter f1 blue")
        session.command("newjob j")
        session.command("addprocess j red echoserver 5000 1")
        session.command("addprocess j green echoclient red 5000 2 32 1")
        session.command("setflags j accept connect")
        session.command("startjob j")
        session.settle()
        return Trace(session.read_trace("f1"))

    trace = benchmark.pedantic(capture, rounds=1, iterations=1)
    accepts = trace.by_type("accept")
    assert len(accepts) == 1
    record = accepts[0].record
    assert record["sockName"] == "inet:red:5000"
    assert record["peerName"].startswith("inet:green:")
    assert record["newSock"] != record["sock"]
    assert record["size"] == 80
