"""Typed trace-store errors.

Every storage-integrity failure raises one of these instead of a bare
``ValueError``, so callers can tell "this store is damaged" apart from
ordinary argument errors and react per class (skip a segment, switch to
salvage, refuse to trust the scan).  The hierarchy still subclasses
``ValueError`` so pre-existing ``except ValueError`` call sites keep
working unchanged.

- :class:`StoreError` -- base class for all store integrity errors;
- :class:`BadSegmentHeaderError` -- the first 8 bytes are not a valid
  segment header (foreign file, truncated header, unknown version);
- :class:`CorruptSegmentError` -- a segment's data region is damaged;
- :class:`CorruptFrameError` -- one specific frame failed its CRC or
  overran the committed region (carries the byte offset).
"""


class StoreError(ValueError):
    """Base class: a trace store failed an integrity check."""

    def __init__(self, message, path=None):
        super().__init__(message)
        self.path = path

    def __str__(self):
        base = super().__str__()
        if self.path:
            return "{0}: {1}".format(self.path, base)
        return base


class BadSegmentHeaderError(StoreError):
    """The segment header is unreadable: wrong magic (a foreign file),
    too short, or an unsupported format version."""

    def __init__(self, message, path=None, foreign=False):
        super().__init__(message, path=path)
        #: True when the magic itself is wrong -- the file was never a
        #: trace-store segment (as opposed to a damaged/newer one).
        self.foreign = foreign


class CorruptSegmentError(StoreError):
    """A segment's data region holds bytes that are provably not the
    frames the writer appended."""

    def __init__(self, message, path=None, offset=None):
        super().__init__(message, path=path)
        #: Byte offset (within the segment) where corruption was found.
        self.offset = offset


class CorruptFrameError(CorruptSegmentError):
    """One frame failed its integrity check (v2 CRC mismatch, or a
    frame overrunning the sealed data region)."""
