"""The process structure.

Mirrors the 4.2BSD ``proc`` entry plus the paper's three additions
(Section 3.2):

    "For the purpose of metering, three fields have been added to the
    process structures in the process table.  One field is a pointer to
    the *meter socket* ... A second field is a bit mask indicating the
    events to be metered ... The third field is a pointer to meter
    messages that have yet to be sent."

The meter socket's file-table entry is held here, **not** in the
descriptor table, so the process cannot see or touch it and it does not
reduce the number of descriptors available to the process.
"""

from collections import deque

from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from repro.kernel.waitq import WaitQueue


class Proc:
    """One process: address space (the generator), descriptors, state."""

    def __init__(self, machine, pid, uid, program_name, ppid=0):
        self.machine = machine
        self.pid = pid
        self.uid = uid
        self.ppid = ppid
        self.program_name = program_name
        self.argv = []

        #: Kernel-level run state (defs.PROC_*).
        self.state = defs.PROC_EMBRYO
        #: True while SIGSTOP'd (or still suspended pre-first-instruction).
        self.stopped = True

        #: fd -> FileTableEntry.
        self.fds = {}

        #: The guest generator; created at first dispatch.
        self.gen = None
        #: The guest main function.
        self.main = None

        # Pending resume information for the next dispatch.
        self.pending_value = None
        self.pending_exc = None
        self.has_pending = False
        #: A blocked syscall to retry: (handler, request) or None.
        self.retry = None
        #: Scratch state a blocking handler keeps across retries.
        self.syscall_state = {}
        #: WaitQueues this proc is currently parked on.
        self.waiting_on = []

        # CPU accounting.  ``cpu_ms`` is exact; ``proc_time()`` reports
        # it at the 10ms granularity of Section 4.1.
        self.cpu_ms = 0.0
        #: Count of generator resumptions; stands in for the program
        #: counter in meter messages (see DESIGN.md substitutions).
        self.step_count = 0
        self.syscall_count = 0

        # Metering fields (the paper's proc-table additions).
        self.meter_entry = None  # FileTableEntry of the meter socket
        self.meter_flags = 0
        self.meter_buffer = []  # encoded messages not yet sent

        # At-least-once delivery state (PR 5).  Every flushed batch is
        # stamped with ``meter_seq`` and kept in ``meter_window`` (a
        # deque of (seq, wire bytes, record count, sent flag)) until the
        # window rolls over; a reconnecting filter gets the window
        # retransmitted and dedups on its side.  ``meter_pending_dest``
        # remembers the filter's socket name while the connection is
        # down so a replacement connection can be recognised.
        self.meter_seq = 0
        self.meter_window = deque()
        self.meter_pending_dest = None

        # Parent/child bookkeeping.
        self.children = set()
        #: Termination reports from children: dicts with pid/status/reason.
        self.child_events = deque()
        #: Woken when a child changes state (select want_children).
        self.child_wait = WaitQueue("children")

        # Exit info.
        self.exit_status = None
        self.exit_reason = None

    # ------------------------------------------------------------------

    def proc_time(self):
        """CPU time charged to the process, at 10 ms granularity."""
        tick = defs.CPU_TICK_MS
        return int(self.cpu_ms // tick) * tick

    def charge_cpu(self, ms):
        self.cpu_ms += ms

    # -- descriptor management -----------------------------------------

    def alloc_fd(self, entry):
        """Install ``entry`` at the lowest free descriptor (BSD rule)."""
        for fd in range(defs.NOFILE):
            if fd not in self.fds:
                self.fds[fd] = self.machine.file_table.ref(entry)
                return fd
        raise SyscallError(errno.EMFILE)

    def install_fd(self, fd, entry):
        """Install ``entry`` at a specific descriptor (dup2)."""
        if fd < 0 or fd >= defs.NOFILE:
            raise SyscallError(errno.EBADF, "fd %d" % fd)
        if fd in self.fds:
            self.machine.file_table.unref(self.fds.pop(fd))
        self.fds[fd] = self.machine.file_table.ref(entry)
        return fd

    def lookup_fd(self, fd):
        entry = self.fds.get(fd)
        if entry is None:
            raise SyscallError(errno.EBADF, "fd %r" % fd)
        return entry

    def lookup_socket(self, fd):
        entry = self.lookup_fd(fd)
        if entry.kind != "socket":
            raise SyscallError(errno.ENOTSOCK, "fd %d" % fd)
        return entry

    def close_fd(self, fd):
        entry = self.fds.pop(fd, None)
        if entry is None:
            raise SyscallError(errno.EBADF, "fd %r" % fd)
        self.machine.file_table.unref(entry)
        return entry

    def close_all_fds(self):
        for fd in list(self.fds):
            entry = self.fds.pop(fd)
            self.machine.file_table.unref(entry)

    # ------------------------------------------------------------------

    def clear_wait_state(self):
        """Remove this proc from every wait queue (syscall finished)."""
        for queue in self.waiting_on:
            queue.discard(self)
        self.waiting_on = []
        self.retry = None
        self.syscall_state = {}

    def is_active(self):
        return self.state not in (defs.PROC_ZOMBIE,)

    def __repr__(self):
        return "Proc(pid={0}, {1!r}@{2}, state={3})".format(
            self.pid, self.program_name, self.machine.host.name, self.state
        )
