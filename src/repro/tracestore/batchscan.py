"""Batch fast lane: fused decode + columnar rule pre-screen.

:meth:`StoreReader.scan` is the *oracle*: one codec decode per frame,
one dict per record, predicates and rules interpreted over dicts.  At
~200k events/s that is the whole cost of an interactive query loop, so
this module compiles the same semantics down to batch-shaped work:

- **Fused frame decode.**  Frames of one payload length share one
  precompiled ``struct.Struct`` covering frame header + message header
  + the body's long prefix (every Appendix-A body is longs first, then
  16-byte NAME blobs), so splitting a frame and decoding its integer
  columns is a single ``unpack_from``.  Stores are bursty -- runs of
  frames share a length and a traceType -- so the walk speculatively
  reuses the previous frame's layout and re-resolves only on change.
- **Columnar rule pre-screen.**  For each traceType the candidate rule
  list (:meth:`RuleSet.candidates`, the exact dispatch ``apply`` uses)
  is compiled to one generated function over the unpacked tuple.  It
  returns an accept token (carrying a discard-specialized record
  materializer), ``None`` (no rule can match: the record dict is never
  built), or a candidate index when a condition needs a decoded NAME
  field -- then, and only then, the full dict path runs.  A discard
  mask hides a field from the rules, so every inline condition is
  guarded by a required-field bitmask test against the frame's mask.
- **Lazy record materialization.**  Accepted records are built by a
  generated dict-literal function in exactly the codec's key order;
  NAME blobs decode through a per-scan cache keyed on their raw bytes.
- **Checksum hoisting.**  Segments whose footer carries ``data_crc32``
  are verified with one CRC32 sweep over the whole frame region
  instead of one per frame; a mismatch falls back to the per-frame
  oracle walk so the error surfaces at the exact offset.

Anything the fused path cannot prove equivalent -- unsealed tails
(commit truncation), salvage mode, frames whose length or size field
does not match a known message layout, damaged regions -- drops to the
oracle (per frame or per segment), so the fast lane is record-identical
to ``scan`` + ``RuleSet.apply`` on v1, v2, compressed and mixed stores.
One documented difference: the fast lane buffers a sealed segment's
records before yielding them, so in strict mode a corruption error in
segment N surfaces *before* N's earlier records instead of after them
(the record stream up to the raise differs only in that suffix).

:func:`message_screen` reuses the rule compiler for the live filter:
a screen over raw wire messages (no frame header, no masks) that can
only ever *definitively reject*, never wrongly accept -- anything
unusual passes through to the full decode path.
"""

import heapq
import struct
import zlib

from repro.filtering.rules import _ALIASES
from repro.metering.messages import (
    BATCH_MARKER_TYPE,
    BODY_FIELDS,
    EVENT_TYPES,
    HEADER_BYTES,
    is_batch_marker,
    message_length,
    record_fields,
)
from repro.net.addresses import decode_name
from repro.tracestore import format as sformat
from repro.tracestore.errors import CorruptFrameError, CorruptSegmentError
from repro.tracestore.reader import ScanStats

_U32 = struct.Struct(">I")

#: Tuple index of the message header's ``size`` field per frame
#: version: v2 frames prefix (length, mask, crc32), v1 (length, mask),
#: version 0 is a bare wire message (the live filter's screen).
_BASE = {0: 0, 1: 2, 2: 3}
_PREFIX = {0: ">", 1: ">II", 2: ">III"}
_OVERHEADS = {0: 0, 1: sformat.FRAME_OVERHEAD_BYTES_V1,
              2: sformat.FRAME_OVERHEAD_BYTES}

_OP_TEXT = {"=": "==", "!=": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">="}

_LAYOUTS = {}
_INFOS = {}
_MATS = {}


def _name_lookup(host_names):
    """A cached raw-NAME-bytes -> display-string decoder (one cache per
    scan: stores repeat a small set of socket names endlessly)."""
    cache = {}

    def look(raw):
        text = cache.get(raw)
        if text is None:
            decoded = decode_name(raw, host_names)
            text = cache[raw] = decoded.display() if decoded is not None else ""
        return text

    return look


def _materializer(version, event, discards):
    """Generate ``mat(t, buf, noff, look) -> record dict`` with keys in
    exactly the codec's order, omitting ``discards`` so an accepted
    record never needs a second dict pass."""
    key = (version, event, discards)
    mat = _MATS.get(key)
    if mat is not None:
        return mat
    base = _BASE[version]
    parts = []
    for offset, name in enumerate(
        ("size", "machine", "cpuTime", "procTime", "traceType")
    ):
        if name not in discards:
            parts.append("%r: t[%d]" % (name, base + offset))
    if "event" not in discards:
        parts.append("'event': %r" % event)
    long_i = name_i = 0
    for name, kind in BODY_FIELDS[event]:
        if kind == "long":
            if name not in discards:
                parts.append("%r: t[%d]" % (name, base + 5 + long_i))
            long_i += 1
        else:
            if name not in discards:
                parts.append(
                    "%r: look(buf[noff + %d : noff + %d])"
                    % (name, 16 * name_i, 16 * name_i + 16)
                )
            name_i += 1
    source = "def mat(t, buf, noff, look):\n    return {%s}\n" % ", ".join(parts)
    namespace = {}
    exec(source, namespace)
    mat = _MATS[key] = namespace["mat"]
    return mat


class _Accept:
    """Screen accept token: carries the rule's discard-specialized
    materializer (``screen(t) is an _Accept`` means "this rule matched
    on columns alone; build the reduced record directly")."""

    __slots__ = ("mat",)

    def __init__(self, mat):
        self.mat = mat


class _EventInfo:
    """Column layout of one (frame version, event) pair."""

    __slots__ = (
        "event", "type_code", "long_index", "name_set", "name_index",
        "field_bits", "names_offset", "pid_index", "mat", "_mask_cache",
    )

    def __init__(self, version, event):
        base = _BASE[version]
        longs = [n for n, kind in BODY_FIELDS[event] if kind == "long"]
        self.event = event
        self.type_code = EVENT_TYPES[event]
        index = {
            "size": base, "machine": base + 1, "cpuTime": base + 2,
            "procTime": base + 3, "traceType": base + 4,
        }
        for i, name in enumerate(longs):
            index[name] = base + 5 + i
        self.long_index = index
        self.name_set = frozenset(
            n for n, kind in BODY_FIELDS[event] if kind == "name"
        )
        #: NAME field -> slot among the body's trailing 16-byte blobs.
        self.name_index = {
            n: i
            for i, n in enumerate(
                n for n, kind in BODY_FIELDS[event] if kind == "name"
            )
        }
        #: Bit of each field in the discard mask (the writer's bitmap
        #: is over ``record_fields`` order).
        self.field_bits = {
            name: i for i, name in enumerate(record_fields(event))
        }
        self.names_offset = _OVERHEADS[version] + HEADER_BYTES + 4 * len(longs)
        self.pid_index = index.get("pid")
        self.mat = _materializer(version, event, frozenset())
        self._mask_cache = {}

    def masked(self, mask):
        names = self._mask_cache.get(mask)
        if names is None:
            names = self._mask_cache[mask] = sformat.masked_fields(
                self.event, mask
            )
        return names


def _event_info(version, event):
    key = (version, event)
    info = _INFOS.get(key)
    if info is None:
        info = _INFOS[key] = _EventInfo(version, event)
    return info


def _layout(version, length):
    """(fused unpack_from, {traceType: _EventInfo}) for frames whose
    payload is ``length`` bytes; (None, None) when the payload cannot
    even hold a message header (per-frame oracle fallback)."""
    key = (version, length)
    entry = _LAYOUTS.get(key)
    if entry is not None:
        return entry
    if length < HEADER_BYTES:
        entry = _LAYOUTS[key] = (None, None)
        return entry
    native = [e for e in BODY_FIELDS if message_length(e) == length]
    shapes = set()
    for event in native:
        kinds = [kind for __, kind in BODY_FIELDS[event]]
        nlongs = kinds.count("long")
        if kinds[:nlongs] != ["long"] * nlongs:
            shapes = None  # body is not longs-then-names: no fused layout
            break
        shapes.add(nlongs)
    if shapes is None or len(shapes) > 1:
        nlongs, infos = 0, {}
    else:
        nlongs = shapes.pop() if shapes else 0
        infos = {EVENT_TYPES[e]: _event_info(version, e) for e in native}
    fused = struct.Struct(
        _PREFIX[version] + "ih2xi4xii" + "i" * nlongs
    )
    entry = _LAYOUTS[key] = (fused.unpack_from, infos)
    return entry


# ----------------------------------------------------------------------
# Condition compilation (column expressions over the unpacked tuple)
# ----------------------------------------------------------------------


def _name_col(slot):
    """The decoded-display-string expression for NAME slot ``slot``
    (``noff`` is the record's first NAME byte; ``look`` the per-scan
    raw -> display cache, so a repeated name costs one dict hit)."""
    return "look(buf[noff + %d : noff + %d])" % (16 * slot, 16 * slot + 16)


def _cmp_expr(cond, op, actual, expected):
    """Python expression (or const "True"/"False") comparing two
    operands, each ("const", value), ("long", tuple index) or
    ("name", NAME slot), with :meth:`Condition._compare`'s type rules:
    int/int numeric, anything else as strings."""
    actual_kind, actual_val = actual
    expected_kind, expected_val = expected
    if actual_kind == "const" and expected_kind == "const":
        return "True" if cond._compare(actual_val, expected_val) else "False"
    if actual_kind == "long" and expected_kind == "long":
        return "(t[%d] %s t[%d])" % (actual_val, op, expected_val)
    if actual_kind == "name" or expected_kind == "name":
        # A NAME column is a display string, so this is _compare's
        # string branch: coerce the other operand to str.
        if actual_kind == "name":
            left = _name_col(actual_val)
        elif actual_kind == "long":
            left = "str(t[%d])" % actual_val
        else:
            left = repr(str(actual_val))
        if expected_kind == "name":
            right = _name_col(expected_val)
        elif expected_kind == "long":
            right = "str(t[%d])" % expected_val
        else:
            right = repr(str(expected_val))
        return "(%s %s %s)" % (left, op, right)
    if actual_kind == "long":
        if isinstance(expected_val, int):
            return "(t[%d] %s %d)" % (actual_val, op, expected_val)
        return "(str(t[%d]) %s %r)" % (actual_val, op, str(expected_val))
    if isinstance(actual_val, int):
        return "(%d %s t[%d])" % (actual_val, op, expected_val)
    return "(%r %s str(t[%d]))" % (str(actual_val), op, expected_val)


def _finish(cond, op, actual, expected, refbit, bits, version,
            masked_expected=None):
    present = _cmp_expr(cond, op, actual, expected)
    if refbit and masked_expected is not None and version != 0:
        # A masked cross-field reference falls back to the literal
        # string (Condition.matches: absent ref -> literal).
        masked = _cmp_expr(cond, op, actual, masked_expected)
        if masked != present:
            present = "((%s) if not (m & %d) else (%s))" % (
                present, refbit, masked
            )
    if present == "True":
        return ("inline", True, bits)
    if present == "False":
        return ("never", None, 0)
    return ("inline", present, bits)


def _condition_expr(cond, info, version, names_ok=True):
    """Lower one condition against an event layout.

    Returns (kind, expr, required_bits): kind "inline" with expr a
    Python expression over ``t``/``m``/``buf``/``noff``/``look`` (or
    True when the presence guard alone decides), "defer" when a
    decoded NAME field is needed but ``names_ok`` is off (no host
    table: display strings cannot be computed, so the dict path must
    decide), or "never" when no record of this type can satisfy it.
    ``required_bits`` are the mask bits that must be *clear* (a masked
    field is absent, and an absent field fails every condition).
    """
    field = cond.field
    field_bit = info.field_bits.get(field)
    bits = (1 << field_bit) if field_bit is not None else 0
    if field == "event":
        actual = ("const", info.event)
    elif field == "traceType":
        # Within one screen the traceType is a known constant.
        actual = ("const", info.type_code)
    elif field in info.long_index:
        actual = ("long", info.long_index[field])
    elif field in info.name_set:
        actual = ("name", info.name_index[field]) if names_ok else None
    else:
        return ("never", None, 0)  # field never present on this event
    if cond.is_wildcard:
        return ("inline", True, bits)
    if actual is None:
        return ("defer", None, bits)
    op = _OP_TEXT[cond.op]
    if not cond.is_field_ref:
        return _finish(cond, op, actual, ("const", cond.value), 0, bits,
                       version)
    ref = _ALIASES.get(cond.value, cond.value)
    literal = ("const", cond.value)
    if ref == "event":
        return _finish(cond, op, actual, ("const", info.event), 0, bits,
                       version)
    if ref == "traceType":
        return _finish(cond, op, actual, ("const", info.type_code),
                       1 << info.field_bits["traceType"], bits, version,
                       masked_expected=literal)
    if ref in info.long_index:
        return _finish(cond, op, actual, ("long", info.long_index[ref]),
                       1 << info.field_bits[ref], bits, version,
                       masked_expected=literal)
    if ref in info.name_set:
        if not names_ok:
            return ("defer", None, bits)
        return _finish(cond, op, actual, ("name", info.name_index[ref]),
                       1 << info.field_bits[ref], bits, version,
                       masked_expected=literal)
    # Reference to a field this event never carries: literal string.
    return _finish(cond, op, actual, literal, 0, bits, version)


def _compile_screen(candidates, version, info, names_ok=True):
    """Generate ``screen(t, buf, noff, look)`` for one traceType: the
    first-match walk over ``candidates`` (the exact list
    ``RuleSet.apply`` consults), evaluated on columns -- NAME columns
    read straight out of ``buf`` at ``noff`` and displayed via
    ``look`` when ``names_ok``.  Returns an :class:`_Accept`, a
    candidate index to resume the dict-path walk from (a NAME
    condition that could not be compiled), or None (no rule can match
    -- the record is never materialized)."""
    body = []
    namespace = {}
    for index, crule in enumerate(candidates):
        if crule.accepts_all:
            # apply() accepts without any check (even masked fields).
            token = "A%d" % index
            namespace[token] = _Accept(
                _materializer(version, info.event, crule.discards)
            )
            body.append("    return %s" % token)
            break
        parts = []
        required = 0
        deferred = impossible = False
        for cond in crule.rule.conditions:
            kind, expr, bits = _condition_expr(cond, info, version,
                                               names_ok)
            if kind == "never":
                impossible = True
                break
            required |= bits
            if kind == "defer":
                deferred = True
            elif expr is not True:
                parts.append(expr)
        if impossible:
            continue
        if required and version != 0:
            parts.insert(0, "not (m & %d)" % required)
        if deferred:
            result = str(index)
        else:
            token = "A%d" % index
            namespace[token] = _Accept(
                _materializer(version, info.event, crule.discards)
            )
            result = token
        if parts:
            body.append("    if %s:" % " and ".join(parts))
            body.append("        return %s" % result)
        else:
            body.append("    return %s" % result)
            break
    body.append("    return None")
    lines = ["def screen(t, buf, noff, look):"]
    if any("(m & " in line for line in body):
        lines.append("    m = t[1]")
    lines.extend(body)
    exec("\n".join(lines) + "\n", namespace)
    return namespace["screen"]


class _Program:
    """Per-(frame version, rule set) compilation state: layouts plus
    per-traceType screens, resolved lazily by payload length.

    ``names`` says whether screens may compile NAME conditions to
    columnar display-string compares: only safe when the caller's host
    table is the one the records will be decoded with (store scans use
    the store's own codec table, so always true there)."""

    __slots__ = ("version", "ruleset", "by_length", "names")

    def __init__(self, version, ruleset, names=True):
        self.version = version
        self.ruleset = ruleset
        self.by_length = {}
        self.names = names

    def entry(self, length):
        unpack, infos = _layout(self.version, length)
        if unpack is None:
            entry = (None, None)
        else:
            typedisp = {}
            for type_code, info in infos.items():
                if self.ruleset is None:
                    typedisp[type_code] = (info, None, None)
                else:
                    cands = self.ruleset.candidates(type_code)
                    typedisp[type_code] = (
                        info,
                        _compile_screen(cands, self.version, info,
                                        self.names),
                        cands,
                    )
            entry = (unpack, typedisp)
        self.by_length[length] = entry
        return entry


# ----------------------------------------------------------------------
# The segment walk
# ----------------------------------------------------------------------


def _walk_segment(path, buf, start, end, out_append, program, ruleset,
                  codec, look, stats, check_crc, machine_set, pid_set,
                  event_set, t_min, t_max):
    """Walk one sealed segment's frame region, appending final records
    (predicates, masks and rules applied) to ``out_append``.  Exactly
    :meth:`StoreReader._segment_records` + ``RuleSet.apply``, lowered.
    """
    version = program.version
    overhead = _OVERHEADS[version]
    base = _BASE[version]
    size_ix, machine_ix, cpu_ix, tt_ix = base, base + 1, base + 2, base + 4
    filtered = not (
        machine_set is None and pid_set is None and event_set is None
        and t_min is None and t_max is None
    )
    u32 = _U32.unpack_from
    frame_crc = sformat.frame_crc
    struct_error = struct.error
    by_length = program.by_length
    resolve = program.entry
    marker_type = BATCH_MARKER_TYPE
    decoded = yielded = prescreened = salvaged = 0
    damaged = False

    def fallback(off, nxt):
        """Per-frame oracle: the codec decodes (or faults on) frames
        the fused path cannot prove it understands."""
        nonlocal decoded, yielded, salvaged, damaged
        payload = buf[off + overhead : nxt]
        if is_batch_marker(payload):
            return
        mask = u32(buf, off + 4)[0]
        try:
            record = codec.decode(payload)
        except ValueError as err:
            # v2 frames are CRC-verified, so this is real damage (the
            # strict scan raises); v1 has no checksum to consult, so
            # the loss is counted, exactly like the oracle.
            if version == sformat.FORMAT_VERSION_V1:
                stats.frames_corrupt += 1
                stats.bytes_quarantined += len(payload) + overhead
                stats.segment_errors.append(
                    (path, "undecodable frame: %s" % err)
                )
                damaged = True
                return
            raise CorruptSegmentError(
                "undecodable frame payload: %s" % err, path=path
            )
        decoded += 1
        if damaged:
            salvaged += 1
        if event_set is not None and record["event"] not in event_set:
            return
        if machine_set is not None and record["machine"] not in machine_set:
            return
        if pid_set is not None:
            if (record["machine"], record.get("pid")) not in pid_set:
                return
        time = record["cpuTime"]
        if t_min is not None and time < t_min:
            return
        if t_max is not None and time > t_max:
            return
        if mask:
            for name in sformat.masked_fields(record["event"], mask):
                record.pop(name, None)
        yielded += 1
        if ruleset is not None:
            record = ruleset.apply(record)
            if record is None:
                return
        out_append(record)

    off = start
    cur_len = -1
    unpack = typedisp = None
    last_tt = last_trio = None
    while off + overhead <= end:
        t = None
        if unpack is not None:
            # Speculate: reuse the previous frame's layout (t[0] is the
            # real length word, so a stale layout can never stick).
            try:
                t = unpack(buf, off)
            except struct_error:
                t = None
            else:
                if t[0] != cur_len:
                    t = None
        if t is None:
            length = u32(buf, off)[0]
            if length != cur_len:
                entry = by_length.get(length)
                if entry is None:
                    entry = resolve(length)
                unpack, typedisp = entry
                cur_len = length
                last_tt = last_trio = None
            nxt = off + overhead + cur_len
            if nxt > end:
                raise CorruptFrameError(
                    "frame at offset %d overruns the sealed data region"
                    % off,
                    path=path, offset=off,
                )
            if unpack is None:
                fallback(off, nxt)  # shorter than a message header
                off = nxt
                continue
            t = unpack(buf, off)
        else:
            nxt = off + overhead + cur_len
            if nxt > end:
                raise CorruptFrameError(
                    "frame at offset %d overruns the sealed data region"
                    % off,
                    path=path, offset=off,
                )
        if check_crc and frame_crc(
            cur_len, t[1], buf[off + overhead : nxt]
        ) != t[2]:
            raise CorruptFrameError(
                "frame CRC mismatch at offset %d" % off,
                path=path, offset=off,
            )
        tt = t[tt_ix]
        if tt != last_tt:
            last_tt = tt
            last_trio = typedisp.get(tt)
        trio = last_trio
        if trio is None or t[size_ix] > cur_len:
            if tt == marker_type:
                off = nxt  # delivery-protocol control frame
                continue
            fallback(off, nxt)
            off = nxt
            continue
        info = trio[0]
        decoded += 1
        if damaged:
            salvaged += 1
        if filtered:
            if event_set is not None and info.event not in event_set:
                off = nxt
                continue
            if machine_set is not None and t[machine_ix] not in machine_set:
                off = nxt
                continue
            if pid_set is not None:
                pid_ix = info.pid_index
                pid = t[pid_ix] if pid_ix is not None else None
                if (t[machine_ix], pid) not in pid_set:
                    off = nxt
                    continue
            time = t[cpu_ix]
            if t_min is not None and time < t_min:
                off = nxt
                continue
            if t_max is not None and time > t_max:
                off = nxt
                continue
        mask = t[1]
        handler = trio[1]
        if handler is None:
            record = info.mat(t, buf, off + info.names_offset, look)
            if mask:
                for name in info.masked(mask):
                    record.pop(name, None)
            yielded += 1
            out_append(record)
            off = nxt
            continue
        res = handler(t, buf, off + info.names_offset, look)
        if res is None:
            yielded += 1
            prescreened += 1
            off = nxt
            continue
        if res.__class__ is _Accept:
            record = res.mat(t, buf, off + info.names_offset, look)
            if mask:
                for name in info.masked(mask):
                    record.pop(name, None)
            yielded += 1
            out_append(record)
            off = nxt
            continue
        # A NAME-field condition: materialize and resume the exact
        # first-match walk from the deferring candidate.
        record = info.mat(t, buf, off + info.names_offset, look)
        if mask:
            for name in info.masked(mask):
                record.pop(name, None)
        yielded += 1
        for crule in trio[2][res:]:
            if crule.accepts_all or crule.matches(record):
                discards = crule.discards
                if discards:
                    record = {
                        key: value
                        for key, value in record.items()
                        if key not in discards
                    }
                out_append(record)
                break
        off = nxt
    stats.records_decoded += decoded
    stats.records_yielded += yielded
    stats.records_prescreened += prescreened
    stats.records_salvaged += salvaged


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def _iter_fast(reader, ruleset, machines, pids, events, t_min, t_max):
    stats = reader.last_stats = ScanStats()
    stats.segments_total = len(reader.segments)
    machine_set = set(machines) if machines is not None else None
    pid_set = set(pids) if pids is not None else None
    event_set = set(events) if events is not None else None
    #: Rule-event pushdown: a sealed segment holding only events no
    #: rule can ever accept is skipped on its footer alone.  Guarded to
    #: segments whose footer names only decodable event types, so a
    #: strict scan's corruption errors are not skipped along with it.
    rule_events = ruleset.pinned_events() if ruleset is not None else None
    codec = reader.codec
    look = _name_lookup(codec.host_names)
    programs = {}
    for segment in reader.segments:
        if not segment.valid:
            stats.segments_bad_header += 1
            stats.segment_errors.append(
                (segment.path, str(segment.header_error))
            )
            continue
        if segment.sealed:
            footer = segment.footer
            if not sformat.footer_matches(
                footer, machines=machine_set, pids=pid_set,
                events=event_set, t_min=t_min, t_max=t_max,
            ):
                stats.segments_skipped += 1
                continue
            if rule_events is not None:
                keys = footer["events"]
                if all(key in EVENT_TYPES for key in keys) and not any(
                    key in rule_events for key in keys
                ):
                    stats.segments_skipped += 1
                    continue
        else:
            stats.segments_recovered += 1
        stats.segments_scanned += 1
        stats.bytes_scanned += segment.data_bytes()
        if not segment.sealed:
            # Unsealed tails need marker-based commit truncation: the
            # oracle walk is authoritative (and tails are small).
            for record in reader._segment_records(
                segment, stats, machine_set, pid_set, event_set,
                t_min, t_max, False,
            ):
                if ruleset is not None:
                    record = ruleset.apply(record)
                    if record is None:
                        continue
                yield record
            continue
        version = segment.version
        program = programs.get(version)
        if program is None:
            program = programs[version] = _Program(version, ruleset)
        buf, start, end = segment.frame_region()
        check_crc = False
        if version == sformat.FORMAT_VERSION:
            region_crc = segment.footer.get("data_crc32")
            if region_crc is None:
                check_crc = True  # old v2 segment: verify per frame
            elif zlib.crc32(
                memoryview(buf)[start:end]
            ) & 0xFFFFFFFF != region_crc:
                # One region sweep failed: re-walk with the oracle so
                # the error carries the exact frame offset.
                for record in reader._segment_records(
                    segment, stats, machine_set, pid_set, event_set,
                    t_min, t_max, False,
                ):
                    if ruleset is not None:
                        record = ruleset.apply(record)
                        if record is None:
                            continue
                    yield record
                continue
        out = []
        _walk_segment(
            segment.path, buf, start, end, out.append, program, ruleset,
            codec, look, stats, check_crc, machine_set, pid_set,
            event_set, t_min, t_max,
        )
        yield from out


def scan_fast(reader, machines=None, pids=None, events=None, t_min=None,
              t_max=None, salvage=False):
    """Drop-in fast :meth:`StoreReader.scan`: same records, same order,
    same strict-mode errors (modulo the buffering note above), same
    ``reader.last_stats`` accounting.  Salvage mode needs the oracle's
    resynchronization machinery and delegates to it wholesale."""
    if salvage:
        yield from reader.scan(
            machines=machines, pids=pids, events=events,
            t_min=t_min, t_max=t_max, salvage=True,
        )
        return
    yield from _iter_fast(reader, None, machines, pids, events, t_min, t_max)


def select(reader, ruleset=None, machines=None, pids=None, events=None,
           t_min=None, t_max=None, salvage=False):
    """Scan + rule selection in one fused pass; returns the list of
    accepted (reduced) records -- exactly
    ``[ruleset.apply(r) for r in reader.scan(...)]`` minus the Nones.
    Interpreted (``compiled=False``) rule sets and salvage scans run
    the oracle directly."""
    if ruleset is not None and not ruleset.rules:
        ruleset = None  # empty rule set accepts everything unreduced
    if salvage or (ruleset is not None and not ruleset.compiled):
        out = []
        for record in reader.scan(
            machines=machines, pids=pids, events=events,
            t_min=t_min, t_max=t_max, salvage=salvage,
        ):
            if ruleset is not None:
                record = ruleset.apply(record)
                if record is None:
                    continue
            out.append(record)
        return out
    return list(
        _iter_fast(reader, ruleset, machines, pids, events, t_min, t_max)
    )


def merge_scan_fast(readers, **predicates):
    """K-way merge of fast scans by (cpuTime, machine): the fast-lane
    :func:`repro.tracestore.reader.merge_scan`."""
    streams = [scan_fast(reader, **predicates) for reader in readers]
    return heapq.merge(
        *streams,
        key=lambda record: (record.get("cpuTime", 0), record.get("machine", 0))
    )


def message_screen(ruleset, host_names=None):
    """A raw-wire-message pre-screen for the live filter: returns
    ``screen(raw) -> bool`` that is False only when *no* rule can
    accept the decoded record, or None when the rule set cannot screen
    (uncompiled or empty -- an empty set accepts everything).

    The screen can only reject on evidence: messages of unknown type,
    unusual length, or (without ``host_names``) rules needing NAME
    fields all pass through (True) to the full decode + apply path.
    Pass the filter's host table as ``host_names`` to let NAME
    conditions screen columnar too -- only safe when it is the same
    table the accepted records will be decoded with.  The caller is
    responsible for only installing the screen when its record
    descriptions match the Appendix-A layouts it compiles against."""
    if ruleset is None or not ruleset.compiled or not ruleset.rules:
        return None
    program = _Program(0, ruleset, names=host_names is not None)
    by_length = program.by_length
    resolve = program.entry
    struct_error = struct.error
    look = _name_lookup(host_names or {})

    def screen(raw):
        length = len(raw)
        entry = by_length.get(length)
        if entry is None:
            entry = resolve(length)
        unpack = entry[0]
        if unpack is None:
            return True
        try:
            t = unpack(raw)
        except struct_error:
            return True
        trio = entry[1].get(t[4])
        if trio is None:
            return True
        return trio[1](t, raw, trio[0].names_offset, look) is not None

    return screen
