"""Controller bookkeeping: filters, jobs, process records."""

from repro.controller import states


class FilterInfo:
    """One filter process known to the controller."""

    def __init__(
        self,
        name,
        machine,
        pid,
        meter_host,
        meter_port,
        log_path,
        filterfile="filter",
        descriptions="descriptions",
        templates="templates",
    ):
        self.name = name
        self.machine = machine
        self.pid = pid
        #: Where meters connect: exchanged as (literal host, port)
        #: per Section 3.5.4.
        self.meter_host = meter_host
        self.meter_port = meter_port
        self.log_path = log_path
        #: How to launch it again: kept for crash recovery (the daemon
        #: relaunches with these; ``resume`` recreates from these).
        self.filterfile = filterfile
        self.descriptions = descriptions
        self.templates = templates
        #: Meter ports of earlier incarnations.  Kernels park orphaned
        #: batches keyed by the port their meter last pointed at; a
        #: machine that was unreachable during a filter restart still
        #: has spools under these, so reconcile drains all of them.
        self.past_ports = []


class ProcessRecord:
    """One process of a job, tracked through its life cycle."""

    def __init__(self, procname, jobname, machine, pid, state):
        self.procname = procname
        self.jobname = jobname
        self.machine = machine
        self.pid = pid
        self.state = state
        self.flags = 0

    def __repr__(self):
        return "ProcessRecord({0!r}, pid={1}@{2}, {3})".format(
            self.procname, self.pid, self.machine, self.state
        )


class Job:
    """A computation: "a collection of processes working towards a
    common goal" (Section 4.2), named and associated with a filter."""

    def __init__(self, name, filtername, number):
        self.name = name
        self.filtername = filtername
        self.number = number
        self.flags = 0
        #: Flag spellings in first-set order, for display.
        self.flag_order = []
        self.processes = []

    def find_process(self, procname):
        for record in self.processes:
            if record.procname == procname:
                return record
        return None

    def active_processes(self):
        return [
            record
            for record in self.processes
            if record.state in states.ACTIVE_STATES
        ]
