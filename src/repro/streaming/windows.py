"""Windowed communication statistics: the cumulative counters of
:class:`~repro.analysis.stats.CommunicationStatistics` as a fold, plus
sliding-window rates the batch analysis has no notion of.

Cumulative state (per-process counters, pair traffic, totals) is the
post-mortem twin and must match it field for field at end of session.
Window state lives in two deques stamped with a monotone watermark
position; eviction pops the left end, aggregates are computed at
snapshot time by filtering on the cutoff, so out-of-order local
timestamps (skewed clocks) can delay eviction but never distort an
answer.  All snapshot keys are JSON-native: a snapshot must survive
the query RPC round-trip unchanged.
"""

from collections import Counter, deque


def process_key(machine, pid):
    return "{0}:{1}".format(machine, pid)


class WindowedStats:
    """Per-process counters plus a sliding window of recent activity."""

    def __init__(self, window_ms=500.0):
        self.window_ms = float(window_ms)
        # -- cumulative: the CommunicationStatistics twin --------------
        self.events = 0
        self.machines = set()
        self.per_process = {}  # "machine:pid" -> counter dict
        self.matched_pairs = 0
        self.pair_traffic = {}  # "sm:spid->rm:rpid" -> [count, bytes]
        # -- windowed --------------------------------------------------
        self.win_events = deque()  # (time, key, kind, length, machine)
        self.win_pairs = deque()  # (stamp, lag_ms, nbytes, pair key)
        self.last_seen = {}  # process key -> last local time

    # -- fold ----------------------------------------------------------

    def update(self, event, watermark):
        key = process_key(event.machine, event.pid)
        stats = self.per_process.get(key)
        if stats is None:
            stats = self.per_process[key] = {
                "events": Counter(),
                "bytes_sent": 0,
                "bytes_received": 0,
                "messages_sent": 0,
                "messages_received": 0,
                "sockets_created": 0,
                "cpu_ms": 0,
            }
        kind = event.event
        stats["events"][kind] += 1
        if event.ptime > stats["cpu_ms"]:
            stats["cpu_ms"] = event.ptime
        if kind == "send":
            stats["bytes_sent"] += event.length
            stats["messages_sent"] += 1
        elif kind == "receive":
            stats["bytes_received"] += event.length
            stats["messages_received"] += 1
        elif kind == "socket":
            stats["sockets_created"] += 1
        self.machines.add(event.machine)
        self.events += 1
        self.win_events.append(
            (event.time, key, kind, event.length, event.machine)
        )
        self.last_seen[key] = event.time
        self.evict(watermark)

    def on_pair(self, send, recv, nbytes, watermark):
        self.matched_pairs += 1
        pair_key = "{0}->{1}".format(
            process_key(send.machine, send.pid),
            process_key(recv.machine, recv.pid),
        )
        entry = self.pair_traffic.get(pair_key)
        if entry is None:
            entry = self.pair_traffic[pair_key] = [0, 0]
        entry[0] += 1
        entry[1] += nbytes
        # Stamped with the watermark at match time (monotone), not the
        # event times: a datagram may be claimed long after both sides
        # arrived.  The raw lag keeps the skew in -- that *is* the
        # measurement.
        self.win_pairs.append(
            (watermark, recv.time - send.time, nbytes, pair_key)
        )

    def evict(self, watermark):
        cutoff = watermark - self.window_ms
        win_events = self.win_events
        while win_events and win_events[0][0] <= cutoff:
            win_events.popleft()
        win_pairs = self.win_pairs
        while win_pairs and win_pairs[0][0] <= cutoff:
            win_pairs.popleft()

    # -- answers -------------------------------------------------------

    def totals(self):
        """Identical shape and values to CommunicationStatistics.totals."""
        return {
            "events": self.events,
            "processes": len(self.per_process),
            "machines": len(self.machines),
            "messages_sent": sum(
                s["messages_sent"] for s in self.per_process.values()
            ),
            "bytes_sent": sum(
                s["bytes_sent"] for s in self.per_process.values()
            ),
            "matched_pairs": self.matched_pairs,
        }

    def per_process_dict(self):
        return {
            key: dict(stats, events=dict(stats["events"]))
            for key, stats in self.per_process.items()
        }

    def snapshot(self, watermark):
        cutoff = watermark - self.window_ms
        w_count = 0
        w_sends = 0
        w_send_bytes = 0
        w_recv_bytes = 0
        active = set()
        per_machine = Counter()
        for time, key, kind, length, machine in self.win_events:
            if time <= cutoff:
                continue
            w_count += 1
            active.add(key)
            per_machine[machine] += 1
            if kind == "send":
                w_sends += 1
                w_send_bytes += length
            elif kind == "receive":
                w_recv_bytes += length
        p_count = 0
        p_bytes = 0
        lag_sum = 0.0
        lag_max = 0.0
        pair_rates = {}
        for stamp, lag, nbytes, pair_key in self.win_pairs:
            if stamp <= cutoff:
                continue
            p_count += 1
            p_bytes += nbytes
            lag_sum += lag
            if lag > lag_max:
                lag_max = lag
            rate = pair_rates.setdefault(
                pair_key, {"messages": 0, "bytes": 0}
            )
            rate["messages"] += 1
            rate["bytes"] += nbytes
        seconds = self.window_ms / 1000.0 if self.window_ms > 0 else 1.0
        return {
            "totals": self.totals(),
            "per_process": self.per_process_dict(),
            "pair_traffic": {
                key: list(entry) for key, entry in self.pair_traffic.items()
            },
            "window": {
                "window_ms": self.window_ms,
                "events": w_count,
                "rate_per_s": round(w_count / seconds, 3),
                "active_processes": len(active),
                "per_machine": {
                    str(machine): count
                    for machine, count in sorted(per_machine.items())
                },
                "messages_sent": w_sends,
                "bytes_sent": w_send_bytes,
                "bytes_received": w_recv_bytes,
                "pairs": {
                    "count": p_count,
                    "bytes": p_bytes,
                    "lag_mean_ms": round(lag_sum / p_count, 3)
                    if p_count
                    else 0.0,
                    "lag_max_ms": round(lag_max, 3),
                },
                "pair_rates": pair_rates,
            },
        }

    def state_size(self):
        return (
            len(self.win_events)
            + len(self.win_pairs)
            + len(self.per_process)
        )
