"""Streaming online analysis at scale: the twin oracle on a 20k-event
faulted session, the bounded-memory claim, and a clock-drift sweep
measuring the precision/recall of `undelivered` watch firings.

Writes BENCH_PR8.json at the repo root (uploaded by the CI
``streaming`` job).
"""

import json
import time
from pathlib import Path

from repro.analysis.trace import Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.programs import install_all
from repro.streaming import twins
from repro.streaming.twins import diff_digests, replay_engine

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR8.json"

FLAGS = "send receive receivecall socket destsocket termproc"

#: messages per producer pair for the big (>=20k records) session and
#: the small session the memory bound is measured against.
N_BIG = 2600
N_SMALL = 650


def _record_bench(key, value):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = value
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _store_session(seed=41, clock_skew=None):
    cluster = Cluster(seed=seed, clock_skew=clock_skew)
    session = MeasurementSession(
        cluster, control_machine="yellow", log_format="store"
    )
    install_all(session)
    return session


def _start_fanout_job(session, n):
    """Four concurrent datagram pairs with distinct ports and sizes."""
    timeout = 9000
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramconsumer 6001 {0} {1}".format(n, timeout))
    session.command("addprocess j red dgramconsumer 6002 {0} {1}".format(n, timeout))
    session.command("addprocess j green dgramconsumer 6003 {0} {1}".format(n, timeout))
    session.command("addprocess j green dgramconsumer 6004 {0} {1}".format(n, timeout))
    session.command("addprocess j green dgramproducer red 6001 {0} 64 1".format(n))
    session.command("addprocess j blue dgramproducer red 6002 {0} 96 1".format(n))
    session.command("addprocess j red dgramproducer green 6003 {0} 128 1".format(n))
    session.command("addprocess j blue dgramproducer green 6004 {0} 160 1".format(n))
    session.command("setflags j " + FLAGS)
    session.command("startjob j")


def _live_digest(session):
    out = session.command("stats f1 digest")
    for line in out.splitlines():
        line = line.strip()
        if line.startswith("{"):
            return json.loads(line)
    raise AssertionError("no digest line in output:\n" + out)


_runs = {}


def _faulted_run(n, kill_at_ms):
    """A store-mode fan-out session with the filter killed mid-run
    (supervised relaunch + replay + re-metering on the tap's path)."""
    if n in _runs:
        return _runs[n]
    session = _store_session()
    cluster = session.cluster
    t0 = time.perf_counter()
    plan = FaultPlan().kill_filter(cluster.sim.now + kill_at_ms, "blue")
    FaultInjector(cluster, plan, session=session).arm()
    _start_fanout_job(session, n)
    session.settle()
    run = {
        "session": session,
        "wall_s": round(time.perf_counter() - t0, 3),
        "records": list(session.read_trace("f1")),
        "live": _live_digest(session),
    }
    _runs[n] = run
    return run


def test_oracle_holds_at_scale_under_faults():
    run = _faulted_run(N_BIG, kill_at_ms=400.0)
    records = run["records"]
    assert len(records) >= 20000
    assert "was relaunched" in run["session"].transcript()

    live = run["live"]
    t0 = time.perf_counter()
    online = replay_engine(records).finalize().digest()
    replay_s = time.perf_counter() - t0
    batch = twins.batch_digest(Trace(list(records)))
    problems = diff_digests(online, batch)
    assert problems == [], problems
    mismatched = [
        key
        for key in ("records", "clock_digest", "pairs_digest", "totals",
                    "per_process")
        if live[key] != json.loads(json.dumps(online[key]))
    ]
    assert mismatched == [], mismatched

    _record_bench(
        "streaming_oracle",
        {
            "records": len(records),
            "fault_plan": ["kill_filter@+400ms"],
            "live_equals_replay_twin": True,
            "replay_equals_batch_twin": True,
            "session_wall_s": run["wall_s"],
            "replay_wall_s": round(replay_s, 3),
            "replay_records_per_s": int(len(records) / replay_s),
        },
    )


def test_memory_bounded_by_window_not_trace_length():
    big = _faulted_run(N_BIG, kill_at_ms=400.0)
    small = _faulted_run(N_SMALL, kill_at_ms=150.0)
    peak_big = big["live"]["peak_state"]
    peak_small = small["live"]["peak_state"]
    n_big, n_small = len(big["records"]), len(small["records"])
    assert n_big >= 3.5 * n_small
    # The workload's steady state (and so the window contents) is the
    # same in both runs; only the duration differs.  4x the records must
    # not mean 4x the in-flight state -- it barely moves.
    ratio = peak_big / max(1, peak_small)
    assert ratio < 1.6, (peak_big, peak_small)
    assert peak_big < n_big / 2
    _record_bench(
        "streaming_memory",
        {
            "records_small": n_small,
            "records_big": n_big,
            "peak_state_small": peak_small,
            "peak_state_big": peak_big,
            "peak_ratio": round(ratio, 3),
            "bound": "peak state tracks window occupancy, not trace length",
        },
    )


# ----------------------------------------------------------------------
# Drift sweep: precision/recall of `undelivered` firings
# ----------------------------------------------------------------------

SKEWS_MS = [0, 250, 500, 2000, 4000]
DRIFT_N = 120
DRIFT_LOST = 20
DRIFT_WINDOW_MS = 500


def _firing_identities(poll_out):
    """(machine, pid, proc_seq) identity per undelivered firing line."""
    fired = set()
    for line in poll_out.splitlines():
        if "[undelivered]" not in line:
            continue
        detail = json.loads(line.partition("ms: ")[2])
        machine, __, pid = detail["process"].partition(":")
        fired.add((int(machine), int(pid), int(detail["proc_seq"])))
    return fired


def _drift_run(offset_ms):
    """One run with the *receiver's* clock offset by ``offset_ms``.

    Ground truth comes from a second producer aimed at a dead port (a
    distinct message size, so the length-indexed matcher attributes the
    loss to the right sends): those datagrams are undelivered by
    construction, with no fault injection to disturb the meter
    transport.  The live pair's traffic keeps flowing well past the
    dead sends, so every one of them outlives the window."""
    skew = {"red": (float(offset_ms), 0.0)} if offset_ms else None
    cluster = Cluster(seed=43, clock_skew=skew)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command(
        "addprocess j red dgramconsumer 6001 {0} 4000".format(DRIFT_N)
    )
    session.command(
        "addprocess j green dgramproducer red 6001 {0} 64 5".format(DRIFT_N)
    )
    session.command(
        "addprocess j green dgramproducer red 6999 {0} 48 5".format(DRIFT_LOST)
    )
    session.command("setflags j " + FLAGS)
    session.command(
        "watch add undelivered window={0}".format(DRIFT_WINDOW_MS)
    )
    session.command("startjob j")
    session.settle()
    fired = _firing_identities(session.command("watch poll"))
    records = list(session.read_trace("f1"))
    truth_all = twins.batch_unmatched_dgram_sends(Trace(list(records)))
    # An online monitor can only flag what the stream outlived: restrict
    # ground truth to sends at least one window older than the final
    # watermark (e.g. the consumer's end-of-run stdout report is an
    # unmatched send the stream ends on -- no monitor can call it).
    seq, sent_at, watermark = {}, {}, 0.0
    for record in records:
        key = (record.get("machine"), record.get("pid"))
        s = seq.get(key, 0)
        seq[key] = s + 1
        watermark = max(watermark, record.get("cpuTime", 0))
        if record.get("event") == "send":
            sent_at[(key[0], key[1], s)] = record.get("cpuTime", 0)
    truth = {
        identity
        for identity in truth_all
        if sent_at.get(identity, watermark) <= watermark - DRIFT_WINDOW_MS
    }
    hits = len(fired & truth)
    precision = hits / len(fired) if fired else 1.0
    recall = hits / len(truth) if truth else 1.0
    return {
        "offset_ms": offset_ms,
        "fired": len(fired),
        "truly_undelivered": len(truth),
        "precision": round(precision, 4),
        "recall": round(recall, 4),
    }


def test_drift_sweep_precision_recall():
    sweep = [_drift_run(offset) for offset in SKEWS_MS]
    by_offset = {row["offset_ms"]: row for row in sweep}

    # The dead-port producer really created undelivered traffic.
    assert all(
        row["truly_undelivered"] >= DRIFT_LOST - 1 for row in sweep
    )
    # With honest clocks the watch is exact.
    assert by_offset[0]["precision"] == 1.0
    assert by_offset[0]["recall"] == 1.0
    # Skew below the window is absorbed; past it the optimistic
    # watermark turns eager, flooding false alarms.
    assert by_offset[250]["precision"] == 1.0
    assert by_offset[4000]["precision"] < 0.5
    precisions = [row["precision"] for row in sweep]
    assert precisions == sorted(precisions, reverse=True)
    # The watermark never lies about what was genuinely lost: skew
    # costs precision (eager false alarms), not coverage.
    assert all(row["recall"] == 1.0 for row in sweep)

    _record_bench(
        "streaming_drift_sweep",
        {
            "window_ms": DRIFT_WINDOW_MS,
            "messages": DRIFT_N,
            "undelivered_by_construction": DRIFT_LOST,
            "skewed_machine": "red (the receiver)",
            "sweep": sweep,
        },
    )
