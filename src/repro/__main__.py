"""``python -m repro`` -- run the bundled demonstrations.

Without arguments, replays the paper's Appendix B session.  With an
example name, runs that example:

    python -m repro                 # quickstart (Appendix B)
    python -m repro tsp_study       # the TSP debugging study
    python -m repro debug_hang      # diagnosing a hung computation
    python -m repro --list
"""

import importlib.util
import pathlib
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"


def _available():
    if not EXAMPLES_DIR.is_dir():
        return []
    return sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    names = _available()
    if argv and argv[0] in ("--list", "-l"):
        print("available examples:")
        for name in names:
            print("  ", name)
        return 0
    target = argv[0] if argv else "quickstart"
    if target not in names:
        print("unknown example {0!r}; try: {1}".format(target, ", ".join(names)))
        return 1
    path = EXAMPLES_DIR / (target + ".py")
    spec = importlib.util.spec_from_file_location("repro_example_" + target, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
