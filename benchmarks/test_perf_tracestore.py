"""Storecheck -- the trace store against the text log, at 20k events.

Blocking CI gate for the binary trace store:

1. pack a generated 20k-event trace into a segmented store;
2. verify the reader (full scan *and* every pushdown axis) reproduces
   exactly what ``Trace.from_text`` reads from the same records;
3. assert a segment-pushdown scan reads strictly fewer bytes than a
   full scan;
4. record pack/scan throughput.

A second check packs a real measurement session's text log and runs
the analysis suite both ways.
"""

import time

from benchmarks.conftest import HOSTS, fresh_session
from repro.analysis import CommunicationStatistics, HappensBefore, Trace
from repro.filtering.records import format_record, parse_trace
from repro.metering.messages import MessageCodec, record_fields
from repro.net.addresses import InternetName
from repro.tracestore import StoreReader, pack_text
from repro.tracestore.convert import pack_records

N_EVENTS = 20_000
SEGMENT_BYTES = 64 * 1024


def _generate_records(n=N_EVENTS):
    """n decoded send/receive records across 4 machines, time-ordered
    the way one filter's log would be."""
    codec = MessageCodec(HOSTS)
    records = []
    for i in range(n):
        machine = (i % 4) + 1
        peer = ((i + 1) % 4) + 1
        name = InternetName(HOSTS[peer], 6000 + i % 16, peer)
        event = "send" if i % 2 == 0 else "receive"
        name_field = "destName" if event == "send" else "sourceName"
        body = {
            "pid": 2000 + (i % 8),
            "pc": i,
            "sock": 0x100 + (i % 5),
            "msgLength": 32 * (1 + i % 64),
            name_field: name,
        }
        body.update(codec.name_lengths(**{name_field: name}))
        records.append(
            codec.decode(
                codec.encode(
                    event,
                    machine=machine,
                    cpu_time=i,  # ms-granular local clocks, interleaved
                    proc_time=(i // 100) * 10,
                    **body
                )
            )
        )
    return records


def _as_text(records):
    return "\n".join(
        format_record(r, ["event"] + record_fields(r["event"])) for r in records
    ) + "\n"


def test_storecheck_20k_equivalence_and_pushdown(benchmark):
    records = _generate_records()
    text = _as_text(records)

    t0 = time.perf_counter()
    store, writer = pack_records(
        records, "/bench/f1.store", segment_bytes=SEGMENT_BYTES, host_names=HOSTS
    )
    pack_s = time.perf_counter() - t0
    assert writer.records_appended == N_EVENTS
    assert len(store) > 4  # genuinely segmented

    reader = StoreReader.from_bytes(store)

    def full_scan():
        return reader.records()

    scanned = benchmark.pedantic(full_scan, rounds=1, iterations=1)

    # -- equivalence: the store is the text log, record for record ----
    from_text = parse_trace(text)
    assert scanned == from_text
    trace_text = Trace.from_text(text)
    trace_store = Trace.from_store(reader)
    assert [e.record for e in trace_text] == [e.record for e in trace_store]

    full_bytes = reader.last_stats.bytes_scanned
    store_bytes = sum(len(data) for data in store.values())

    # -- pushdown: every axis matches the brute-force answer ----------
    t_lo, t_hi = N_EVENTS // 2, N_EVENTS // 2 + N_EVENTS // 50
    window = reader.records(t_min=t_lo, t_max=t_hi)
    window_bytes = reader.last_stats.bytes_scanned
    window_skipped = reader.last_stats.segments_skipped
    assert window == [r for r in from_text if t_lo <= r["cpuTime"] <= t_hi]

    by_machine = reader.records(machines=[2])
    assert by_machine == [r for r in from_text if r["machine"] == 2]
    by_event = reader.records(events=["receive"])
    assert by_event == [r for r in from_text if r["event"] == "receive"]
    by_pid = reader.records(pids=[(3, 2002)])
    assert by_pid == [
        r for r in from_text if (r["machine"], r["pid"]) == (3, 2002)
    ]

    # -- the acceptance assertion: pushdown reads strictly fewer bytes
    assert window_skipped > 0
    assert window_bytes < full_bytes

    t0 = time.perf_counter()
    reader.records()
    scan_s = time.perf_counter() - t0
    print(
        "\n[storecheck] {0} events, {1} segments, {2:.1f} KiB store "
        "({3:.2f} B/event)".format(
            N_EVENTS, len(store), store_bytes / 1024.0, store_bytes / N_EVENTS
        )
    )
    print(
        "[storecheck] pack {0:.0f} ev/s ({1:.1f} MiB/s); full scan "
        "{2:.0f} ev/s ({3:.1f} MiB/s)".format(
            N_EVENTS / pack_s,
            store_bytes / pack_s / 2**20,
            N_EVENTS / scan_s,
            full_bytes / scan_s / 2**20,
        )
    )
    print(
        "[storecheck] pushdown window [{0}, {1}]: {2}/{3} segments "
        "skipped, {4} vs {5} bytes scanned ({6:.1%})".format(
            t_lo,
            t_hi,
            window_skipped,
            len(store),
            window_bytes,
            full_bytes,
            window_bytes / full_bytes,
        )
    )


def test_storecheck_session_analyses_match(benchmark):
    """Pack a real session's text log; the analysis results off the
    store must be identical to the text-log results."""
    session = fresh_session(seed=11)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 12")
    session.command("addprocess pp green pingpongclient red 5100 12")
    session.command("setflags pp send receive accept connect socket termproc")
    session.command("startjob pp")
    session.settle()
    __, text = session.find_filter_log("f1")

    store, __w = pack_text(text, "/bench/session.store", segment_bytes=2048)
    reader = StoreReader.from_bytes(store)

    def build():
        return Trace.from_store(reader)

    trace_store = benchmark.pedantic(build, rounds=1, iterations=1)
    trace_text = Trace.from_text(text)

    assert [e.record for e in trace_text] == [e.record for e in trace_store]
    hb_text, hb_store = HappensBefore(trace_text), HappensBefore(trace_store)
    assert hb_text.ordered_fraction() == hb_store.ordered_fraction()
    assert len(hb_text.matcher.pairs) == len(hb_store.matcher.pairs)
    stats_text = CommunicationStatistics(trace_text)
    stats_store = CommunicationStatistics(trace_store)
    assert stats_text.totals() == stats_store.totals()
    assert stats_text.report() == stats_store.report()
    print(
        "\n[storecheck] session: {0} records, {1} pairs matched, "
        "analyses identical text vs store".format(
            len(trace_text), len(hb_text.matcher.pairs)
        )
    )
