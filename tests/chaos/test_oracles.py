"""Oracle applicability tiers and verdict determinism.

The synthetic runs here fill only the RunResult fields a given oracle
reads, with ``store_missing=True`` to keep the store-backed oracles
out of play -- the tier logic itself is what is under test.  One real
(simulated) run at the end checks the full suite holds on a fault-free
and a healed-fault run.
"""

import pytest

from repro.chaos.generator import generate_plan
from repro.chaos.oracles import (
    SYNTHETIC_ORACLES,
    get_oracles,
    run_oracles,
    violated_names,
)
from repro.chaos.scenario import DgramPairScenario, RunResult, run_scenario
from repro.faults.plan import FaultPlan

MACHINES = ("red", "green", "blue", "yellow")


def _run_with(plan, **overrides):
    scenario = DgramPairScenario()
    run = RunResult(scenario, 7, plan)
    run.controller_alive = True
    run.store_missing = True
    run.normal_exits.update({"dgramproducer": 2})
    run.done_reports.update({"dgramproducer": 2})
    for key, value in overrides.items():
        setattr(run, key, value)
    return run


def _applied(verdict, name):
    return verdict["oracles"][name]["applied"]


def test_recoverable_plan_gets_the_strict_tier():
    plan = FaultPlan(machines=MACHINES).partition(
        10.0, [["red"], ["green", "blue", "yellow"]]
    ).heal(50.0)
    run = _run_with(plan)
    verdict = run_oracles(run, baseline=_run_with(None))
    assert _applied(verdict, "baseline_identical")
    assert _applied(verdict, "workload_completed")
    assert _applied(verdict, "death_reports")


def test_storage_damage_drops_baseline_identity_keeps_no_invented():
    plan = FaultPlan(machines=MACHINES).storage_bit_rot(
        10.0, "blue", "/usr/tmp/f1.store", flips=1
    )
    run = _run_with(plan, store_missing=False)
    run.records = []
    # Restrict to the two record-identity oracles: the store-backed
    # lane/digest oracles need a real reader, not a synthetic run.
    verdict = run_oracles(
        run,
        baseline=_run_with(None, store_missing=False),
        oracles=["baseline_identical", "no_invented_records"],
    )
    assert not _applied(verdict, "baseline_identical")
    assert _applied(verdict, "no_invented_records")


def test_crash_weakens_to_the_unconditional_tier():
    plan = FaultPlan(machines=MACHINES).crash(10.0, "red").reboot(60.0, "red")
    run = _run_with(plan)
    verdict = run_oracles(run, baseline=_run_with(None))
    assert not _applied(verdict, "baseline_identical")
    assert not _applied(verdict, "no_invented_records")
    assert not _applied(verdict, "workload_completed")
    assert _applied(verdict, "session_alive")
    assert _applied(verdict, "death_reports")


def test_baseline_needing_oracles_skip_without_a_baseline():
    plan = FaultPlan(machines=MACHINES).heal(10.0)
    verdict = run_oracles(_run_with(plan), baseline=None)
    assert not _applied(verdict, "baseline_identical")


def test_death_reports_duplicate_always_fails():
    plan = FaultPlan(machines=MACHINES).crash(10.0, "red").reboot(60.0, "red")
    run = _run_with(plan)
    run.done_reports["dgramproducer"] = 3
    verdict = run_oracles(run)
    assert "death_reports" in violated_names(verdict)


def test_death_reports_missing_fails_only_when_recoverable():
    missing = {"dgramproducer": 1}
    recoverable = _run_with(FaultPlan(machines=MACHINES).heal(10.0))
    recoverable.done_reports = dict(missing)
    assert "death_reports" in violated_names(run_oracles(recoverable))
    destructive = _run_with(
        FaultPlan(machines=MACHINES).crash(10.0, "red").reboot(60.0, "red")
    )
    destructive.done_reports = dict(missing)
    assert "death_reports" not in violated_names(run_oracles(destructive))


def test_dead_controller_fails_session_alive():
    run = _run_with(None, controller_alive=False)
    verdict = run_oracles(run)
    assert "session_alive" in violated_names(verdict)


def test_partition_budget_synthetic_oracle():
    run = _run_with(None)
    run.applied = [
        "[  90.0] partition groups=(('red',), ('green', 'blue', 'yellow'))",
        "[ 140.0] heal",
        "[ 260.0] partition groups=(('blue',), ('red', 'green', 'yellow'))",
    ]
    oracle = SYNTHETIC_ORACLES["partition_budget"]
    assert oracle.check(run, None)
    run.applied = run.applied[:2]
    assert not oracle.check(run, None)


def test_get_oracles_rejects_unknown_names():
    with pytest.raises(ValueError):
        get_oracles(["no_such_invariant"])
    names = [oracle.name for oracle in get_oracles(["partition_budget"])]
    assert names == ["partition_budget"]


def test_verdicts_are_deterministic():
    run = _run_with(FaultPlan(machines=MACHINES).heal(10.0))
    baseline = _run_with(None)
    assert run_oracles(run, baseline) == run_oracles(run, baseline)


# ----------------------------------------------------------------------
# The full suite over real runs
# ----------------------------------------------------------------------


def test_full_suite_holds_on_a_healed_partition_run():
    scenario = DgramPairScenario(sends=15)
    surface = scenario.surface(log_directory=None)
    plan = generate_plan(0, "network", surface)
    baseline = run_scenario(scenario, 21)
    run = run_scenario(scenario, 21, plan)
    verdict = run_oracles(run, baseline)
    assert verdict["ok"], violated_names(verdict)
    # And the verdict itself replays byte-identically.
    again = run_oracles(run_scenario(scenario, 21, plan), baseline)
    assert again == verdict
