"""Streaming online analysis: folds over the live record stream.

The batch analyses in :mod:`repro.analysis` replay a finished trace;
this package runs the same computations *while the session runs*, as
folds (`Generic Program Monitoring by Trace Analysis`, Jahier &
Ducasse): one ``update(record)`` per analysis, bounded state via
window eviction, and -- because every fold consumes exactly the
committed record stream the filter logs -- a post-mortem twin that the
online answer can be diffed against record for record.

:class:`~repro.streaming.engine.StreamEngine` is the composition: live
vector clocks, online send/receive matching, windowed communication
statistics, and a continuous-query layer whose firings quantify -- via
the drift benchmark -- how much clock skew costs in precision/recall
(Yingchareonthawornchai et al.).
"""

from repro.streaming.engine import (
    DEFAULT_WINDOW_MS,
    StreamEngine,
    digest_add,
    format_firing,
    format_snapshot,
    serve_query,
)

__all__ = [
    "DEFAULT_WINDOW_MS",
    "StreamEngine",
    "digest_add",
    "format_firing",
    "format_snapshot",
    "serve_query",
]
