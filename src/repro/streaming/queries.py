"""Continuous queries: rule-like predicates over event patterns that
fire while the session runs.

Each query is itself a fold with bounded state.  Firings are *edge
triggered* (a condition fires once when it becomes true and re-arms
when it stops holding), timed against the engine watermark -- the
largest local timestamp seen so far.  Under skewed clocks that
watermark is optimistic, which is exactly why the drift benchmark
measures precision/recall of these firings instead of declaring them
exact.

Kinds:

- ``undelivered``: a send that entered matching is still unmatched
  ``window_ms`` after its send timestamp.  Fires once per send.
- ``pattern``: at least ``count`` records matching a filter-rule
  predicate (``repro.filtering.rules`` syntax, e.g.
  ``event=send,msgLength>=400``) within the window.
- ``quiet``: a process produced no record for ``window_ms`` (process
  termination disarms it -- ended is not stuck).
- ``rate``: at least ``threshold`` records (optionally of one event
  kind) from one machine within the window.
"""

from collections import deque

from repro.filtering.rules import parse_rules
from repro.streaming.windows import process_key

DEFAULT_QUERY_WINDOW_MS = 500.0

QUERY_KINDS = ("undelivered", "pattern", "quiet", "rate")


class Query:
    """Base: a no-op query.  Subclasses override the hooks they need;
    ``fire(query, details)`` is supplied by the engine."""

    kind = "?"

    def __init__(self, qid, spec):
        self.qid = qid
        self.spec = dict(spec)
        # "window" is the command-line spelling, "window_ms" the
        # programmatic one; either sets the window.
        self.window_ms = float(
            self.spec.get(
                "window_ms",
                self.spec.get("window", DEFAULT_QUERY_WINDOW_MS),
            )
        )

    def on_event(self, event, watermark, fire):
        pass

    def on_pair(self, send, recv, watermark, fire):
        pass

    def advance(self, watermark, fire):
        """Watermark moved with no triggering record: expire state."""
        pass

    def describe(self):
        return {"id": self.qid, "kind": self.kind, "spec": self.spec}

    def state_size(self):
        return 0


class UndeliveredQuery(Query):
    kind = "undelivered"

    def __init__(self, qid, spec):
        Query.__init__(self, qid, spec)
        #: (machine, pid, proc_seq) -> send event, unmatched so far
        self.pending = {}

    def on_event(self, event, watermark, fire):
        if event.event == "send" and event.in_matching and not event.matched:
            key = (event.machine, event.pid, event.proc_seq)
            self.pending[key] = event

    def on_pair(self, send, recv, watermark, fire):
        self.pending.pop((send.machine, send.pid, send.proc_seq), None)

    def advance(self, watermark, fire):
        if not self.pending:
            return
        cutoff = watermark - self.window_ms
        expired = [
            key
            for key, event in self.pending.items()
            if event.time <= cutoff
        ]
        for key in expired:
            event = self.pending.pop(key)
            fire(
                self,
                {
                    "process": process_key(event.machine, event.pid),
                    "proc_seq": event.proc_seq,
                    "sent_at": event.time,
                    "length": event.length,
                    "dest": event.dest or "",
                },
            )

    def state_size(self):
        return len(self.pending)


class PatternQuery(Query):
    kind = "pattern"

    def __init__(self, qid, spec):
        Query.__init__(self, qid, spec)
        self.rule_text = str(self.spec.get("rule", "") or "").strip()
        #: An empty rule set accepts everything -- same convention as
        #: the filter itself.
        self.ruleset = parse_rules(self.rule_text)
        self.count = max(1, int(self.spec.get("count", 1)))
        self.times = deque()
        self.armed = True

    def _evict(self, watermark):
        cutoff = watermark - self.window_ms
        times = self.times
        while times and times[0] <= cutoff:
            times.popleft()
        if len(times) < self.count:
            self.armed = True

    def on_event(self, event, watermark, fire):
        if self.ruleset.apply(event.record) is None:
            self._evict(watermark)
            return
        self.times.append(event.time)
        self._evict(watermark)
        if self.armed and len(self.times) >= self.count:
            self.armed = False
            fire(self, {"rule": self.rule_text, "count": len(self.times)})

    def advance(self, watermark, fire):
        self._evict(watermark)

    def state_size(self):
        return len(self.times)


class QuietQuery(Query):
    kind = "quiet"

    def __init__(self, qid, spec):
        Query.__init__(self, qid, spec)
        self.last = {}  # process key -> last local time
        self.armed = {}

    def on_event(self, event, watermark, fire):
        key = process_key(event.machine, event.pid)
        if event.event == "termproc":
            self.last.pop(key, None)
            self.armed.pop(key, None)
            return
        self.last[key] = event.time
        self.armed[key] = True

    def advance(self, watermark, fire):
        cutoff = watermark - self.window_ms
        for key, time in self.last.items():
            if time <= cutoff and self.armed.get(key):
                self.armed[key] = False
                fire(self, {"process": key, "last_event_at": time})

    def state_size(self):
        return len(self.last)


class RateQuery(Query):
    kind = "rate"

    def __init__(self, qid, spec):
        Query.__init__(self, qid, spec)
        self.threshold = max(1, int(self.spec.get("threshold", 100)))
        self.event_kind = self.spec.get("event") or None
        self.times = {}  # machine -> deque of times
        self.armed = {}

    def _evict(self, machine, watermark):
        cutoff = watermark - self.window_ms
        times = self.times.get(machine)
        if times is None:
            return 0
        while times and times[0] <= cutoff:
            times.popleft()
        if len(times) < self.threshold:
            self.armed[machine] = True
        return len(times)

    def on_event(self, event, watermark, fire):
        if self.event_kind and event.event != self.event_kind:
            return
        times = self.times.setdefault(event.machine, deque())
        times.append(event.time)
        count = self._evict(event.machine, watermark)
        if count >= self.threshold and self.armed.get(event.machine, True):
            self.armed[event.machine] = False
            fire(
                self,
                {
                    "machine": event.machine,
                    "count": count,
                    "event": self.event_kind or "*",
                },
            )

    def advance(self, watermark, fire):
        for machine in self.times:
            self._evict(machine, watermark)

    def state_size(self):
        return sum(len(times) for times in self.times.values())


_KINDS = {
    UndeliveredQuery.kind: UndeliveredQuery,
    PatternQuery.kind: PatternQuery,
    QuietQuery.kind: QuietQuery,
    RateQuery.kind: RateQuery,
}


def make_query(qid, spec):
    kind = str(spec.get("kind", "") or "")
    factory = _KINDS.get(kind)
    if factory is None:
        raise ValueError(
            "unknown query kind {0!r}; known: {1}".format(
                kind, " ".join(QUERY_KINDS)
            )
        )
    return factory(qid, spec)
