"""Selection rules / templates (Figures 3.3 and 3.4).

A templates file holds one rule per line; a rule is a comma-separated
conjunction of conditions ``field OP value`` with OP one of
``> < = != >= <=``.  A record is accepted if it matches *any* rule.

Value forms:

- an integer literal: ``cpuTime<10000``
- a name/display string: ``destName=inet:blue:4000``
- the wildcard ``*`` ("matches any value")
- another field name: ``sockName=peerName`` (cross-field comparison)
- any of the above prefixed with the discard character ``#``: the
  condition matches as usual, and "if an event record is accepted by
  the filter, any fields with this value prefix will be discarded"
  (reduction).

Field name ``type`` is accepted as an alias for the header's
``traceType``, matching the figures' spelling, and may also be compared
against event names ("type=send").

The filter runs :meth:`RuleSet.apply` once per live record, so the set
is compiled at parse time: every condition becomes a closure, every
rule a tuple of closures, and rules pinned to one event type by a
``type=`` equality condition go into a dispatch table keyed by
``traceType`` so only candidate rules are consulted per record.  The
interpreted path (:meth:`Rule.matches` walking conditions) is kept both
as the semantic reference for the property tests and as the
``compiled=False`` baseline for the hot-path benchmark.
"""

import operator

from repro.metering.messages import EVENT_NAMES, EVENT_TYPES

_OPERATORS = ("<=", ">=", "!=", "<", ">", "=")

_ALIASES = {"type": "traceType"}

_OP_FUNCS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_MISSING = object()


class Condition:
    """One ``field OP value`` clause."""

    __slots__ = ("field", "op", "value", "discard", "is_wildcard", "is_field_ref")

    def __init__(self, field, op, value):
        self.field = _ALIASES.get(field, field)
        self.op = op
        self.discard = False
        if isinstance(value, str) and value.startswith("#"):
            self.discard = True
            value = value[1:]
        self.is_wildcard = value == "*"
        self.is_field_ref = False
        if not self.is_wildcard:
            value = self._coerce(value)
        self.value = value

    def _coerce(self, value):
        try:
            return int(value)
        except (TypeError, ValueError):
            pass
        if value in EVENT_TYPES and self.field == "traceType":
            return EVENT_TYPES[value]
        # A bare identifier naming another record field is a cross-field
        # reference; anything else is a literal string (e.g. a name).
        if isinstance(value, str) and value.isidentifier():
            self.is_field_ref = True
        return value

    def matches(self, record):
        if self.field not in record:
            return False
        actual = record[self.field]
        if self.is_wildcard:
            return True
        expected = self.value
        if self.is_field_ref:
            ref = _ALIASES.get(expected, expected)
            if ref in record:
                expected = record[ref]
            # else: treat as a literal string and fall through.
        return self._compare(actual, expected)

    def _compare(self, actual, expected):
        # Numbers compare numerically; mixed types compare as strings.
        if not (isinstance(actual, int) and isinstance(expected, int)):
            actual, expected = str(actual), str(expected)
        if self.op == "=":
            return actual == expected
        if self.op == "!=":
            return actual != expected
        if self.op == "<":
            return actual < expected
        if self.op == ">":
            return actual > expected
        if self.op == "<=":
            return actual <= expected
        return actual >= expected  # ">="

    def compile(self):
        """Return a ``record -> bool`` closure equivalent to
        :meth:`matches`."""
        field = self.field
        if self.is_wildcard:
            return lambda record: field in record
        op = _OP_FUNCS[self.op]
        if self.is_field_ref:
            ref = _ALIASES.get(self.value, self.value)
            literal = self.value

            def check_ref(record):
                actual = record.get(field, _MISSING)
                if actual is _MISSING:
                    return False
                expected = record.get(ref, _MISSING)
                if expected is _MISSING:
                    expected = literal
                if isinstance(actual, int) and isinstance(expected, int):
                    return op(actual, expected)
                return op(str(actual), str(expected))

            return check_ref
        if isinstance(self.value, int):
            value = self.value
            text = str(value)

            def check_int(record):
                actual = record.get(field, _MISSING)
                if actual is _MISSING:
                    return False
                if isinstance(actual, int):
                    return op(actual, value)
                return op(str(actual), text)

            return check_int
        value = str(self.value)

        def check_str(record):
            actual = record.get(field, _MISSING)
            if actual is _MISSING:
                return False
            return op(str(actual), value)

        return check_str

    def to_text(self):
        value = self.value
        if self.is_wildcard:
            value = "*"
        return "{0}{1}{2}{3}".format(
            self.field, self.op, "#" if self.discard else "", value
        )

    def __repr__(self):
        return "Condition({0})".format(self.to_text())


class Rule:
    """A conjunction of conditions; one line of the templates file."""

    def __init__(self, conditions):
        self.conditions = list(conditions)

    def matches(self, record):
        return all(cond.matches(record) for cond in self.conditions)

    def discard_fields(self):
        return {cond.field for cond in self.conditions if cond.discard}

    def pinned_trace_types(self):
        """Integer ``traceType`` values this rule requires via equality
        conditions, or None if the rule is not pinned to a type."""
        pins = {
            cond.value
            for cond in self.conditions
            if cond.field == "traceType"
            and cond.op == "="
            and not cond.is_wildcard
            and not cond.is_field_ref
            and isinstance(cond.value, int)
        }
        return pins or None

    def compile(self):
        return _CompiledRule(self)

    def __repr__(self):
        return "Rule({0})".format(
            ", ".join(cond.to_text() for cond in self.conditions)
        )


#: Header fields present in every record the filter decodes; a rule
#: whose conditions are all wildcards over these fields accepts every
#: live record, so its compiled form can skip the checks entirely.
_ALWAYS_PRESENT = frozenset(
    ("size", "machine", "cpuTime", "procTime", "traceType", "event")
)


class _CompiledRule:
    """A :class:`Rule` lowered to closures.

    ``accepts_all`` marks the wildcard-only fast path: every condition
    is a wildcard over an always-present header field and nothing is
    discarded, so :meth:`RuleSet.apply` can accept the record without
    calling any check.

    ``matches`` is an instance attribute, not a method: a one-condition
    rule *is* its check closure (no extra call frame), a conjunction
    gets a closure walking the checks.
    """

    __slots__ = ("checks", "discards", "accepts_all", "matches", "rule")

    def __init__(self, rule):
        #: The source :class:`Rule`, kept so column-oriented planners
        #: (the trace store's batch pre-screen) can recompile the same
        #: conditions against a record layout instead of a dict.
        self.rule = rule
        self.discards = frozenset(rule.discard_fields())
        wildcard_only = all(cond.is_wildcard for cond in rule.conditions)
        self.accepts_all = (
            wildcard_only
            and not self.discards
            and all(
                cond.field in _ALWAYS_PRESENT for cond in rule.conditions
            )
        )
        if wildcard_only:
            # Collapse the conjunction into one membership sweep.
            fields = tuple({cond.field: None for cond in rule.conditions})
            self.checks = (
                lambda record: all(field in record for field in fields),
            )
        else:
            self.checks = tuple(cond.compile() for cond in rule.conditions)
        if len(self.checks) == 1:
            self.matches = self.checks[0]
        else:
            self.matches = self._conjunction(self.checks)

    @staticmethod
    def _conjunction(checks):
        def matches(record):
            for check in checks:
                if not check(record):
                    return False
            return True

        return matches


class RuleSet:
    """All rules of a templates file.

    :meth:`apply` returns the (possibly reduced) record to save, or
    None if no rule accepts it.  An empty rule set accepts everything
    unreduced (a filter with no templates just logs the full trace).

    With ``compiled=True`` (the default) the rules are lowered once at
    construction: conditions become closures and rules pinned to one
    event type by a ``type=`` equality condition are filed in a
    dispatch table keyed by ``traceType``, so a record is only tested
    against rules that could possibly accept it.  First-matching-rule
    semantics are preserved by merging pinned and generic rules in
    their original file order.  ``compiled=False`` keeps the
    interpreted per-condition walk (the benchmark baseline).
    """

    def __init__(self, rules, compiled=True):
        self.rules = list(rules)
        self.compiled = compiled
        self._generic = ()
        self._dispatch = {}
        if compiled:
            self._build_dispatch()

    def _build_dispatch(self):
        """Partition compiled rules into per-traceType candidate lists.

        A pinned rule can only accept records whose ``traceType``
        equals its pin numerically (int records) or textually (string
        records, per :meth:`Condition._compare`), so it is filed under
        both the int pin and ``str(pin)``.  Over-approximation is safe
        -- every candidate rule still runs its own checks -- but a rule
        must never be *excluded* from a type it could match.
        """
        generic = []  # (index, compiled) pairs, original file order
        pinned = {}  # dispatch key -> [(index, compiled), ...]
        for index, rule in enumerate(self.rules):
            compiled = rule.compile()
            pins = rule.pinned_trace_types()
            if pins is None:
                generic.append((index, compiled))
            elif len(pins) == 1:
                (pin,) = pins
                for key in (pin, str(pin)):
                    pinned.setdefault(key, []).append((index, compiled))
            # Contradictory pins (type=1, type=2) can never both hold:
            # the rule matches nothing and is filed nowhere.
        self._generic = tuple(compiled for __, compiled in generic)
        self._dispatch = {}
        for key, entries in pinned.items():
            merged = sorted(entries + generic, key=lambda pair: pair[0])
            self._dispatch[key] = tuple(compiled for __, compiled in merged)

    def candidates(self, trace_type):
        """The compiled rules :meth:`apply` would consult for a record
        of ``trace_type``, in first-match order.  This is the dispatch
        the batch pre-screen compiles column programs from, so screen
        and apply can never disagree about rule order."""
        return self._dispatch.get(trace_type, self._generic)

    def pinned_events(self):
        """Event names that could ever be accepted, or None when a
        generic (unpinned) rule exists -- segment pushdown for rule
        scans.  An empty rule set accepts everything: also None."""
        if not self.rules or not self.compiled or self._generic:
            return None
        return {
            EVENT_NAMES[key]
            for key in self._dispatch
            if isinstance(key, int) and key in EVENT_NAMES
        }

    def apply(self, record):
        if not self.compiled:
            return self.apply_interpreted(record)
        if not self.rules:
            return record
        trace_type = record.get("traceType")
        if not isinstance(trace_type, int):
            trace_type = str(trace_type)
        candidates = self._dispatch.get(trace_type, self._generic)
        for rule in candidates:
            if rule.accepts_all or rule.matches(record):
                discards = rule.discards
                if not discards:
                    return record
                return {
                    key: value
                    for key, value in record.items()
                    if key not in discards
                }
        return None

    def apply_interpreted(self, record):
        """The original per-condition interpretation of the rule file
        (reference semantics; also the benchmark baseline)."""
        if not self.rules:
            return record
        for rule in self.rules:
            if rule.matches(record):
                discards = rule.discard_fields()
                if not discards:
                    return record
                return {
                    key: value
                    for key, value in record.items()
                    if key not in discards
                }
        return None

    def __len__(self):
        return len(self.rules)


def _parse_condition(text):
    text = text.strip()
    for op in _OPERATORS:
        idx = text.find(op)
        if idx > 0:
            field = text[:idx].strip()
            value = text[idx + len(op) :].strip()
            if not value:
                raise ValueError("missing value in condition %r" % text)
            return Condition(field, op, value)
    raise ValueError("no operator in condition %r" % text)


def parse_rules(text, compiled=True):
    """Parse a templates file into a :class:`RuleSet`."""
    rules = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        conditions = [
            _parse_condition(chunk)
            for chunk in line.split(",")
            if chunk.strip()
        ]
        if conditions:
            rules.append(Rule(conditions))
    return RuleSet(rules, compiled=compiled)


#: The default templates file installed on every machine: one wildcard
#: rule that accepts every record without reduction.
DEFAULT_TEMPLATES_TEXT = "machine=*\n"
