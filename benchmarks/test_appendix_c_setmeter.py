"""Appendix C -- the setmeter(2) manual page.

Conformance walk of the documented behaviours plus the syscall's cost
(it is on the control path, not the data path, but should still be
cheap).
"""

from benchmarks.conftest import fresh_session
from repro.core.cluster import Cluster
from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from repro.metering import flags as mf


def test_appendix_c_conformance_and_cost(benchmark):
    cluster = Cluster(seed=5)
    outcomes = {}

    def collector(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 4400))
        yield sys.listen(fd, defs.SOMAXCONN)
        while True:
            conn, __ = yield sys.accept(fd)

    cluster.spawn("blue", collector, uid=0)

    def idle(sys, argv):
        while True:
            yield sys.sleep(1000)

    victim = cluster.spawn("red", idle, uid=100)

    calls = {"n": 0}

    def driver(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.connect(fd, ("blue", 4400))
        # -1 as proc: the calling process.
        yield sys.setmeter(mf.SELF, mf.METERSEND, fd)
        outcomes["self"] = True
        # -1 as flags/socket: no change.
        yield sys.setmeter(victim.pid, mf.M_ALL, fd)
        yield sys.setmeter(victim.pid, mf.NO_CHANGE, mf.NO_CHANGE)
        outcomes["nochange"] = victim.meter_flags == mf.M_ALL
        # Flags replace the previous mask.
        yield sys.setmeter(victim.pid, mf.METERFORK, mf.NO_CHANGE)
        outcomes["replace"] = victim.meter_flags == mf.METERFORK
        # Errors: EPERM for another user's process (when not root),
        # EBADF for a descriptor naming no open file (Appendix C says
        # ESRCH here, but that is kept for the process lookup).
        try:
            yield sys.setmeter(mf.SELF, mf.M_ALL, 60)
        except SyscallError as err:
            outcomes["badfd"] = err.errno == errno.EBADF
        # Non-Internet-stream sockets rejected.
        dgram = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        try:
            yield sys.setmeter(mf.SELF, mf.M_ALL, dgram)
        except SyscallError as err:
            outcomes["notstream"] = err.errno == errno.EINVAL
        # Repeated setmeter calls (the benched operation).
        for __ in range(200):
            yield sys.setmeter(victim.pid, mf.M_ALL, mf.NO_CHANGE)
            calls["n"] += 1
        yield sys.exit(0)

    def run():
        proc = cluster.spawn("red", driver, uid=0)
        cluster.run_until_exit([proc])
        return proc

    proc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proc.exit_reason == defs.EXIT_NORMAL
    assert outcomes == {
        "self": True,
        "nochange": True,
        "replace": True,
        "badfd": True,
        "notstream": True,
    }
    print(
        "\n[appendix C] semantics verified; {0} setmeter calls "
        "executed in {1:.1f} simulated ms".format(calls["n"], cluster.sim.now)
    )


def test_appendix_c_eperm_for_foreign_process(benchmark):
    cluster = Cluster(seed=5)

    def idle(sys, argv):
        while True:
            yield sys.sleep(1000)

    victim = cluster.spawn("red", idle, uid=100)
    failures = []

    def driver(sys, argv):
        try:
            yield sys.setmeter(victim.pid, mf.M_ALL, mf.NO_CHANGE)
        except SyscallError as err:
            failures.append(err.errno)
        yield sys.exit(0)

    def run():
        proc = cluster.spawn("red", driver, uid=200)
        cluster.run_until_exit([proc])
        return proc

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert failures == [errno.EPERM]
