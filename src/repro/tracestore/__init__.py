"""The binary trace store: segmented, indexed meter logs.

The paper's filters log accepted records as text lines (Section 3.4);
at Appendix-B scale that is fine, but the ROADMAP's large computations
emit millions of meter messages, and slurping whole text logs defeats
analysis.  This package keeps accepted records in their Appendix-A
wire encoding inside fixed-capacity segment files, each sealed with an
index footer, so analyses can stream exactly the records they need:

- :mod:`repro.tracestore.format` -- segments, frames, footers;
- :mod:`repro.tracestore.writer` -- :class:`StoreWriter` (batched,
  crash-safe appends; usable from filter guests);
- :mod:`repro.tracestore.reader` -- :class:`StoreReader` (streaming
  scans with segment pushdown) and :func:`merge_scan`;
- :mod:`repro.tracestore.convert` -- text log <-> store packing;
- :mod:`repro.tracestore.errors` -- the typed :class:`StoreError`
  hierarchy (all integrity failures raise these, never bare
  ``ValueError``);
- :mod:`repro.tracestore.fsck` -- offline store checking and repair
  (the ``trace fsck`` CLI).

Durability: segments are written in format v2 -- every frame carries a
CRC32 over its length, mask, and payload -- so corruption anywhere in
the data region is *detectable*, not just at the sealed footer.  v1
segments (pre-CRC) remain fully readable.  Reads are strict by default
(a corrupt frame raises :class:`CorruptSegmentError`); salvage mode
(``scan(salvage=True)``) resynchronizes past damage and accounts every
quarantined byte in :class:`ScanStats`.
"""

from repro.tracestore.format import (
    DEFAULT_SEGMENT_BYTES,
    FORMAT_VERSION,
    FORMAT_VERSION_V1,
    discard_mask,
    masked_fields,
    zero_masked_bytes,
)
from repro.tracestore.batchscan import (
    merge_scan_fast,
    message_screen,
    scan_fast,
    select,
)
from repro.tracestore.convert import pack_records, pack_text
from repro.tracestore.errors import (
    BadSegmentHeaderError,
    CorruptFrameError,
    CorruptSegmentError,
    StoreError,
)
from repro.tracestore.fsck import fsck_store, repair_store
from repro.tracestore.reader import ScanStats, Segment, StoreReader, merge_scan
from repro.tracestore.writer import (
    StoreWriter,
    collect_ops,
    flush_to_files,
    flush_to_fs,
    flush_to_guest,
    next_segment_index,
    segment_path,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "FORMAT_VERSION",
    "FORMAT_VERSION_V1",
    "discard_mask",
    "masked_fields",
    "zero_masked_bytes",
    "pack_records",
    "pack_text",
    "StoreError",
    "BadSegmentHeaderError",
    "CorruptSegmentError",
    "CorruptFrameError",
    "fsck_store",
    "repair_store",
    "ScanStats",
    "Segment",
    "StoreReader",
    "merge_scan",
    "merge_scan_fast",
    "message_screen",
    "scan_fast",
    "select",
    "StoreWriter",
    "collect_ops",
    "flush_to_files",
    "flush_to_fs",
    "flush_to_guest",
    "next_segment_index",
    "segment_path",
]
